//! Virtual time: [`SimTime`] (instant since simulation start) and
//! [`SimDuration`] (span), both with nanosecond resolution on `u64`.
//!
//! Integer nanoseconds give a total order with no floating-point drift, which
//! matters for deterministic event tie-breaking. Conversions to `f64` seconds
//! are provided for metrics and reporting only.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;

/// An instant in virtual time, measured in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3600 * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as `f64` (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span; useful as an "infinite" walltime.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * NANOS_PER_SEC)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span in seconds as `f64` (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if secs <= 0.0 || !secs.is_finite() {
        if secs.is_infinite() && secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturating: `earlier - later == 0`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2}m", s / 60.0)
        } else {
            write!(f, "{:.3}s", s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
        let t = SimTime::from_secs_f64(2.25);
        assert!((t.as_secs_f64() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!((t + d).since(t), d);
        // Saturating subtraction never panics.
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!(t - (t + d), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d / 0, d); // divide-by-zero guards to identity
        assert_eq!(d * 0.5, SimDuration::from_secs(2));
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::MAX > b);
        let d1 = SimDuration::from_secs(1);
        let d2 = SimDuration::from_secs(2);
        assert_eq!(d1.max(d2), d2);
        assert_eq!(d2.min(d1), d1);
    }

    #[test]
    fn checked_sub() {
        let t = SimTime::from_secs(5);
        assert_eq!(
            t.checked_sub(SimDuration::from_secs(2)),
            Some(SimTime::from_secs(3))
        );
        assert_eq!(t.checked_sub(SimDuration::from_secs(6)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(7200)), "2.00h");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "1.50m");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
