//! Declarative sampling distributions for workload and infrastructure models.
//!
//! Experiment specifications (Mini-App framework) describe task durations, data
//! sizes, queue waits, boot latencies etc. as data, not code; [`Dist`] is that
//! description. All sampling goes through [`SimRng`], keeping experiments
//! reproducible.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::rng::SimRng;

/// A one-dimensional sampling distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Normal, truncated below at `min` (use `f64::NEG_INFINITY` to disable).
    Normal { mean: f64, std_dev: f64, min: f64 },
    /// Log-normal parameterized by the underlying normal's mu and sigma.
    LogNormal { mu: f64, sigma: f64 },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull { shape: f64, scale: f64 },
    /// Pareto with minimum `scale` and tail index `alpha`.
    Pareto { scale: f64, alpha: f64 },
    /// Resample uniformly from observed values (bootstrap).
    Empirical(Vec<f64>),
    /// Two-point mixture: value `a` with probability `p`, else `b`.
    /// Models bimodal workloads (e.g. long simulation tasks mixed with
    /// short analysis tasks, Section III-B of the paper).
    Bimodal { a: f64, b: f64, p: f64 },
}

impl Dist {
    /// Convenience constructor for [`Dist::Constant`].
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// Convenience constructor for [`Dist::Uniform`].
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        Dist::Uniform { lo, hi }
    }

    /// Convenience constructor for [`Dist::Exponential`].
    pub fn exponential(mean: f64) -> Dist {
        Dist::Exponential { mean }
    }

    /// Normal truncated at zero — the common case for durations and sizes.
    pub fn normal_pos(mean: f64, std_dev: f64) -> Dist {
        Dist::Normal {
            mean,
            std_dev,
            min: 0.0,
        }
    }

    /// A log-normal chosen to have the given linear-scale median and spread.
    ///
    /// `sigma` is the shape parameter of the underlying normal; `median` maps
    /// to `mu = ln(median)`.
    pub fn lognormal_median(median: f64, sigma: f64) -> Dist {
        Dist::LogNormal {
            mu: median.max(f64::MIN_POSITIVE).ln(),
            sigma,
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.f64_range(*lo, *hi),
            Dist::Exponential { mean } => rng.exponential(*mean),
            Dist::Normal { mean, std_dev, min } => rng.normal(*mean, *std_dev).max(*min),
            Dist::LogNormal { mu, sigma } => rng.lognormal(*mu, *sigma),
            Dist::Weibull { shape, scale } => rng.weibull(*shape, *scale),
            Dist::Pareto { scale, alpha } => rng.pareto(*scale, *alpha),
            Dist::Empirical(values) => {
                if values.is_empty() {
                    0.0
                } else {
                    *rng.pick(values)
                }
            }
            Dist::Bimodal { a, b, p } => {
                if rng.bool(*p) {
                    *a
                } else {
                    *b
                }
            }
        }
    }

    /// Draw `n` samples.
    pub fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The analytic mean of the distribution, where defined.
    ///
    /// `Empirical` returns the sample mean; `Pareto` returns infinity for
    /// `alpha <= 1`. Truncated normals report the untruncated mean (a
    /// documented approximation, adequate for `mean >> std_dev`).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => *mean,
            Dist::Normal { mean, .. } => *mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Weibull { shape, scale } => scale * gamma_fn(1.0 + 1.0 / shape),
            Dist::Pareto { scale, alpha } => {
                if *alpha <= 1.0 {
                    f64::INFINITY
                } else {
                    alpha * scale / (alpha - 1.0)
                }
            }
            Dist::Empirical(values) => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Dist::Bimodal { a, b, p } => p * a + (1.0 - p) * b,
        }
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9 coefficients).
///
/// Only used for Weibull analytic means; accurate to ~1e-13 on the positive
/// reals encountered here.
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)] // published Lanczos coefficients kept verbatim
fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Samples a Zipf-distributed rank in `[0, n)` with exponent `s`.
///
/// Uses a precomputed CDF table; suitable for the vocabulary sizes used by the
/// wordcount workload generator (up to a few hundred thousand symbols).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (s = 1.0 is classic).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most frequent.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        let d = Dist::constant(3.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut r = rng();
        let d = Dist::uniform(2.0, 6.0);
        let xs = d.sample_n(&mut r, 20_000);
        assert!(xs.iter().all(|&x| (2.0..6.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() < 0.05);
    }

    #[test]
    fn exponential_empirical_matches_analytic_mean() {
        let mut r = rng();
        let d = Dist::exponential(2.5);
        let xs = d.sample_n(&mut r, 100_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut r = rng();
        let d = Dist::Normal {
            mean: 0.5,
            std_dev: 2.0,
            min: 0.0,
        };
        assert!(d.sample_n(&mut r, 10_000).iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median_constructor() {
        let mut r = rng();
        let d = Dist::lognormal_median(8.0, 0.5);
        let mut xs = d.sample_n(&mut r, 50_001);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 8.0).abs() < 0.3, "median {median}");
    }

    #[test]
    fn weibull_mean_uses_gamma() {
        // For shape=1 the Weibull is exponential: mean == scale.
        let d = Dist::Weibull {
            shape: 1.0,
            scale: 4.0,
        };
        assert!((d.mean() - 4.0).abs() < 1e-9);
        // gamma(5) = 24
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn pareto_mean_diverges_for_heavy_tail() {
        let d = Dist::Pareto {
            scale: 1.0,
            alpha: 0.9,
        };
        assert!(d.mean().is_infinite());
        let d2 = Dist::Pareto {
            scale: 1.0,
            alpha: 3.0,
        };
        assert!((d2.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_bootstrap() {
        let mut r = rng();
        let d = Dist::Empirical(vec![1.0, 2.0, 3.0]);
        for _ in 0..100 {
            let x = d.sample(&mut r);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert_eq!(d.mean(), 2.0);
        assert_eq!(Dist::Empirical(vec![]).sample(&mut r), 0.0);
    }

    #[test]
    fn bimodal_mixture_ratio() {
        let mut r = rng();
        let d = Dist::Bimodal {
            a: 10.0,
            b: 1.0,
            p: 0.25,
        };
        let xs = d.sample_n(&mut r, 40_000);
        let frac_a = xs.iter().filter(|&&x| x == 10.0).count() as f64 / xs.len() as f64;
        assert!((frac_a - 0.25).abs() < 0.02);
        assert!((d.mean() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut r = rng();
        let z = Zipf::new(1000, 1.0);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // rank-0 frequency should be roughly 1/H_1000 ~ 0.133
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - 0.133).abs() < 0.02, "f0 {f0}");
    }

    #[test]
    fn zipf_single_rank() {
        let mut r = rng();
        let z = Zipf::new(1, 1.2);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }
}
