//! Ensemble Kalman filter — the task-parallel, dynamic case study (\[50\]:
//! history matching with EnKF).
//!
//! A linear-Gaussian state-space system is tracked by an ensemble: each
//! assimilation cycle *forecasts* every member independently (the
//! embarrassingly parallel part that runs as pilot compute units) and then
//! performs the ensemble *analysis* update against a noisy observation.
//! The test of usefulness is statistical: filtered RMSE must beat the
//! unassimilated free run.
//!
//! The ensemble is a flat row-major [`Matrix`] (one member per row); the
//! analysis statistics `P Hᵀ` and `H P Hᵀ` are computed by streaming the
//! anomaly matrices row-by-row through [`Matrix::at_b`] — no transpose is
//! ever materialized and no per-member vectors are allocated.

use crate::linalg::Matrix;
use pilot_sim::SimRng;

/// Problem definition: `x' = A x + w`, `y = H x + v`.
#[derive(Clone, Debug)]
pub struct EnkfProblem {
    /// State transition matrix (d × d).
    pub a: Matrix,
    /// Observation operator (m × d).
    pub h: Matrix,
    /// Process-noise standard deviation.
    pub process_noise: f64,
    /// Observation-noise standard deviation.
    pub obs_noise: f64,
}

impl EnkfProblem {
    /// A gently rotating, slightly damped 2-D system observed in its first
    /// coordinate — oscillatory enough that an unassimilated run drifts.
    pub fn oscillator() -> Self {
        let theta: f64 = 0.3;
        let damp = 0.995;
        EnkfProblem {
            a: Matrix::from_rows(&[
                vec![damp * theta.cos(), -damp * theta.sin()],
                vec![damp * theta.sin(), damp * theta.cos()],
            ]),
            h: Matrix::from_rows(&[vec![1.0, 0.0]]),
            process_noise: 0.05,
            obs_noise: 0.2,
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.a.shape().0
    }

    /// Observation dimension.
    pub fn obs_dim(&self) -> usize {
        self.h.shape().0
    }
}

/// Forecast one member: `x ← A x + w`.
pub fn forecast_member(problem: &EnkfProblem, x: &[f64], rng: &mut SimRng) -> Vec<f64> {
    problem
        .a
        .matvec(x)
        .into_iter()
        .map(|v| v + rng.normal(0.0, problem.process_noise))
        .collect()
}

/// EnKF analysis with perturbed observations: updates every ensemble member
/// (row) in place against observation `y`.
pub fn analysis(problem: &EnkfProblem, ensemble: &mut Matrix, y: &[f64], rng: &mut SimRng) {
    let n = ensemble.rows();
    assert!(n >= 2, "EnKF needs at least two members");
    let d = problem.dim();
    let m = problem.obs_dim();
    // Ensemble mean, one streaming pass over the flat buffer.
    let mut mean = vec![0.0; d];
    for i in 0..n {
        for (s, &x) in mean.iter_mut().zip(ensemble.row(i)) {
            *s += x;
        }
    }
    for s in &mut mean {
        *s /= n as f64;
    }
    // Anomaly matrix A (n × d) and its observation-space image H·A (n × m).
    let mut anomalies = Matrix::zeros(n, d);
    let mut h_anoms = Matrix::zeros(n, m);
    for i in 0..n {
        let row = ensemble.row(i);
        let a = anomalies.row_mut(i);
        for ((dst, &x), &mu) in a.iter_mut().zip(row).zip(&mean) {
            *dst = x - mu;
        }
        let ha = problem.h.matvec(anomalies.row(i));
        h_anoms.row_mut(i).copy_from_slice(&ha);
    }
    // P Hᵀ = Aᵀ(HA)/(n-1)  (d × m) and H P Hᵀ = (HA)ᵀ(HA)/(n-1)  (m × m),
    // both as single streaming passes over the tall anomaly matrices.
    let scale = 1.0 / (n - 1) as f64;
    let mut pht = anomalies.at_b(&h_anoms);
    pht.scale(scale);
    let mut hpht = h_anoms.at_b(&h_anoms);
    hpht.scale(scale);
    // Innovation covariance S = H P Hᵀ + R.
    let r = problem.obs_noise * problem.obs_noise;
    for i in 0..m {
        hpht[(i, i)] += r;
    }
    // K = P Hᵀ S⁻¹, column by column (solve S kᵀ = (P Hᵀ)ᵀ row-wise).
    // Build K as d × m.
    let mut k = Matrix::zeros(d, m);
    for row in 0..d {
        let rhs: Vec<f64> = pht.row(row).to_vec();
        // lint: allow(panic, reason = "S = H P Ht + R with R > 0 is SPD by construction, so the ridge-regularized solve cannot fail")
        let sol = hpht.solve(&rhs).expect("innovation covariance is SPD");
        k.row_mut(row).copy_from_slice(&sol);
    }
    // Perturbed-observation update per member.
    for i in 0..n {
        let y_pert: Vec<f64> = y
            .iter()
            .map(|&yi| yi + rng.normal(0.0, problem.obs_noise))
            .collect();
        let hx = problem.h.matvec(ensemble.row(i));
        let innov: Vec<f64> = y_pert.iter().zip(&hx).map(|(a, b)| a - b).collect();
        let dx = k.matvec(&innov);
        for (xi, di) in ensemble.row_mut(i).iter_mut().zip(&dx) {
            *xi += di;
        }
    }
}

/// Ensemble mean (mean over rows).
pub fn ensemble_mean(ensemble: &Matrix) -> Vec<f64> {
    let n = ensemble.rows().max(1);
    let d = ensemble.cols();
    let mut mean = vec![0.0; d];
    for i in 0..ensemble.rows() {
        for (s, &x) in mean.iter_mut().zip(ensemble.row(i)) {
            *s += x;
        }
    }
    for s in &mut mean {
        *s /= n as f64;
    }
    mean
}

/// RMSE between two states.
pub fn rmse_state(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(1);
    (a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / n as f64).sqrt()
}

/// Draw an initial `n × d` ensemble from `N(0, 1)`.
pub fn initial_ensemble(n_members: usize, d: usize, rng: &mut SimRng) -> Matrix {
    let mut e = Matrix::zeros(n_members, d);
    for i in 0..n_members {
        for v in e.row_mut(i) {
            *v = rng.normal(0.0, 1.0);
        }
    }
    e
}

/// Run a full twin experiment sequentially: simulate a truth trajectory,
/// observe it noisily, filter with an `n`-member ensemble. Returns
/// `(filtered_rmse, free_run_rmse)` averaged over cycles.
pub fn twin_experiment(
    problem: &EnkfProblem,
    n_members: usize,
    cycles: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = SimRng::new(seed);
    let d = problem.dim();
    let mut truth: Vec<f64> = (0..d).map(|_| rng.normal(1.0, 0.5)).collect();
    let mut free: Vec<f64> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    let mut ensemble = initial_ensemble(n_members, d, &mut rng);
    let (mut err_f, mut err_free) = (0.0, 0.0);
    for _ in 0..cycles {
        // Advance truth (with process noise) and the unassimilated run.
        truth = forecast_member(problem, &truth, &mut rng);
        free = problem.a.matvec(&free);
        // Forecast every member.
        for i in 0..ensemble.rows() {
            let next = forecast_member(problem, ensemble.row(i), &mut rng);
            ensemble.row_mut(i).copy_from_slice(&next);
        }
        // Observe and assimilate.
        let y: Vec<f64> = problem
            .h
            .matvec(&truth)
            .into_iter()
            .map(|v| v + rng.normal(0.0, problem.obs_noise))
            .collect();
        analysis(problem, &mut ensemble, &y, &mut rng);
        err_f += rmse_state(&ensemble_mean(&ensemble), &truth);
        err_free += rmse_state(&free, &truth);
    }
    (err_f / cycles as f64, err_free / cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_is_deterministic_per_seed() {
        let p = EnkfProblem::oscillator();
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let x = vec![1.0, 2.0];
        assert_eq!(
            forecast_member(&p, &x, &mut r1),
            forecast_member(&p, &x, &mut r2)
        );
    }

    #[test]
    fn analysis_pulls_ensemble_toward_observation() {
        let p = EnkfProblem::oscillator();
        let mut rng = SimRng::new(9);
        // Ensemble centered at 5, observation says 0 (first coordinate).
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![5.0 + rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)])
            .collect();
        let mut ensemble = Matrix::from_rows(&rows);
        let before = ensemble_mean(&ensemble)[0];
        analysis(&p, &mut ensemble, &[0.0], &mut rng);
        let after = ensemble_mean(&ensemble)[0];
        assert!(after.abs() < before.abs() * 0.5, "{before} -> {after}");
    }

    #[test]
    fn filter_beats_free_run() {
        let p = EnkfProblem::oscillator();
        let (filtered, free) = twin_experiment(&p, 30, 50, 123);
        assert!(
            filtered < free * 0.8,
            "filtered RMSE {filtered:.4} should beat free run {free:.4}"
        );
    }

    #[test]
    fn bigger_ensembles_do_not_hurt() {
        let p = EnkfProblem::oscillator();
        let (small, _) = twin_experiment(&p, 5, 60, 77);
        let (large, _) = twin_experiment(&p, 60, 60, 77);
        assert!(large < small * 1.5, "large {large} vs small {small}");
    }

    #[test]
    fn ensemble_mean_and_rmse_helpers() {
        let e = Matrix::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(ensemble_mean(&e), vec![2.0, 4.0]);
        assert!((rmse_state(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn analysis_rejects_single_member() {
        let p = EnkfProblem::oscillator();
        let mut rng = SimRng::new(1);
        let mut e = Matrix::from_rows(&[vec![0.0, 0.0]]);
        analysis(&p, &mut e, &[0.0], &mut rng);
    }
}

/// Run one assimilation cycle with the forecasts fanned out as pilot compute
/// units — the paper's EnKF case study shape (\[50\]): N independent member
/// forecasts per cycle, then a global analysis.
///
/// Members are forecast with per-member RNG streams derived from `seed`, so
/// the result is identical to a sequential loop using the same streams
/// (asserted by the tests).
pub fn forecast_ensemble_on_pilots(
    svc: &pilot_core::thread::ThreadPilotService,
    problem: &EnkfProblem,
    ensemble: &mut Matrix,
    cycle: u64,
    seed: u64,
) -> usize {
    use pilot_core::describe::UnitDescription;
    use pilot_core::state::UnitState;
    use pilot_core::thread::{kernel_fn, TaskOutput};
    use std::sync::Arc;

    let problem = Arc::new(problem.clone());
    let root = SimRng::new(seed);
    let units: Vec<_> = (0..ensemble.rows())
        .map(|i| {
            let problem = Arc::clone(&problem);
            let x = ensemble.row(i).to_vec();
            // Stream id mixes member and cycle so every (member, cycle)
            // forecast has its own reproducible noise; kernels are `Fn`, so
            // the mutable RNG lives behind a Mutex (each kernel runs once).
            let rng_cell = parking_lot::Mutex::new(root.stream((i as u64) << 32 | cycle));
            svc.submit_unit(
                UnitDescription::new(1).tagged("enkf-forecast"),
                kernel_fn(move |_| {
                    let mut rng = rng_cell.lock();
                    Ok(TaskOutput::of(forecast_member(&problem, &x, &mut rng)))
                }),
            )
        })
        .collect();
    let mut failed = 0usize;
    for (i, u) in units.into_iter().enumerate() {
        // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
        let out = svc.wait_unit(u).expect("unit issued by this service");
        match (out.state, out.output) {
            (UnitState::Done, Some(Ok(o))) => {
                // lint: allow(panic, reason = "the forecast kernel two screens up always returns a Vec<f64> state vector")
                let next = o.downcast::<Vec<f64>>().expect("kernel returns state");
                ensemble.row_mut(i).copy_from_slice(&next);
            }
            _ => failed += 1,
        }
    }
    failed
}

#[cfg(test)]
mod pilot_tests {
    use super::*;
    use pilot_core::describe::PilotDescription;
    use pilot_core::thread::ThreadPilotService;
    use pilot_sim::SimDuration;

    fn svc(cores: u32) -> ThreadPilotService {
        let s = ThreadPilotService::new(Box::new(pilot_core::scheduler::FirstFitScheduler));
        let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
        assert!(s.wait_pilot_active(p));
        s
    }

    #[test]
    fn pilot_forecast_matches_sequential_streams() {
        let problem = EnkfProblem::oscillator();
        let mut init_rng = SimRng::new(99);
        let mut parallel = initial_ensemble(12, 2, &mut init_rng);
        let mut sequential = parallel.clone();

        // Sequential reference with the same per-(member, cycle) streams.
        let root = SimRng::new(777);
        for i in 0..sequential.rows() {
            let mut rng = root.stream((i as u64) << 32 | 3);
            let next = forecast_member(&problem, sequential.row(i), &mut rng);
            sequential.row_mut(i).copy_from_slice(&next);
        }

        let s = svc(4);
        let failed = forecast_ensemble_on_pilots(&s, &problem, &mut parallel, 3, 777);
        s.shutdown();
        assert_eq!(failed, 0);
        assert_eq!(
            parallel, sequential,
            "pilot execution must not change the math"
        );
    }

    #[test]
    fn full_twin_experiment_through_pilots_beats_free_run() {
        let problem = EnkfProblem::oscillator();
        let s = svc(4);
        let mut rng = SimRng::new(2024);
        let d = problem.dim();
        let mut truth: Vec<f64> = (0..d).map(|_| rng.normal(1.0, 0.5)).collect();
        let mut free: Vec<f64> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
        let mut ensemble = initial_ensemble(20, d, &mut rng);
        let (mut err_f, mut err_free) = (0.0, 0.0);
        let cycles = 30;
        for cycle in 0..cycles {
            truth = forecast_member(&problem, &truth, &mut rng);
            free = problem.a.matvec(&free);
            let failed = forecast_ensemble_on_pilots(&s, &problem, &mut ensemble, cycle, 0xE4F);
            assert_eq!(failed, 0);
            let y: Vec<f64> = problem
                .h
                .matvec(&truth)
                .into_iter()
                .map(|v| v + rng.normal(0.0, problem.obs_noise))
                .collect();
            analysis(&problem, &mut ensemble, &y, &mut rng);
            err_f += rmse_state(&ensemble_mean(&ensemble), &truth);
            err_free += rmse_state(&free, &truth);
        }
        s.shutdown();
        assert!(
            err_f < err_free * 0.8,
            "pilot-driven filter {err_f:.3} vs free run {err_free:.3}"
        );
    }
}
