//! Flat row-major matrices shared by the compute kernels (SoA layout).
//!
//! The K-Means and EnKF hot loops used to walk `Vec<Vec<f64>>` — one heap
//! allocation per point, pointer chases on every distance evaluation. This
//! module is the paper's "Optimize Application Algorithms" lesson applied to
//! data layout: a [`Matrix`] stores all rows contiguously (`Vec<f64>` plus a
//! stride), so blocked kernels stream through cache lines and a row block is
//! one flat slice that [`pilot_core::Parallelism::par_chunks`] can split at
//! fixed boundaries.
//!
//! Kept deliberately minimal: exactly the operations the apps need
//! (row access, matrix-vector, the streaming Gram-style product [`Matrix::at_b`],
//! and a pivoted Gaussian [`Matrix::solve`] with a ridge fallback).

/// Row-major dense matrix: `rows × cols` values in one contiguous buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row vectors (all the same length; empty input gives 0×0).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Adopt a flat row-major buffer. `data.len()` must be `rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer has the wrong size");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the row stride).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole buffer, row-major. Chunking this at multiples of
    /// [`cols()`](Matrix::cols) yields whole-row blocks for parallel kernels.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copy the rows back out as vectors (interop with AoS call sites).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows).map(|i| self.row(i).to_vec()).collect()
    }

    /// Split into `n` near-equal row bands (the partitioning used to feed
    /// `pilot_memory` caches); trailing bands may be empty.
    pub fn partition_rows(&self, n: usize) -> Vec<Matrix> {
        let n = n.max(1);
        let band = self.rows.div_ceil(n).max(1);
        (0..n)
            .map(|p| {
                let start = (p * band).min(self.rows);
                let end = ((p + 1) * band).min(self.rows);
                Matrix {
                    rows: end - start,
                    cols: self.cols,
                    data: self.data[start * self.cols..end * self.cols].to_vec(),
                }
            })
            .collect()
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `selfᵀ · other` as one streaming pass: both operands are walked
    /// row-by-row in layout order, accumulating rank-1 updates, so the
    /// product of two tall matrices (the EnKF anomaly statistics) never
    /// materializes a transpose.
    pub fn at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a = self.row(r);
            let b = other.row(r);
            for (i, &ai) in a.iter().enumerate() {
                if ai == 0.0 {
                    continue;
                }
                let dst = out.row_mut(i);
                for (d, &bj) in dst.iter_mut().zip(b) {
                    *d += ai * bj;
                }
            }
        }
        out
    }

    /// Multiply every element in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting plus a
    /// tiny ridge fallback when the system is singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        match gauss_solve(self.clone(), b.to_vec()) {
            Some(x) => Some(x),
            None => {
                // Ridge-regularize: (A + λI) x = b.
                let n = self.rows;
                let mut a = self.clone();
                let scale = (0..n).map(|i| a[(i, i)].abs()).fold(0.0, f64::max);
                let lambda = (scale * 1e-8).max(1e-12);
                for i in 0..n {
                    a[(i, i)] += lambda;
                }
                gauss_solve(a, b.to_vec())
            }
        }
    }
}

fn gauss_solve(mut a: Matrix, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.rows;
    for col in 0..n {
        // Partial pivot.
        let Some(pivot) = (col..n).max_by(|&i, &j| a[(i, col)].abs().total_cmp(&a[(j, col)].abs()))
        else {
            return None; // n == 0: nothing to solve
        };
        if a[(pivot, col)].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot, j)];
                a[(pivot, j)] = tmp;
            }
            b.swap(col, pivot);
        }
        for row in (col + 1)..n {
            let f = a[(row, col)] / a[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                a[(row, j)] -= f * a[(col, j)];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= a[(i, j)] * x[j];
        }
        x[i] = s / a[(i, i)];
    }
    Some(x)
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rows_and_flat_agree() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let f = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m, f);
        assert_eq!(m.to_rows(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(Matrix::from_rows(&[]).shape(), (0, 0));
    }

    #[test]
    fn row_mut_and_scale() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.scale(2.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn partition_rows_covers_and_pads() {
        let m = Matrix::from_flat(5, 2, (0..10).map(|v| v as f64).collect());
        let parts = m.partition_rows(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].rows(), 2);
        assert_eq!(parts[2].rows(), 1);
        let total: usize = parts.iter().map(|p| p.rows()).sum();
        assert_eq!(total, 5);
        assert_eq!(parts[2].row(0), &[8.0, 9.0]);
        // More bands than rows: trailing bands are empty but well-formed.
        let parts = m.partition_rows(8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(|p| p.rows()).sum::<usize>(), 5);
    }

    #[test]
    fn matvec_matches_by_hand() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn at_b_is_a_transpose_product() {
        // A is 3×2, B is 3×2 → AᵀB is 2×2.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let p = a.at_b(&b);
        assert_eq!(p.shape(), (2, 2));
        // Column i of A dotted with column j of B.
        assert_eq!(p[(0, 0)], 1.0 + 5.0);
        assert_eq!(p[(0, 1)], 3.0 + 5.0);
        assert_eq!(p[(1, 0)], 2.0 + 6.0);
        assert_eq!(p[(1, 1)], 4.0 + 6.0);
    }

    #[test]
    fn solve_well_conditioned_and_pivoting() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = a.solve(&[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(a.solve(&[2.0, 3.0]).unwrap(), vec![3.0, 2.0]);
    }

    #[test]
    fn singular_falls_back_to_ridge() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let x = a.solve(&[2.0, 2.0]).unwrap();
        let r = a.matvec(&x);
        assert!((r[0] - 2.0).abs() < 1e-3 && (r[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn mis_sized_flat_buffer_panics() {
        let _ = Matrix::from_flat(2, 2, vec![0.0; 3]);
    }
}
