//! Pairwise-distance analysis (the leaflet-finder / Hausdorff-distance
//! family of MD trajectory analyses, \[53\]).
//!
//! Two algorithms computing the same answer — contact pairs within a cutoff:
//! a naive O(n²) scan and a uniform-grid O(n) method. The paper's lesson
//! "Optimize Application Algorithms" (Section VI) is exactly this pair:
//! the grid algorithm beats scaling the naive one out (EXP AB-2).

use pilot_core::Parallelism;
use pilot_sim::SimRng;

/// Rows per parallel block for [`contacts_naive_par`] and
/// [`hausdorff_directed_par`]; fixed boundaries keep results independent of
/// the thread count.
pub const PAIRWISE_BLOCK: usize = 256;

/// A 2-D point cloud.
pub fn generate_points(n: usize, box_len: f64, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| [rng.f64_range(0.0, box_len), rng.f64_range(0.0, box_len)])
        .collect()
}

#[inline]
fn within(a: [f64; 2], b: [f64; 2], cutoff2: f64) -> bool {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy <= cutoff2
}

/// Count contact pairs by brute force: O(n²).
pub fn contacts_naive(points: &[[f64; 2]], cutoff: f64) -> u64 {
    let c2 = cutoff * cutoff;
    let mut count = 0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if within(points[i], points[j], c2) {
                count += 1;
            }
        }
    }
    count
}

/// [`contacts_naive`] with the outer loop fanned over [`PAIRWISE_BLOCK`]-row
/// blocks. Each block counts its pairs `(i, j > i)` independently; the block
/// counts are integers, so the total is identical for any thread count.
pub fn contacts_naive_par(points: &[[f64; 2]], cutoff: f64, par: &Parallelism) -> u64 {
    let c2 = cutoff * cutoff;
    par.par_map_reduce(
        points,
        PAIRWISE_BLOCK,
        |bi, chunk| {
            let base = bi * PAIRWISE_BLOCK;
            let mut count = 0u64;
            for (off, &p) in chunk.iter().enumerate() {
                for &q in &points[base + off + 1..] {
                    if within(p, q, c2) {
                        count += 1;
                    }
                }
            }
            count
        },
        |a, b| a + b,
    )
    .unwrap_or(0)
}

/// Count contact pairs with a uniform grid of cell size `cutoff`: near-O(n)
/// for homogeneous densities.
pub fn contacts_grid(points: &[[f64; 2]], cutoff: f64) -> u64 {
    if points.is_empty() {
        return 0;
    }
    let c2 = cutoff * cutoff;
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p[0]);
        min_y = min_y.min(p[1]);
        max_x = max_x.max(p[0]);
        max_y = max_y.max(p[1]);
    }
    let cell = cutoff.max(1e-12);
    let nx = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
    let ny = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
    let cell_of = |p: &[f64; 2]| -> (usize, usize) {
        let cx = (((p[0] - min_x) / cell).floor() as usize).min(nx - 1);
        let cy = (((p[1] - min_y) / cell).floor() as usize).min(ny - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
    for (i, p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * nx + cx].push(i as u32);
    }
    let mut count = 0u64;
    for cy in 0..ny {
        for cx in 0..nx {
            let here = &grid[cy * nx + cx];
            // Within the cell.
            for a in 0..here.len() {
                for b in (a + 1)..here.len() {
                    if within(points[here[a] as usize], points[here[b] as usize], c2) {
                        count += 1;
                    }
                }
            }
            // Forward half-neighbourhood (E, SW, S, SE) so each pair is
            // visited exactly once.
            for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                let ox = cx as isize + dx;
                let oy = cy as isize + dy;
                if ox < 0 || oy < 0 || ox >= nx as isize || oy >= ny as isize {
                    continue;
                }
                let there = &grid[oy as usize * nx + ox as usize];
                for &a in here {
                    for &b in there {
                        if within(points[a as usize], points[b as usize], c2) {
                            count += 1;
                        }
                    }
                }
            }
        }
    }
    count
}

/// Directed Hausdorff distance from `a` to `b` (max over a of min over b),
/// the trajectory-comparison metric of \[53\]. O(|a|·|b|).
pub fn hausdorff_directed(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
    a.iter()
        .map(|pa| {
            b.iter()
                .map(|pb| {
                    let dx = pa[0] - pb[0];
                    let dy = pa[1] - pb[1];
                    (dx * dx + dy * dy).sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

/// [`hausdorff_directed`] fanned over [`PAIRWISE_BLOCK`]-row blocks of `a`.
/// The reduction is `max`, which is exact, so the distance is bit-identical
/// to the sequential scan for any thread count.
pub fn hausdorff_directed_par(a: &[[f64; 2]], b: &[[f64; 2]], par: &Parallelism) -> f64 {
    par.par_map_reduce(
        a,
        PAIRWISE_BLOCK,
        |_, chunk| hausdorff_directed(chunk, b),
        f64::max,
    )
    .unwrap_or(0.0)
}

/// Symmetric Hausdorff distance.
pub fn hausdorff(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
    hausdorff_directed(a, b).max(hausdorff_directed(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::WallClock;

    #[test]
    fn grid_matches_naive_on_random_clouds() {
        for seed in 0..5 {
            let pts = generate_points(400, 50.0, seed);
            let naive = contacts_naive(&pts, 2.0);
            let grid = contacts_grid(&pts, 2.0);
            assert_eq!(naive, grid, "seed {seed}");
        }
    }

    #[test]
    fn known_tiny_configuration() {
        let pts = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [10.0, 10.0]];
        // Pairs within cutoff 1.5: (0,1), (0,2), (1,2) [dist √2 ≈ 1.414].
        assert_eq!(contacts_naive(&pts, 1.5), 3);
        assert_eq!(contacts_grid(&pts, 1.5), 3);
        // Cutoff 1.0 keeps only the two axis pairs.
        assert_eq!(contacts_naive(&pts, 1.0), 2);
        assert_eq!(contacts_grid(&pts, 1.0), 2);
    }

    #[test]
    fn empty_and_single_point() {
        assert_eq!(contacts_naive(&[], 1.0), 0);
        assert_eq!(contacts_grid(&[], 1.0), 0);
        assert_eq!(contacts_grid(&[[1.0, 1.0]], 1.0), 0);
    }

    #[test]
    fn grid_is_faster_at_scale() {
        let pts = generate_points(20_000, 200.0, 3);
        let t0 = WallClock::start();
        let g = contacts_grid(&pts, 1.5);
        let t_grid = t0.elapsed();
        let t0 = WallClock::start();
        let n = contacts_naive(&pts, 1.5);
        let t_naive = t0.elapsed();
        assert_eq!(g, n);
        assert!(
            t_naive > t_grid * 3,
            "naive {t_naive:?} should dwarf grid {t_grid:?}"
        );
    }

    #[test]
    fn parallel_kernels_match_sequential_exactly() {
        let pts = generate_points(3000, 80.0, 11);
        let seq_contacts = contacts_naive(&pts, 1.5);
        let other = generate_points(500, 80.0, 12);
        let seq_h = hausdorff_directed(&pts, &other);
        for threads in [1, 2, 4, 8] {
            let par = Parallelism::new(threads);
            assert_eq!(contacts_naive_par(&pts, 1.5, &par), seq_contacts);
            assert_eq!(
                hausdorff_directed_par(&pts, &other, &par).to_bits(),
                seq_h.to_bits(),
                "threads={threads}"
            );
        }
        // Empty inputs take the reduce-of-nothing path.
        let par = Parallelism::new(4);
        assert_eq!(contacts_naive_par(&[], 1.0, &par), 0);
        assert_eq!(hausdorff_directed_par(&[], &pts, &par), 0.0);
    }

    #[test]
    fn hausdorff_properties() {
        let a = vec![[0.0, 0.0], [1.0, 0.0]];
        let b = vec![[0.0, 0.0], [1.0, 0.0]];
        assert_eq!(hausdorff(&a, &b), 0.0);
        let c = vec![[0.0, 3.0]];
        // directed(a→c): max(min dist) = dist([1,0],[0,3]) = √10.
        assert!((hausdorff_directed(&a, &c) - 10f64.sqrt()).abs() < 1e-12);
        // directed(c→a): dist([0,3],[0,0]) = 3.
        assert!((hausdorff_directed(&c, &a) - 3.0).abs() < 1e-12);
        assert!((hausdorff(&a, &c) - 10f64.sqrt()).abs() < 1e-12);
        // Symmetry of the symmetric form.
        assert_eq!(hausdorff(&a, &c), hausdorff(&c, &a));
    }
}
