//! K-Means (Lloyd's algorithm) — the iterative machine-learning scenario.
//!
//! Structured exactly as the paper's Pilot-Memory case study: partitioned
//! points, a per-partition assignment step producing partial sums, and a
//! global reduction updating the centroids. The step/reduce functions plug
//! straight into `pilot_memory::IterativeExecutor`; [`lloyd_sequential`] is
//! the verification reference.
//!
//! ## Layout and parallelism
//!
//! Points and centroids live in a flat row-major [`Matrix`] (one point per
//! row). [`assign_step`] is a *blocked* kernel: it walks fixed
//! [`ASSIGN_BLOCK_ROWS`]-row blocks, accumulates each block into a flat
//! per-block [`Partial`] (no allocation inside the point loop), and merges
//! block partials in block order. Handing it a multi-threaded
//! [`Parallelism`] farms blocks out to workers; because block boundaries and
//! the merge order never depend on the thread count, the result is
//! **bit-identical** to the sequential run (property-tested in
//! `tests/proptest_invariants.rs`). [`assign_step_aos`] keeps the original
//! `Vec<Vec<f64>>` walk as the benchmark baseline for the layout comparison.

use crate::linalg::Matrix;
use pilot_core::Parallelism;
use pilot_sim::SimRng;

/// A data point (AoS form, used by the generator and the layout baseline).
pub type Point = Vec<f64>;

/// Rows per assignment block: boundaries are fixed by this constant and the
/// dataset size alone, which is what makes parallel runs bit-identical to
/// sequential ones (see the module docs).
pub const ASSIGN_BLOCK_ROWS: usize = 1024;

/// Synthetic-blob generator configuration.
#[derive(Clone, Debug)]
pub struct BlobConfig {
    /// Number of clusters.
    pub k: usize,
    /// Dimensions.
    pub dims: usize,
    /// Total points.
    pub points: usize,
    /// Cluster standard deviation.
    pub spread: f64,
    /// Center coordinate range (±).
    pub center_range: f64,
    /// Seed.
    pub seed: u64,
}

impl BlobConfig {
    /// A small, well-separated default.
    pub fn new(k: usize, dims: usize, points: usize, seed: u64) -> Self {
        BlobConfig {
            k,
            dims,
            points,
            spread: 0.5,
            center_range: 10.0,
            seed,
        }
    }
}

/// Generate Gaussian blobs; returns `(points, true_centers)`.
pub fn generate_blobs(cfg: &BlobConfig) -> (Vec<Point>, Vec<Point>) {
    let mut rng = SimRng::new(cfg.seed);
    let centers: Vec<Point> = (0..cfg.k)
        .map(|_| {
            (0..cfg.dims)
                .map(|_| rng.f64_range(-cfg.center_range, cfg.center_range))
                .collect()
        })
        .collect();
    let points = (0..cfg.points)
        .map(|i| {
            let c = &centers[i % cfg.k];
            c.iter().map(|&x| x + rng.normal(0.0, cfg.spread)).collect()
        })
        .collect();
    (points, centers)
}

/// [`generate_blobs`] straight into the flat layout; returns
/// `(points, true_centers)` as matrices with one point per row.
pub fn generate_blob_matrix(cfg: &BlobConfig) -> (Matrix, Matrix) {
    let (points, centers) = generate_blobs(cfg);
    (Matrix::from_rows(&points), Matrix::from_rows(&centers))
}

fn d2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Squared distance with four independent accumulator chains.
///
/// The naive fold above is a serial FP-add dependency chain the compiler may
/// not reassociate, so it runs at add-latency per element regardless of data
/// layout. Splitting into four fixed chains breaks the chain without
/// sacrificing determinism: the grouping depends only on `a.len()`, never on
/// thread count or block position, so it is part of the kernel definition.
#[inline]
fn d2_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let n4 = a.len() & !3;
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a[..n4].chunks_exact(4).zip(b[..n4].chunks_exact(4)) {
        let e0 = ca[0] - cb[0];
        let e1 = ca[1] - cb[1];
        let e2 = ca[2] - cb[2];
        let e3 = ca[3] - cb[3];
        acc[0] += e0 * e0;
        acc[1] += e1 * e1;
        acc[2] += e2 * e2;
        acc[3] += e3 * e3;
    }
    let mut tail = 0.0;
    for (x, y) in a[n4..].iter().zip(&b[n4..]) {
        let e = x - y;
        tail += e * e;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// [`d2_unrolled`] for a compile-time width: the fully unrolled body keeps
/// the point row in registers across the centroid scan. The accumulator
/// grouping matches [`d2_unrolled`] whenever `D % 4 == 0`, so specialized and
/// generic paths produce the same bits for the widths we dispatch on.
#[inline(always)]
fn d2_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let n4 = D & !3;
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        let e0 = a[i] - b[i];
        let e1 = a[i + 1] - b[i + 1];
        let e2 = a[i + 2] - b[i + 2];
        let e3 = a[i + 3] - b[i + 3];
        acc[0] += e0 * e0;
        acc[1] += e1 * e1;
        acc[2] += e2 * e2;
        acc[3] += e3 * e3;
        i += 4;
    }
    let mut tail = 0.0;
    while i < D {
        let e = a[i] - b[i];
        tail += e * e;
        i += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Partial sums from one partition: flat per-centroid coordinate sums
/// (`k * dims`, row-major like [`Matrix`]), counts, and the partition's
/// inertia contribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Partial {
    /// Centroid count.
    pub k: usize,
    /// Dimensions.
    pub dims: usize,
    /// Flat per-centroid coordinate sums (`sums[c * dims + d]`).
    pub sums: Vec<f64>,
    /// Per-centroid assigned counts.
    pub counts: Vec<u64>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl Partial {
    /// Zero partial for `k` centroids of `dims` dimensions.
    pub fn zero(k: usize, dims: usize) -> Self {
        Partial {
            k,
            dims,
            sums: vec![0.0; k * dims],
            counts: vec![0; k],
            inertia: 0.0,
        }
    }

    /// The coordinate-sum row for centroid `c`.
    pub fn sum_of(&self, c: usize) -> &[f64] {
        &self.sums[c * self.dims..(c + 1) * self.dims]
    }

    /// Merge another partial into this one.
    pub fn merge(&mut self, other: &Partial) {
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.inertia += other.inertia;
    }
}

/// Accumulate one flat row-major block of points into `partial`. The inner
/// loop allocates nothing: best-centroid search and the sum update both
/// stream over contiguous rows.
fn assign_rows(rows: &[f64], centroids: &Matrix, partial: &mut Partial) {
    // Dispatch the hot widths to the register-resident specialization; the
    // `D % 4 == 0` widths reassociate identically to the generic path.
    match centroids.cols() {
        4 => assign_rows_fixed::<4>(rows, centroids, partial),
        8 => assign_rows_fixed::<8>(rows, centroids, partial),
        16 => assign_rows_fixed::<16>(rows, centroids, partial),
        32 => assign_rows_fixed::<32>(rows, centroids, partial),
        _ => assign_rows_generic(rows, centroids, partial),
    }
}

/// [`assign_rows`] body for a compile-time point width.
fn assign_rows_fixed<const D: usize>(rows: &[f64], centroids: &Matrix, partial: &mut Partial) {
    let k = centroids.rows();
    for p in rows.chunks_exact(D) {
        let Ok(p) = <&[f64; D]>::try_from(p) else {
            continue; // unreachable: chunks_exact yields D-length slices
        };
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let Ok(crow) = <&[f64; D]>::try_from(centroids.row(c)) else {
                continue; // unreachable: rows are D wide by dispatch
            };
            let d = d2_fixed(p, crow);
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        partial.counts[best] += 1;
        partial.inertia += best_d;
        for (s, &x) in partial.sums[best * D..(best + 1) * D].iter_mut().zip(p) {
            *s += x;
        }
    }
}

/// [`assign_rows`] body for arbitrary widths.
fn assign_rows_generic(rows: &[f64], centroids: &Matrix, partial: &mut Partial) {
    let dims = centroids.cols();
    let k = centroids.rows();
    for p in rows.chunks_exact(dims) {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let d = d2_unrolled(p, centroids.row(c));
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        partial.counts[best] += 1;
        partial.inertia += best_d;
        for (s, &x) in partial.sums[best * dims..(best + 1) * dims]
            .iter_mut()
            .zip(p)
        {
            *s += x;
        }
    }
}

/// Assignment step over one partition, blocked and optionally parallel.
///
/// Blocks are [`ASSIGN_BLOCK_ROWS`] rows regardless of `par`; block partials
/// merge in block order on the calling thread, so any thread count produces
/// the bit-identical [`Partial`].
pub fn assign_step(points: &Matrix, centroids: &Matrix, par: &Parallelism) -> Partial {
    let k = centroids.rows();
    let dims = centroids.cols();
    assert!(k >= 1, "k >= 1");
    if dims == 0 || points.rows() == 0 {
        return Partial::zero(k, dims);
    }
    assert_eq!(points.cols(), dims, "points and centroids disagree on dims");
    par.par_map_reduce(
        points.as_slice(),
        ASSIGN_BLOCK_ROWS * dims,
        |_, rows| {
            let mut partial = Partial::zero(k, dims);
            assign_rows(rows, centroids, &mut partial);
            partial
        },
        |mut acc, b| {
            acc.merge(&b);
            acc
        },
    )
    .unwrap_or_else(|| Partial::zero(k, dims))
}

/// The original `Vec<Vec<f64>>` assignment walk, kept as the AoS layout
/// baseline for `BENCH_kernels` (same math, same [`Partial`] output — only
/// the memory layout differs).
pub fn assign_step_aos(points: &[Point], centroids: &[Point]) -> Partial {
    let k = centroids.len();
    let dims = centroids.first().map(|c| c.len()).unwrap_or(0);
    let mut partial = Partial::zero(k, dims);
    for p in points {
        let (best, dist) = centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, d2(p, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // lint: allow(panic, reason = "centroids is never empty: k is clamped to >= 1 at config time")
            .expect("k >= 1");
        partial.counts[best] += 1;
        partial.inertia += dist;
        for (s, &x) in partial.sums[best * dims..(best + 1) * dims]
            .iter_mut()
            .zip(p)
        {
            *s += x;
        }
    }
    partial
}

/// Reduce partials into new centroids. Empty centroids keep their previous
/// position. Returns `(new_centroids, inertia)`.
pub fn update_centroids(partials: &[Partial], previous: &Matrix) -> (Matrix, f64) {
    let k = previous.rows();
    let dims = previous.cols();
    let mut merged = Partial::zero(k, dims);
    for p in partials {
        merged.merge(p);
    }
    let mut centroids = Matrix::zeros(k, dims);
    for c in 0..k {
        let row = centroids.row_mut(c);
        if merged.counts[c] == 0 {
            row.copy_from_slice(previous.row(c));
        } else {
            for (dst, &s) in row.iter_mut().zip(merged.sum_of(c)) {
                *dst = s / merged.counts[c] as f64;
            }
        }
    }
    (centroids, merged.inertia)
}

/// Deterministic initialization: the first `k` points.
pub fn init_centroids(points: &Matrix, k: usize) -> Matrix {
    let dims = points.cols();
    let mut c = Matrix::zeros(k.min(points.rows()), dims);
    for i in 0..c.rows() {
        c.row_mut(i).copy_from_slice(points.row(i));
    }
    c
}

/// Result of a K-Means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Final centroids (one per row).
    pub centroids: Matrix,
    /// Inertia per iteration (monotone non-increasing for Lloyd's).
    pub inertia_history: Vec<f64>,
}

/// Sequential reference implementation (the blocked kernel on one thread).
pub fn lloyd_sequential(points: &Matrix, k: usize, iterations: usize) -> KMeansResult {
    let par = Parallelism::sequential();
    let mut centroids = init_centroids(points, k);
    let mut inertia_history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let partial = assign_step(points, &centroids, &par);
        let (next, inertia) = update_centroids(&[partial], &centroids);
        centroids = next;
        inertia_history.push(inertia);
    }
    KMeansResult {
        centroids,
        inertia_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic_and_sized() {
        let cfg = BlobConfig::new(3, 2, 90, 42);
        let (p1, c1) = generate_blobs(&cfg);
        let (p2, c2) = generate_blobs(&cfg);
        assert_eq!(p1, p2);
        assert_eq!(c1, c2);
        assert_eq!(p1.len(), 90);
        assert_eq!(c1.len(), 3);
        assert_eq!(p1[0].len(), 2);
        let (m, c) = generate_blob_matrix(&cfg);
        assert_eq!(m.shape(), (90, 2));
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(m.row(5), &p1[5][..]);
    }

    #[test]
    fn inertia_is_monotone_nonincreasing() {
        let cfg = BlobConfig::new(4, 3, 400, 7);
        let (points, _) = generate_blob_matrix(&cfg);
        let result = lloyd_sequential(&points, 4, 10);
        for w in result.inertia_history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "inertia increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_well_separated_centers() {
        let cfg = BlobConfig::new(3, 2, 600, 11);
        let (points, truth) = generate_blob_matrix(&cfg);
        let result = lloyd_sequential(&points, 3, 25);
        // Every true center has a found centroid within 3 spreads.
        for t in 0..truth.rows() {
            let t = truth.row(t);
            let nearest = (0..result.centroids.rows())
                .map(|c| d2(t, result.centroids.row(c)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.5, "center {t:?} missed by {nearest}");
        }
    }

    #[test]
    fn partitioned_equals_sequential() {
        let cfg = BlobConfig::new(3, 2, 300, 9);
        let (points, _) = generate_blob_matrix(&cfg);
        let centroids = init_centroids(&points, 3);
        let par = Parallelism::sequential();
        // Whole dataset in one step.
        let whole = assign_step(&points, &centroids, &par);
        // Split into 4 partitions and merge.
        let parts: Vec<Partial> = points
            .partition_rows(4)
            .iter()
            .map(|band| assign_step(band, &centroids, &par))
            .collect();
        let (next_split, inertia_split) = update_centroids(&parts, &centroids);
        let (next_whole, inertia_whole) = update_centroids(&[whole], &centroids);
        // Summation order differs between the two paths; equality is up to
        // floating-point associativity.
        for (a, b) in next_split.as_slice().iter().zip(next_whole.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((inertia_split - inertia_whole).abs() < 1e-6);
    }

    #[test]
    fn parallel_assign_is_bit_identical_to_sequential() {
        let cfg = BlobConfig::new(5, 3, 5000, 13);
        let (points, _) = generate_blob_matrix(&cfg);
        let centroids = init_centroids(&points, 5);
        let seq = assign_step(&points, &centroids, &Parallelism::sequential());
        for threads in [2, 4, 8] {
            let par = assign_step(&points, &centroids, &Parallelism::new(threads));
            assert_eq!(seq, par, "threads={threads} must not change a single bit");
        }
    }

    #[test]
    fn soa_matches_aos_baseline() {
        let cfg = BlobConfig::new(4, 3, 700, 21);
        let (points_aos, _) = generate_blobs(&cfg);
        let points = Matrix::from_rows(&points_aos);
        let centroids_aos: Vec<Point> = points_aos.iter().take(4).cloned().collect();
        let centroids = init_centroids(&points, 4);
        let soa = assign_step(&points, &centroids, &Parallelism::sequential());
        let aos = assign_step_aos(&points_aos, &centroids_aos);
        assert_eq!(soa.counts, aos.counts, "assignments must agree exactly");
        // Sums/inertia accumulate in different block orders: tolerance.
        for (a, b) in soa.sums.iter().zip(&aos.sums) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((soa.inertia - aos.inertia).abs() < 1e-6);
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let points = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.1]]);
        // Third centroid far away: gets nothing assigned.
        let centroids = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.1], vec![100.0, 100.0]]);
        let partial = assign_step(&points, &centroids, &Parallelism::sequential());
        assert_eq!(partial.counts[2], 0);
        let (next, _) = update_centroids(&[partial], &centroids);
        assert_eq!(next.row(2), &[100.0, 100.0]);
    }

    #[test]
    fn partial_merge_is_commutative() {
        let cfg = BlobConfig::new(2, 2, 100, 3);
        let (points, _) = generate_blob_matrix(&cfg);
        let centroids = init_centroids(&points, 2);
        let par = Parallelism::sequential();
        let halves = points.partition_rows(2);
        let a = assign_step(&halves[0], &centroids, &par);
        let b = assign_step(&halves[1], &centroids, &par);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counts, ba.counts);
        assert!((ab.inertia - ba.inertia).abs() < 1e-9);
        for (x, y) in ab.sums.iter().zip(&ba.sums) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
