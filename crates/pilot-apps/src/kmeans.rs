//! K-Means (Lloyd's algorithm) — the iterative machine-learning scenario.
//!
//! Structured exactly as the paper's Pilot-Memory case study: partitioned
//! points, a per-partition assignment step producing partial sums, and a
//! global reduction updating the centroids. The step/reduce functions plug
//! straight into `pilot_memory::IterativeExecutor`; [`lloyd_sequential`] is
//! the verification reference.

use pilot_sim::SimRng;

/// A data point.
pub type Point = Vec<f64>;

/// Synthetic-blob generator configuration.
#[derive(Clone, Debug)]
pub struct BlobConfig {
    /// Number of clusters.
    pub k: usize,
    /// Dimensions.
    pub dims: usize,
    /// Total points.
    pub points: usize,
    /// Cluster standard deviation.
    pub spread: f64,
    /// Center coordinate range (±).
    pub center_range: f64,
    /// Seed.
    pub seed: u64,
}

impl BlobConfig {
    /// A small, well-separated default.
    pub fn new(k: usize, dims: usize, points: usize, seed: u64) -> Self {
        BlobConfig {
            k,
            dims,
            points,
            spread: 0.5,
            center_range: 10.0,
            seed,
        }
    }
}

/// Generate Gaussian blobs; returns `(points, true_centers)`.
pub fn generate_blobs(cfg: &BlobConfig) -> (Vec<Point>, Vec<Point>) {
    let mut rng = SimRng::new(cfg.seed);
    let centers: Vec<Point> = (0..cfg.k)
        .map(|_| {
            (0..cfg.dims)
                .map(|_| rng.f64_range(-cfg.center_range, cfg.center_range))
                .collect()
        })
        .collect();
    let points = (0..cfg.points)
        .map(|i| {
            let c = &centers[i % cfg.k];
            c.iter().map(|&x| x + rng.normal(0.0, cfg.spread)).collect()
        })
        .collect();
    (points, centers)
}

fn d2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Partial sums from one partition: per-centroid coordinate sums, counts,
/// and the partition's inertia contribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Partial {
    /// Per-centroid coordinate sums.
    pub sums: Vec<Vec<f64>>,
    /// Per-centroid assigned counts.
    pub counts: Vec<u64>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl Partial {
    /// Zero partial for `k` centroids of `dims` dimensions.
    pub fn zero(k: usize, dims: usize) -> Self {
        Partial {
            sums: vec![vec![0.0; dims]; k],
            counts: vec![0; k],
            inertia: 0.0,
        }
    }

    /// Merge another partial into this one.
    pub fn merge(&mut self, other: &Partial) {
        for (s, o) in self.sums.iter_mut().zip(&other.sums) {
            for (a, b) in s.iter_mut().zip(o) {
                *a += b;
            }
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.inertia += other.inertia;
    }
}

/// Assignment step over one partition.
pub fn assign_step(points: &[Point], centroids: &[Point]) -> Partial {
    let k = centroids.len();
    let dims = centroids.first().map(|c| c.len()).unwrap_or(0);
    let mut partial = Partial::zero(k, dims);
    for p in points {
        let (best, dist) = centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, d2(p, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // lint: allow(panic, reason = "centroids is never empty: k is clamped to >= 1 at config time")
            .expect("k >= 1");
        partial.counts[best] += 1;
        partial.inertia += dist;
        for (s, &x) in partial.sums[best].iter_mut().zip(p) {
            *s += x;
        }
    }
    partial
}

/// Reduce partials into new centroids. Empty centroids keep their previous
/// position. Returns `(new_centroids, inertia)`.
pub fn update_centroids(partials: &[Partial], previous: &[Point]) -> (Vec<Point>, f64) {
    let k = previous.len();
    let dims = previous.first().map(|c| c.len()).unwrap_or(0);
    let mut merged = Partial::zero(k, dims);
    for p in partials {
        merged.merge(p);
    }
    let centroids = (0..k)
        .map(|i| {
            if merged.counts[i] == 0 {
                previous[i].clone()
            } else {
                merged.sums[i]
                    .iter()
                    .map(|&s| s / merged.counts[i] as f64)
                    .collect()
            }
        })
        .collect();
    (centroids, merged.inertia)
}

/// Deterministic initialization: the first `k` points.
pub fn init_centroids(points: &[Point], k: usize) -> Vec<Point> {
    points.iter().take(k).cloned().collect()
}

/// Result of a K-Means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Final centroids.
    pub centroids: Vec<Point>,
    /// Inertia per iteration (monotone non-increasing for Lloyd's).
    pub inertia_history: Vec<f64>,
}

/// Sequential reference implementation.
pub fn lloyd_sequential(points: &[Point], k: usize, iterations: usize) -> KMeansResult {
    let mut centroids = init_centroids(points, k);
    let mut inertia_history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let partial = assign_step(points, &centroids);
        let (next, inertia) = update_centroids(&[partial], &centroids);
        centroids = next;
        inertia_history.push(inertia);
    }
    KMeansResult {
        centroids,
        inertia_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic_and_sized() {
        let cfg = BlobConfig::new(3, 2, 90, 42);
        let (p1, c1) = generate_blobs(&cfg);
        let (p2, c2) = generate_blobs(&cfg);
        assert_eq!(p1, p2);
        assert_eq!(c1, c2);
        assert_eq!(p1.len(), 90);
        assert_eq!(c1.len(), 3);
        assert_eq!(p1[0].len(), 2);
    }

    #[test]
    fn inertia_is_monotone_nonincreasing() {
        let cfg = BlobConfig::new(4, 3, 400, 7);
        let (points, _) = generate_blobs(&cfg);
        let result = lloyd_sequential(&points, 4, 10);
        for w in result.inertia_history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "inertia increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_well_separated_centers() {
        let cfg = BlobConfig::new(3, 2, 600, 11);
        let (points, truth) = generate_blobs(&cfg);
        let result = lloyd_sequential(&points, 3, 25);
        // Every true center has a found centroid within 3 spreads.
        for t in &truth {
            let nearest = result
                .centroids
                .iter()
                .map(|c| d2(t, c).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.5, "center {t:?} missed by {nearest}");
        }
    }

    #[test]
    fn partitioned_equals_sequential() {
        let cfg = BlobConfig::new(3, 2, 300, 9);
        let (points, _) = generate_blobs(&cfg);
        let centroids = init_centroids(&points, 3);
        // Whole dataset in one step.
        let whole = assign_step(&points, &centroids);
        // Split into 4 partitions and merge.
        let parts: Vec<Partial> = points
            .chunks(75)
            .map(|c| assign_step(c, &centroids))
            .collect();
        let (next_split, inertia_split) = update_centroids(&parts, &centroids);
        let (next_whole, inertia_whole) = update_centroids(&[whole], &centroids);
        // Summation order differs between the two paths; equality is up to
        // floating-point associativity.
        for (a, b) in next_split.iter().flatten().zip(next_whole.iter().flatten()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((inertia_split - inertia_whole).abs() < 1e-6);
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let points = vec![vec![0.0, 0.0], vec![0.1, 0.1]];
        // Third centroid far away: gets nothing assigned.
        let centroids = vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![100.0, 100.0]];
        let partial = assign_step(&points, &centroids);
        assert_eq!(partial.counts[2], 0);
        let (next, _) = update_centroids(&[partial], &centroids);
        assert_eq!(next[2], vec![100.0, 100.0]);
    }

    #[test]
    fn partial_merge_is_commutative() {
        let cfg = BlobConfig::new(2, 2, 100, 3);
        let (points, _) = generate_blobs(&cfg);
        let centroids = init_centroids(&points, 2);
        let a = assign_step(&points[..50], &centroids);
        let b = assign_step(&points[50..], &centroids);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counts, ba.counts);
        assert!((ab.inertia - ba.inertia).abs() < 1e-9);
        for (x, y) in ab.sums.iter().flatten().zip(ba.sums.iter().flatten()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
