//! Synthetic molecular dynamics and replica-exchange.
//!
//! The MD kernel is a Lennard-Jones particle system integrated with velocity
//! Verlet — small enough to run thousands of steps per task, real enough
//! that energies respond to temperature the way the replica-exchange
//! acceptance rule requires. Replica exchange (\[48\], \[72\]) runs `R` replicas
//! at a temperature ladder; after each phase, neighbouring replicas attempt
//! a Metropolis temperature swap. The pilot-backed driver executes each
//! replica-phase as one compute unit — the paper's original motivating
//! workload for the pilot-abstraction.

use parking_lot::Mutex;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_core::WallClock;
use pilot_sim::{SimDuration, SimRng};
use std::sync::Arc;

/// A Lennard-Jones particle system in a cubic periodic box (reduced units).
#[derive(Clone, Debug)]
pub struct MdSystem {
    /// Particle positions.
    pub positions: Vec<[f64; 3]>,
    /// Particle velocities.
    pub velocities: Vec<[f64; 3]>,
    /// Box edge length.
    pub box_len: f64,
    /// Target temperature (velocity-rescaling thermostat).
    pub temperature: f64,
    rng: SimRng,
}

impl MdSystem {
    /// `n` particles on a jittered lattice at the given reduced temperature.
    pub fn new(n: usize, temperature: f64, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        // Density ~0.5: box sized to the particle count.
        let box_len = (n as f64 / 0.5).cbrt();
        let per_side = (n as f64).cbrt().ceil() as usize;
        let spacing = box_len / per_side as f64;
        let mut positions = Vec::with_capacity(n);
        'fill: for x in 0..per_side {
            for y in 0..per_side {
                for z in 0..per_side {
                    if positions.len() >= n {
                        break 'fill;
                    }
                    positions.push([
                        (x as f64 + 0.5 + 0.1 * (rng.f64() - 0.5)) * spacing,
                        (y as f64 + 0.5 + 0.1 * (rng.f64() - 0.5)) * spacing,
                        (z as f64 + 0.5 + 0.1 * (rng.f64() - 0.5)) * spacing,
                    ]);
                }
            }
        }
        let velocities = (0..n)
            .map(|_| {
                let s = temperature.sqrt();
                [rng.normal(0.0, s), rng.normal(0.0, s), rng.normal(0.0, s)]
            })
            .collect();
        MdSystem {
            positions,
            velocities,
            box_len,
            temperature,
            rng,
        }
    }

    fn min_image(&self, mut d: f64) -> f64 {
        let l = self.box_len;
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }

    /// Pairwise LJ forces with a 2.5σ cutoff (O(n²), fine for mini-app n).
    fn forces(&self) -> Vec<[f64; 3]> {
        let n = self.positions.len();
        let mut f = vec![[0.0; 3]; n];
        let rc2 = 2.5f64 * 2.5;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = self.min_image(self.positions[i][0] - self.positions[j][0]);
                let dy = self.min_image(self.positions[i][1] - self.positions[j][1]);
                let dz = self.min_image(self.positions[i][2] - self.positions[j][2]);
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 >= rc2 || r2 < 1e-12 {
                    continue;
                }
                let inv2 = 1.0 / r2;
                let inv6 = inv2 * inv2 * inv2;
                // F/r = 24ε(2 (σ/r)^12 − (σ/r)^6)/r²
                let coef = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
                let fx = coef * dx;
                let fy = coef * dy;
                let fz = coef * dz;
                f[i][0] += fx;
                f[i][1] += fy;
                f[i][2] += fz;
                f[j][0] -= fx;
                f[j][1] -= fy;
                f[j][2] -= fz;
            }
        }
        f
    }

    /// Velocity-Verlet steps with a velocity-rescaling thermostat.
    #[allow(clippy::needless_range_loop)] // positions/velocities/forces indexed in lockstep
    pub fn run(&mut self, steps: usize, dt: f64) {
        let n = self.positions.len();
        let mut f = self.forces();
        for _ in 0..steps {
            for i in 0..n {
                for k in 0..3 {
                    self.velocities[i][k] += 0.5 * dt * f[i][k];
                    self.positions[i][k] += dt * self.velocities[i][k];
                    // Wrap into the box.
                    self.positions[i][k] = self.positions[i][k].rem_euclid(self.box_len);
                }
            }
            f = self.forces();
            for i in 0..n {
                for k in 0..3 {
                    self.velocities[i][k] += 0.5 * dt * f[i][k];
                }
            }
            // Thermostat: rescale toward the target temperature, with a
            // touch of noise so replicas at different T genuinely differ.
            let ke = self.kinetic_energy();
            let t_now = 2.0 * ke / (3.0 * n as f64);
            if t_now > 1e-12 {
                let lambda = (self.temperature / t_now).sqrt();
                let jitter = 1.0 + 0.01 * (self.rng.f64() - 0.5);
                for v in &mut self.velocities {
                    for k in 0..3 {
                        v[k] *= lambda * jitter;
                    }
                }
            }
        }
    }

    /// Lennard-Jones potential energy (cutoff, unshifted).
    pub fn potential_energy(&self) -> f64 {
        let n = self.positions.len();
        let rc2 = 2.5f64 * 2.5;
        let mut e = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = self.min_image(self.positions[i][0] - self.positions[j][0]);
                let dy = self.min_image(self.positions[i][1] - self.positions[j][1]);
                let dz = self.min_image(self.positions[i][2] - self.positions[j][2]);
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 >= rc2 || r2 < 1e-12 {
                    continue;
                }
                let inv6 = (1.0 / r2).powi(3);
                e += 4.0 * (inv6 * inv6 - inv6);
            }
        }
        e
    }

    /// Kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }
}

/// Replica-exchange configuration.
#[derive(Clone, Debug)]
pub struct RexConfig {
    /// Number of replicas (temperature-ladder rungs).
    pub replicas: usize,
    /// Particles per replica.
    pub particles: usize,
    /// MD steps per exchange phase.
    pub steps_per_phase: usize,
    /// Exchange phases.
    pub phases: usize,
    /// Lowest temperature; the ladder is geometric up to `t_max`.
    pub t_min: f64,
    /// Highest temperature.
    pub t_max: f64,
    /// Integration timestep.
    pub dt: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RexConfig {
    /// A small default ensemble.
    pub fn small(replicas: usize) -> Self {
        RexConfig {
            replicas,
            particles: 32,
            steps_per_phase: 20,
            phases: 4,
            t_min: 0.8,
            t_max: 2.0,
            dt: 0.002,
            seed: 0x4D44,
        }
    }

    /// The geometric temperature ladder.
    pub fn ladder(&self) -> Vec<f64> {
        let n = self.replicas.max(1);
        if n == 1 {
            return vec![self.t_min];
        }
        let ratio = (self.t_max / self.t_min).powf(1.0 / (n - 1) as f64);
        (0..n).map(|i| self.t_min * ratio.powi(i as i32)).collect()
    }
}

/// Outcome of a replica-exchange run.
#[derive(Debug)]
pub struct RexReport {
    /// Wall seconds per phase.
    pub phase_wall_s: Vec<f64>,
    /// Exchange attempts accepted.
    pub exchanges_accepted: usize,
    /// Exchange attempts made.
    pub exchanges_attempted: usize,
    /// Final potential energy per replica (ladder order).
    pub final_energies: Vec<f64>,
    /// Units that failed.
    pub failed_units: usize,
}

impl RexReport {
    /// Total wall time.
    pub fn total_wall_s(&self) -> f64 {
        self.phase_wall_s.iter().sum()
    }

    /// Acceptance ratio.
    pub fn acceptance(&self) -> f64 {
        if self.exchanges_attempted == 0 {
            0.0
        } else {
            self.exchanges_accepted as f64 / self.exchanges_attempted as f64
        }
    }
}

/// Run replica exchange on a pilot service: one compute unit per
/// replica-phase, Metropolis temperature swaps between phases.
pub fn run_replica_exchange(svc: &ThreadPilotService, cfg: &RexConfig) -> RexReport {
    let ladder = cfg.ladder();
    let mut replicas: Vec<Arc<Mutex<MdSystem>>> = ladder
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            Arc::new(Mutex::new(MdSystem::new(
                cfg.particles,
                t,
                cfg.seed.wrapping_add(i as u64),
            )))
        })
        .collect();
    let mut exchange_rng = SimRng::new(cfg.seed ^ 0xEC5A);
    let mut phase_wall_s = Vec::with_capacity(cfg.phases);
    let mut accepted = 0usize;
    let mut attempted = 0usize;
    let mut failed_units = 0usize;
    for phase in 0..cfg.phases {
        let t0 = WallClock::start();
        let units: Vec<_> = replicas
            .iter()
            .map(|replica| {
                let replica = Arc::clone(replica);
                let steps = cfg.steps_per_phase;
                let dt = cfg.dt;
                svc.submit_unit(
                    UnitDescription::new(1).tagged("rex-phase"),
                    kernel_fn(move |_| {
                        let mut sys = replica.lock();
                        sys.run(steps, dt);
                        Ok(TaskOutput::of(sys.potential_energy()))
                    }),
                )
            })
            .collect();
        let mut energies: Vec<f64> = vec![0.0; replicas.len()];
        for (i, u) in units.into_iter().enumerate() {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
            let out = svc.wait_unit(u).expect("unit issued by this service");
            match (out.state, out.output) {
                (UnitState::Done, Some(Ok(o))) => {
                    // lint: allow(panic, reason = "the energy kernel above always returns an f64 total energy")
                    energies[i] = o.downcast::<f64>().expect("kernel returns f64");
                }
                _ => failed_units += 1,
            }
        }
        // Alternating even/odd neighbour exchange (standard REMD schedule).
        let start = phase % 2;
        let mut i = start;
        while i + 1 < replicas.len() {
            attempted += 1;
            let (ti, tj) = {
                let a = replicas[i].lock();
                let b = replicas[i + 1].lock();
                (a.temperature, b.temperature)
            };
            let delta = (1.0 / ti - 1.0 / tj) * (energies[i + 1] - energies[i]);
            if delta <= 0.0 || exchange_rng.f64() < (-delta).exp() {
                accepted += 1;
                replicas[i].lock().temperature = tj;
                replicas[i + 1].lock().temperature = ti;
                replicas.swap(i, i + 1);
                energies.swap(i, i + 1);
            }
            i += 2;
        }
        phase_wall_s.push(t0.elapsed_s());
    }
    let final_energies = replicas
        .iter()
        .map(|r| r.lock().potential_energy())
        .collect();
    RexReport {
        phase_wall_s,
        exchanges_accepted: accepted,
        exchanges_attempted: attempted,
        final_energies,
        failed_units,
    }
}

/// Convenience: a service with one `cores`-wide pilot, ready to run.
pub fn service_with_pilot(cores: u32) -> ThreadPilotService {
    let svc = ThreadPilotService::new(Box::new(pilot_core::scheduler::FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(cores, SimDuration::MAX).labeled("md"));
    assert!(svc.wait_pilot_active(p), "pilot must activate");
    svc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_system_is_deterministic() {
        let mut a = MdSystem::new(16, 1.0, 7);
        let mut b = MdSystem::new(16, 1.0, 7);
        a.run(10, 0.002);
        b.run(10, 0.002);
        assert_eq!(a.positions, b.positions);
        assert!((a.potential_energy() - b.potential_energy()).abs() < 1e-12);
    }

    #[test]
    fn particles_stay_in_box() {
        let mut sys = MdSystem::new(27, 1.5, 3);
        sys.run(50, 0.002);
        for p in &sys.positions {
            for k in 0..3 {
                assert!(
                    (0.0..=sys.box_len).contains(&p[k]),
                    "particle escaped: {:?}",
                    p
                );
            }
        }
    }

    #[test]
    fn thermostat_holds_temperature() {
        let mut sys = MdSystem::new(64, 1.2, 5);
        sys.run(100, 0.002);
        let t = 2.0 * sys.kinetic_energy() / (3.0 * 64.0);
        assert!((t - 1.2).abs() < 0.15, "temperature drifted to {t}");
    }

    #[test]
    fn hotter_systems_have_higher_kinetic_energy() {
        let mut cold = MdSystem::new(48, 0.5, 11);
        let mut hot = MdSystem::new(48, 2.5, 11);
        cold.run(50, 0.002);
        hot.run(50, 0.002);
        assert!(hot.kinetic_energy() > cold.kinetic_energy());
    }

    #[test]
    fn ladder_is_geometric_and_ordered() {
        let cfg = RexConfig::small(5);
        let l = cfg.ladder();
        assert_eq!(l.len(), 5);
        assert!((l[0] - 0.8).abs() < 1e-12);
        assert!((l[4] - 2.0).abs() < 1e-9);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        let r1 = l[1] / l[0];
        let r2 = l[2] / l[1];
        assert!((r1 - r2).abs() < 1e-9, "geometric spacing");
        assert_eq!(RexConfig::small(1).ladder(), vec![0.8]);
    }

    #[test]
    fn replica_exchange_runs_and_exchanges() {
        let svc = service_with_pilot(4);
        let cfg = RexConfig::small(4);
        let report = run_replica_exchange(&svc, &cfg);
        assert_eq!(report.failed_units, 0);
        assert_eq!(report.phase_wall_s.len(), 4);
        assert_eq!(report.final_energies.len(), 4);
        // Even/odd schedule on 4 replicas: 2 + 1 + 2 + 1 = 6 attempts.
        assert_eq!(report.exchanges_attempted, 6);
        assert!(report.acceptance() <= 1.0);
        assert!(report.total_wall_s() > 0.0);
        svc.shutdown();
    }

    #[test]
    fn more_cores_speed_up_phases() {
        // 8 replicas on 1 core vs 8 cores; each phase is embarrassingly
        // parallel so wall time should drop substantially.
        let mut cfg = RexConfig::small(8);
        cfg.particles = 96;
        cfg.steps_per_phase = 120;
        cfg.phases = 2;
        let t_serial = {
            let svc = service_with_pilot(1);
            let r = run_replica_exchange(&svc, &cfg);
            svc.shutdown();
            r.total_wall_s()
        };
        let t_parallel = {
            let svc = service_with_pilot(8);
            let r = run_replica_exchange(&svc, &cfg);
            svc.shutdown();
            r.total_wall_s()
        };
        // Wall-clock speedup only exists when the host actually has cores;
        // on a single-CPU machine the workers timeshare and the comparison
        // is meaningless (the scaling-curve experiments use the virtual-time
        // backend for exactly this reason).
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if host_cores >= 4 {
            assert!(
                t_parallel < t_serial * 0.6,
                "8-way {t_parallel:.3}s vs serial {t_serial:.3}s"
            );
        } else {
            assert!(t_parallel > 0.0 && t_serial > 0.0);
        }
    }
}
