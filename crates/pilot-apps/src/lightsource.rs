//! Light-source detector frames — the streaming case study (\[32\]).
//!
//! Synthetic 2-D detector frames (Gaussian peaks on noise) stand in for
//! beamline data; the reconstruction kernel is real image processing:
//! 3×3 median denoising, thresholding, and connected local-maximum peak
//! extraction. Frames serialize to bytes for broker payloads, so the full
//! produce → stream → reconstruct path is exercised end-to-end (EXP T1/PS-1).

use pilot_sim::SimRng;

/// A detector frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major intensities.
    pub data: Vec<f32>,
}

/// A detected (or planted) peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Column.
    pub x: f32,
    /// Row.
    pub y: f32,
    /// Peak intensity.
    pub intensity: f32,
}

/// Frame-generation parameters.
#[derive(Clone, Debug)]
pub struct FrameConfig {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Peaks per frame.
    pub peaks: usize,
    /// Peak amplitude range.
    pub amplitude: (f32, f32),
    /// Gaussian peak sigma, pixels.
    pub sigma: f32,
    /// Additive noise sigma.
    pub noise: f32,
}

impl FrameConfig {
    /// A small detector with clearly separable peaks.
    pub fn small() -> Self {
        FrameConfig {
            width: 64,
            height: 64,
            peaks: 4,
            amplitude: (40.0, 90.0),
            sigma: 1.6,
            noise: 1.0,
        }
    }
}

impl Frame {
    /// Pixel accessor.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    /// Serialize to little-endian bytes: `width u32 | height u32 | f32...`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len() * 4);
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse the [`to_bytes`](Self::to_bytes) format.
    pub fn from_bytes(bytes: &[u8]) -> Option<Frame> {
        if bytes.len() < 8 {
            return None;
        }
        let width = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let height = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let need = 8 + width * height * 4;
        if bytes.len() != need {
            return None;
        }
        let data = bytes[8..]
            .chunks_exact(4)
            // lint: allow(panic, reason = "chunks_exact(4) yields only 4-byte slices; the conversion is infallible")
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        Some(Frame {
            width,
            height,
            data,
        })
    }
}

/// Generate a frame with planted peaks; returns the frame and the truth.
pub fn generate_frame(cfg: &FrameConfig, seed: u64) -> (Frame, Vec<Peak>) {
    let mut rng = SimRng::new(seed);
    let mut data = vec![0.0f32; cfg.width * cfg.height];
    // Noise floor.
    for v in &mut data {
        *v = (rng.normal(0.0, cfg.noise as f64) as f32).max(0.0);
    }
    // Peaks kept away from borders so centroids are recoverable.
    let margin = (cfg.sigma * 4.0).ceil() as usize + 1;
    let peaks: Vec<Peak> = (0..cfg.peaks)
        .map(|_| {
            let x = rng.range_u64(margin as u64, (cfg.width - margin) as u64) as f32;
            let y = rng.range_u64(margin as u64, (cfg.height - margin) as u64) as f32;
            let a = rng.f64_range(cfg.amplitude.0 as f64, cfg.amplitude.1 as f64) as f32;
            Peak { x, y, intensity: a }
        })
        .collect();
    for p in &peaks {
        let s2 = 2.0 * cfg.sigma * cfg.sigma;
        let r = (cfg.sigma * 4.0).ceil() as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let px = p.x as isize + dx;
                let py = p.y as isize + dy;
                if px < 0 || py < 0 || px >= cfg.width as isize || py >= cfg.height as isize {
                    continue;
                }
                let d2 = (dx * dx + dy * dy) as f32;
                data[py as usize * cfg.width + px as usize] += p.intensity * (-d2 / s2).exp();
            }
        }
    }
    (
        Frame {
            width: cfg.width,
            height: cfg.height,
            data,
        },
        peaks,
    )
}

/// 3×3 median filter (edges clamped).
pub fn median3x3(frame: &Frame) -> Frame {
    let (w, h) = (frame.width, frame.height);
    let mut out = vec![0.0f32; w * h];
    let mut window = [0.0f32; 9];
    for y in 0..h {
        for x in 0..w {
            let mut k = 0;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                    let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                    window[k] = frame.at(sx, sy);
                    k += 1;
                }
            }
            window.sort_by(|a, b| a.total_cmp(b));
            out[y * w + x] = window[4];
        }
    }
    Frame {
        width: w,
        height: h,
        data: out,
    }
}

/// Detect peaks: median-denoise, threshold, then report strict local maxima
/// with intensity-weighted 3×3 centroids.
pub fn detect_peaks(frame: &Frame, threshold: f32) -> Vec<Peak> {
    let smooth = median3x3(frame);
    let (w, h) = (smooth.width, smooth.height);
    let mut peaks = Vec::new();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let v = smooth.at(x, y);
            if v < threshold {
                continue;
            }
            let mut is_max = true;
            'scan: for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nv = smooth.at((x as isize + dx) as usize, (y as isize + dy) as usize);
                    // Strict on the lexicographically earlier neighbour so
                    // plateaus yield exactly one peak.
                    if nv > v || (nv == v && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_max = false;
                        break 'scan;
                    }
                }
            }
            if !is_max {
                continue;
            }
            // Intensity-weighted centroid over the 3×3 patch.
            let (mut sx, mut sy, mut sw) = (0.0f32, 0.0f32, 0.0f32);
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let px = (x as isize + dx) as usize;
                    let py = (y as isize + dy) as usize;
                    let pv = smooth.at(px, py);
                    sx += px as f32 * pv;
                    sy += py as f32 * pv;
                    sw += pv;
                }
            }
            peaks.push(Peak {
                x: sx / sw,
                y: sy / sw,
                intensity: v,
            });
        }
    }
    peaks
}

/// Full reconstruction of a serialized frame: parse → denoise → peaks.
/// Returns `None` on a corrupt payload.
pub fn reconstruct(bytes: &[u8], threshold: f32) -> Option<Vec<Peak>> {
    Frame::from_bytes(bytes).map(|f| detect_peaks(&f, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FrameConfig::small();
        let (f1, p1) = generate_frame(&cfg, 7);
        let (f2, p2) = generate_frame(&cfg, 7);
        assert_eq!(f1, f2);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 4);
    }

    #[test]
    fn serialization_round_trips() {
        let cfg = FrameConfig::small();
        let (frame, _) = generate_frame(&cfg, 3);
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), 8 + 64 * 64 * 4);
        let back = Frame::from_bytes(&bytes).unwrap();
        assert_eq!(back, frame);
        assert!(Frame::from_bytes(&bytes[..10]).is_none());
        assert!(Frame::from_bytes(&[]).is_none());
    }

    #[test]
    fn planted_peaks_are_recovered() {
        let cfg = FrameConfig::small();
        for seed in 0..5 {
            let (frame, truth) = generate_frame(&cfg, seed);
            let found = detect_peaks(&frame, 15.0);
            // Every planted peak has a detection within 1.5 px. (Two planted
            // peaks can merge when close — allow that by only requiring
            // coverage, not exact counts.)
            for t in &truth {
                let nearest = found
                    .iter()
                    .map(|f| ((f.x - t.x).powi(2) + (f.y - t.y).powi(2)).sqrt())
                    .fold(f32::INFINITY, f32::min);
                assert!(
                    nearest < 1.5,
                    "seed {seed}: peak at ({}, {}) missed by {nearest}",
                    t.x,
                    t.y
                );
            }
            // And not too many spurious ones.
            assert!(found.len() <= truth.len() + 2, "noise peaks: {found:?}");
        }
    }

    #[test]
    fn median_filter_kills_salt_noise() {
        let mut frame = Frame {
            width: 16,
            height: 16,
            data: vec![1.0; 256],
        };
        frame.data[8 * 16 + 8] = 1000.0; // single hot pixel
        let smooth = median3x3(&frame);
        assert_eq!(smooth.at(8, 8), 1.0, "hot pixel removed");
    }

    #[test]
    fn reconstruct_handles_garbage() {
        assert!(reconstruct(&[1, 2, 3], 10.0).is_none());
        let cfg = FrameConfig::small();
        let (frame, truth) = generate_frame(&cfg, 1);
        let peaks = reconstruct(&frame.to_bytes(), 15.0).unwrap();
        assert!(!peaks.is_empty());
        assert!(peaks.len() <= truth.len() + 2);
    }

    #[test]
    fn flat_frame_has_no_peaks() {
        let frame = Frame {
            width: 32,
            height: 32,
            data: vec![5.0; 1024],
        };
        assert!(detect_peaks(&frame, 10.0).is_empty());
        // A frame-wide plateau has no interior pixel without an "earlier"
        // equal neighbour, so nothing is reported even at the threshold.
        assert!(detect_peaks(&frame, 5.0).is_empty());
    }

    #[test]
    fn interior_plateau_yields_exactly_one_peak() {
        let mut frame = Frame {
            width: 32,
            height: 32,
            data: vec![1.0; 1024],
        };
        for dy in 0..3usize {
            for dx in 0..3usize {
                frame.data[(14 + dy) * 32 + (14 + dx)] = 10.0;
            }
        }
        let peaks = detect_peaks(&frame, 5.0);
        assert_eq!(peaks.len(), 1, "{peaks:?}");
        assert!((peaks[0].x - 15.0).abs() < 0.5 && (peaks[0].y - 15.0).abs() < 0.5);
    }
}
