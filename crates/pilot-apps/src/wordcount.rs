//! Zipf-distributed text generation for the wordcount workload — the
//! paper's Pilot-Hadoop demonstration application.

use pilot_sim::dist::Zipf;
use pilot_sim::SimRng;

/// Text-generation parameters.
#[derive(Clone, Debug)]
pub struct TextConfig {
    /// Number of lines.
    pub lines: usize,
    /// Words per line.
    pub words_per_line: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent (1.0 ≈ natural language).
    pub zipf_s: f64,
    /// Seed.
    pub seed: u64,
}

impl TextConfig {
    /// A small corpus.
    pub fn small() -> Self {
        TextConfig {
            lines: 200,
            words_per_line: 12,
            vocabulary: 500,
            zipf_s: 1.0,
            seed: 0x7E47,
        }
    }
}

/// The word for a vocabulary rank: `w0`, `w1`, ...
pub fn word_for_rank(rank: usize) -> String {
    format!("w{rank}")
}

/// Generate a corpus of whitespace-separated lines.
pub fn generate_text(cfg: &TextConfig) -> Vec<String> {
    let mut rng = SimRng::new(cfg.seed);
    let zipf = Zipf::new(cfg.vocabulary.max(1), cfg.zipf_s);
    (0..cfg.lines)
        .map(|_| {
            (0..cfg.words_per_line)
                .map(|_| word_for_rank(zipf.sample(&mut rng)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Sequential wordcount reference.
pub fn count_words(lines: &[String]) -> std::collections::BTreeMap<String, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for line in lines {
        for w in line.split_whitespace() {
            *counts.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_shaped() {
        let cfg = TextConfig::small();
        let t1 = generate_text(&cfg);
        let t2 = generate_text(&cfg);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 200);
        assert!(t1.iter().all(|l| l.split_whitespace().count() == 12));
    }

    #[test]
    fn zipf_head_dominates() {
        let cfg = TextConfig {
            lines: 2000,
            ..TextConfig::small()
        };
        let text = generate_text(&cfg);
        let counts = count_words(&text);
        let total: u64 = counts.values().sum();
        assert_eq!(total, 2000 * 12);
        let top = counts.get("w0").copied().unwrap_or(0);
        let mid = counts.get("w100").copied().unwrap_or(0);
        assert!(top > 10 * mid.max(1), "w0={top} vs w100={mid}");
    }

    #[test]
    fn count_words_handles_empty() {
        assert!(count_words(&[]).is_empty());
        assert!(count_words(&[String::new()]).is_empty());
    }
}
