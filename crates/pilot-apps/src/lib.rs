//! # pilot-apps — case-study scientific applications
//!
//! One representative application per scenario of the paper's Table I, each
//! with a *real* compute kernel (no sleeps — actual arithmetic), plus the
//! synthetic data generators the paper's Mini-App methodology calls for
//! where production data was used:
//!
//! | Table I scenario | Application here | Paper case study |
//! |---|---|---|
//! | Task-parallel | [`md`] synthetic-MD replica exchange; [`enkf`] ensemble Kalman filter | Adaptive replica exchange \[48\], EnKF \[50\] |
//! | Data-parallel | [`pairwise`] distance analysis; [`wordcount`] | MD trajectory analysis \[53\], map-only analytics |
//! | Dataflow / MapReduce | [`seqalign`] Smith-Waterman read alignment | Pilot-MapReduce sequence alignment \[54\] |
//! | Iterative | [`kmeans`] Lloyd's algorithm | K-Means \[55\] |
//! | Streaming | [`lightsource`] detector-frame reconstruction | Light-source streaming \[32\] |
//!
//! Every generator is seed-deterministic; every parallel driver has a
//! sequential reference the tests compare against.

pub mod enkf;
pub mod kmeans;
pub mod lightsource;
pub mod linalg;
pub mod md;
pub mod pairwise;
pub mod seqalign;
pub mod wordcount;
