//! Sequence alignment — the MapReduce genomics case study (\[54\], \[66\]).
//!
//! A synthetic read generator stands in for sequencing data (DESIGN.md
//! substitution), and a real Smith-Waterman local-alignment kernel scores
//! reads against a reference. The shapes match the paper's workload: many
//! short, independent, CPU-bound tasks over partitioned data.

use pilot_core::Parallelism;
use pilot_sim::SimRng;

/// Nucleotide alphabet.
const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Reads per parallel block in [`align_reads`]. Each read's DP is
/// independent and integer-scored, so any thread count yields the identical
/// alignment vector.
pub const ALIGN_BLOCK: usize = 16;

/// Generate a random reference sequence of length `n`.
pub fn generate_reference(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| BASES[rng.below_usize(4)]).collect()
}

/// A simulated read with its true origin (for accuracy checks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Read {
    /// Read bases.
    pub seq: Vec<u8>,
    /// True position in the reference it was sampled from.
    pub true_pos: usize,
}

/// Sample `count` reads of length `len` with per-base mutation rate
/// `error_rate`.
pub fn generate_reads(
    reference: &[u8],
    count: usize,
    len: usize,
    error_rate: f64,
    seed: u64,
) -> Vec<Read> {
    assert!(reference.len() >= len, "reference shorter than reads");
    let mut rng = SimRng::new(seed);
    (0..count)
        .map(|_| {
            let pos = rng.below_usize(reference.len() - len + 1);
            let seq = reference[pos..pos + len]
                .iter()
                .map(|&b| {
                    if rng.bool(error_rate) {
                        BASES[rng.below_usize(4)]
                    } else {
                        b
                    }
                })
                .collect();
            Read { seq, true_pos: pos }
        })
        .collect()
}

/// Scoring scheme for Smith-Waterman.
#[derive(Clone, Copy, Debug)]
pub struct Scoring {
    /// Score for a base match (> 0).
    pub match_score: i32,
    /// Penalty for a mismatch (< 0).
    pub mismatch: i32,
    /// Linear gap penalty (< 0).
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            match_score: 2,
            mismatch: -1,
            gap: -2,
        }
    }
}

/// Result of a local alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alignment {
    /// Best local score.
    pub score: i32,
    /// 0-based position in the *reference* where the best alignment ends.
    pub ref_end: usize,
}

/// Smith-Waterman local alignment of `query` against `reference` with linear
/// gaps; O(|q|·|r|) time, O(|r|) space (two-row DP).
pub fn smith_waterman(query: &[u8], reference: &[u8], s: Scoring) -> Alignment {
    let m = reference.len();
    let mut prev = vec![0i32; m + 1];
    let mut curr = vec![0i32; m + 1];
    let mut best = Alignment {
        score: 0,
        ref_end: 0,
    };
    for &q in query {
        for j in 1..=m {
            let sub = if reference[j - 1] == q {
                s.match_score
            } else {
                s.mismatch
            };
            let val = (prev[j - 1] + sub)
                .max(prev[j] + s.gap)
                .max(curr[j - 1] + s.gap)
                .max(0);
            curr[j] = val;
            if val > best.score {
                best = Alignment {
                    score: val,
                    ref_end: j - 1,
                };
            }
        }
        std::mem::swap(&mut prev, &mut curr);
        curr.iter_mut().for_each(|v| *v = 0);
    }
    best
}

/// Map a read to its best position. The read "maps" when the score reaches
/// `min_score`; returns `(mapped, alignment)`.
pub fn map_read(read: &Read, reference: &[u8], s: Scoring, min_score: i32) -> (bool, Alignment) {
    let a = smith_waterman(&read.seq, reference, s);
    (a.score >= min_score, a)
}

/// Align every read against `reference`, fanning [`ALIGN_BLOCK`]-read blocks
/// over the handle's workers. Results come back in read order and are
/// bit-identical to a sequential scan for any thread count (integer DP, no
/// cross-read state).
pub fn align_reads(
    reads: &[Read],
    reference: &[u8],
    s: Scoring,
    par: &Parallelism,
) -> Vec<Alignment> {
    par.par_chunks(reads, ALIGN_BLOCK, |_, chunk| {
        chunk
            .iter()
            .map(|r| smith_waterman(&r.seq, reference, s))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_and_reads_are_deterministic() {
        let r1 = generate_reference(500, 7);
        let r2 = generate_reference(500, 7);
        assert_eq!(r1, r2);
        assert!(r1.iter().all(|b| BASES.contains(b)));
        let reads = generate_reads(&r1, 10, 50, 0.02, 9);
        let reads2 = generate_reads(&r1, 10, 50, 0.02, 9);
        assert_eq!(reads, reads2);
        assert!(reads.iter().all(|r| r.seq.len() == 50));
    }

    #[test]
    fn perfect_read_scores_maximally_at_its_origin() {
        let reference = generate_reference(300, 1);
        let reads = generate_reads(&reference, 5, 40, 0.0, 2);
        let s = Scoring::default();
        for read in &reads {
            let a = smith_waterman(&read.seq, &reference, s);
            assert_eq!(a.score, 40 * s.match_score, "error-free read");
            // Alignment must end where the read truly ends (repeats could in
            // principle tie, but at 40bp on random sequence they don't).
            assert_eq!(a.ref_end, read.true_pos + 39);
        }
    }

    #[test]
    fn mutated_reads_still_map_near_their_origin() {
        let reference = generate_reference(1000, 3);
        let reads = generate_reads(&reference, 20, 60, 0.05, 4);
        let s = Scoring::default();
        let mut correct = 0;
        for read in &reads {
            let (mapped, a) = map_read(read, &reference, s, 60);
            if mapped && a.ref_end.abs_diff(read.true_pos + 59) <= 2 {
                correct += 1;
            }
        }
        assert!(correct >= 18, "only {correct}/20 mapped correctly");
    }

    #[test]
    fn align_reads_matches_per_read_scan_for_any_thread_count() {
        let reference = generate_reference(800, 5);
        let reads = generate_reads(&reference, 40, 50, 0.03, 6);
        let s = Scoring::default();
        let seq: Vec<Alignment> = reads
            .iter()
            .map(|r| smith_waterman(&r.seq, &reference, s))
            .collect();
        for threads in [1, 2, 4, 8] {
            let par = Parallelism::new(threads);
            assert_eq!(align_reads(&reads, &reference, s, &par), seq);
        }
        assert!(align_reads(&[], &reference, s, &Parallelism::new(4)).is_empty());
    }

    #[test]
    fn unrelated_sequence_scores_low() {
        let a = b"AAAAAAAAAAAAAAAAAAAA";
        let b = b"CCCCCCCCCCCCCCCCCCCC";
        let s = Scoring::default();
        let al = smith_waterman(a, b, s);
        assert_eq!(al.score, 0, "no positive local alignment exists");
    }

    #[test]
    fn alignment_handles_gaps() {
        // Query = reference with one base deleted; a gap bridges it.
        let reference = b"ACGTACGTACGT";
        let query = b"ACGTACGACGT"; // 'T' deleted after position 6
        let s = Scoring::default();
        let a = smith_waterman(query, reference, s);
        // 11 matches x2 + one gap penalty = 22 - 2 = 20.
        assert_eq!(a.score, 20);
    }

    #[test]
    fn known_textbook_example() {
        // Classic: TGTTACGG vs GGTTGACTA, match 3, mismatch -3, gap -2
        // has optimal local score 13 (GTT-AC / GTTGAC).
        let s = Scoring {
            match_score: 3,
            mismatch: -3,
            gap: -2,
        };
        let a = smith_waterman(b"TGTTACGG", b"GGTTGACTA", s);
        assert_eq!(a.score, 13);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn reads_longer_than_reference_panic() {
        let reference = generate_reference(10, 1);
        let _ = generate_reads(&reference, 1, 50, 0.0, 1);
    }
}
