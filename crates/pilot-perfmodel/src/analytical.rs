//! Analytical (white-box) performance models.
//!
//! Each model is a small, auditable formula over named parameters; the
//! experiment harness overlays their predictions on measured curves
//! (EXP PJ-1/PJ-3/PH-1), which is how the paper validates that the system's
//! behaviour is *understood*, not just observed.

/// Amdahl's law: speedup of a workload with serial fraction `serial` on `p`
/// processors.
pub fn amdahl_speedup(serial: f64, p: u32) -> f64 {
    let s = serial.clamp(0.0, 1.0);
    let p = p.max(1) as f64;
    1.0 / (s + (1.0 - s) / p)
}

/// Gustafson's law: scaled speedup with serial fraction `serial` on `p`
/// processors.
pub fn gustafson_speedup(serial: f64, p: u32) -> f64 {
    let s = serial.clamp(0.0, 1.0);
    let p = p.max(1) as f64;
    p - s * (p - 1.0)
}

/// Parallel efficiency from a measured speedup.
pub fn efficiency(speedup: f64, p: u32) -> f64 {
    speedup / p.max(1) as f64
}

/// Decomposition of pilot startup overhead:
/// `T_startup = t_submit + t_queue + t_boot` — submission/API latency, time
/// in the resource manager's queue, and agent bootstrap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PilotOverheadModel {
    /// Submission/API cost, seconds.
    pub t_submit: f64,
    /// Expected queue wait, seconds.
    pub t_queue: f64,
    /// Agent bootstrap (or VM boot / glide-in match), seconds.
    pub t_boot: f64,
}

impl PilotOverheadModel {
    /// Total predicted startup overhead.
    pub fn startup(&self) -> f64 {
        self.t_submit + self.t_queue + self.t_boot
    }

    /// Amortized per-task overhead when `n_tasks` run inside one pilot,
    /// versus paying the full overhead per task without a pilot — the core
    /// late-binding argument.
    pub fn per_task_overhead(&self, n_tasks: u64) -> f64 {
        self.startup() / n_tasks.max(1) as f64
    }
}

/// Runtime model for replica-exchange ensembles (\[72\]):
/// `E` exchange phases of `R` replicas, each phase running `t_phase` seconds
/// per replica on `cores/cores_per_replica` concurrent slots, plus a
/// per-phase synchronization/exchange cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicaExchangeModel {
    /// Number of replicas.
    pub replicas: u32,
    /// Cores available to the ensemble.
    pub cores: u32,
    /// Cores one replica occupies.
    pub cores_per_replica: u32,
    /// Seconds of simulation per replica per phase.
    pub t_phase: f64,
    /// Exchange/synchronization cost per phase, seconds.
    pub t_exchange: f64,
    /// Number of exchange phases.
    pub phases: u32,
    /// One-time middleware/pilot overhead, seconds.
    pub t_overhead: f64,
}

impl ReplicaExchangeModel {
    /// Concurrent replica slots.
    pub fn slots(&self) -> u32 {
        (self.cores / self.cores_per_replica.max(1)).max(1)
    }

    /// Waves per phase: replicas serialized over the available slots.
    pub fn waves(&self) -> u32 {
        self.replicas.div_ceil(self.slots())
    }

    /// Predicted total runtime, seconds.
    pub fn runtime(&self) -> f64 {
        self.t_overhead
            + self.phases as f64 * (self.waves() as f64 * self.t_phase + self.t_exchange)
    }

    /// Predicted speedup versus one slot.
    pub fn speedup_vs_serial(&self) -> f64 {
        let serial = ReplicaExchangeModel {
            cores: self.cores_per_replica,
            ..*self
        };
        serial.runtime() / self.runtime()
    }
}

/// MapReduce phase-cost model:
/// `T = overhead + map_work/p + shuffle_bytes/bandwidth + reduce_work/p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapReduceModel {
    /// Total map-side work, core-seconds.
    pub map_work_s: f64,
    /// Total reduce-side work, core-seconds.
    pub reduce_work_s: f64,
    /// Bytes crossing the shuffle.
    pub shuffle_bytes: f64,
    /// Effective shuffle bandwidth, bytes/second.
    pub shuffle_bandwidth: f64,
    /// Per-task dispatch overhead, seconds.
    pub per_task_overhead_s: f64,
    /// Number of map tasks.
    pub map_tasks: u32,
    /// Number of reduce tasks.
    pub reduce_tasks: u32,
}

impl MapReduceModel {
    /// Predicted runtime on `p` parallel slots.
    pub fn runtime(&self, p: u32) -> f64 {
        let p = p.max(1) as f64;
        let dispatch = self.per_task_overhead_s * (self.map_tasks + self.reduce_tasks) as f64 / p;
        dispatch
            + self.map_work_s / p
            + self.shuffle_bytes / self.shuffle_bandwidth.max(1.0)
            + self.reduce_work_s / p
    }

    /// Parallelism beyond which the shuffle dominates: where compute time
    /// drops below shuffle time.
    pub fn shuffle_bound_p(&self) -> f64 {
        let shuffle = self.shuffle_bytes / self.shuffle_bandwidth.max(1.0);
        if shuffle <= 0.0 {
            return f64::INFINITY;
        }
        (self.map_work_s + self.reduce_work_s) / shuffle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert_eq!(amdahl_speedup(0.0, 8), 8.0);
        assert_eq!(amdahl_speedup(1.0, 64), 1.0);
        // 5% serial caps speedup at 20.
        assert!(amdahl_speedup(0.05, 1_000_000) < 20.0);
        assert!(amdahl_speedup(0.05, 1_000_000) > 19.5);
        // Monotone in p.
        assert!(amdahl_speedup(0.1, 16) > amdahl_speedup(0.1, 8));
    }

    #[test]
    fn gustafson_grows_linearly() {
        assert_eq!(gustafson_speedup(0.0, 8), 8.0);
        assert_eq!(gustafson_speedup(1.0, 8), 1.0);
        let g16 = gustafson_speedup(0.1, 16);
        let g32 = gustafson_speedup(0.1, 32);
        assert!((g32 - g16) > 10.0, "scaled speedup keeps growing");
    }

    #[test]
    fn efficiency_of_perfect_scaling_is_one() {
        assert_eq!(efficiency(8.0, 8), 1.0);
        assert_eq!(efficiency(4.0, 8), 0.5);
    }

    #[test]
    fn pilot_overhead_amortizes() {
        let m = PilotOverheadModel {
            t_submit: 1.0,
            t_queue: 600.0,
            t_boot: 30.0,
        };
        assert_eq!(m.startup(), 631.0);
        assert_eq!(m.per_task_overhead(1), 631.0);
        assert!((m.per_task_overhead(1000) - 0.631).abs() < 1e-12);
    }

    #[test]
    fn replica_exchange_waves_and_runtime() {
        let m = ReplicaExchangeModel {
            replicas: 8,
            cores: 4,
            cores_per_replica: 1,
            t_phase: 100.0,
            t_exchange: 5.0,
            phases: 10,
            t_overhead: 50.0,
        };
        assert_eq!(m.slots(), 4);
        assert_eq!(m.waves(), 2);
        // 10 × (2×100 + 5) + 50 = 2100
        assert!((m.runtime() - 2100.0).abs() < 1e-9);
        // Full parallelism: 8 slots → 1 wave.
        let wide = ReplicaExchangeModel { cores: 8, ..m };
        assert_eq!(wide.waves(), 1);
        assert!(wide.runtime() < m.runtime());
        assert!(wide.speedup_vs_serial() > m.speedup_vs_serial());
    }

    #[test]
    fn replica_exchange_speedup_saturates_at_replica_count() {
        let m = |cores| ReplicaExchangeModel {
            replicas: 8,
            cores,
            cores_per_replica: 1,
            t_phase: 100.0,
            t_exchange: 0.0,
            phases: 1,
            t_overhead: 0.0,
        };
        // Beyond 8 cores nothing improves: 8 replicas = 8 slots max.
        assert_eq!(m(8).runtime(), m(64).runtime());
        assert!((m(8).speedup_vs_serial() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn mapreduce_shuffle_becomes_bottleneck() {
        let m = MapReduceModel {
            map_work_s: 1000.0,
            reduce_work_s: 200.0,
            shuffle_bytes: 1e9,
            shuffle_bandwidth: 100e6, // 10 s shuffle
            per_task_overhead_s: 0.01,
            map_tasks: 100,
            reduce_tasks: 10,
        };
        let t1 = m.runtime(1);
        let t16 = m.runtime(16);
        let t1024 = m.runtime(1024);
        assert!(t16 < t1);
        assert!(t1024 < t16);
        // Floor: the 10-second shuffle never parallelizes away.
        assert!(t1024 >= 10.0);
        assert!((m.shuffle_bound_p() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn zero_guards() {
        assert_eq!(amdahl_speedup(0.5, 0), 1.0);
        let m = ReplicaExchangeModel {
            replicas: 4,
            cores: 0,
            cores_per_replica: 0,
            t_phase: 1.0,
            t_exchange: 0.0,
            phases: 1,
            t_overhead: 0.0,
        };
        assert_eq!(m.slots(), 1);
        assert_eq!(m.waves(), 4);
    }
}
