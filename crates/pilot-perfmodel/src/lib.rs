//! # pilot-perfmodel — analytical and statistical performance models
//!
//! The paper's evaluation leans on two complementary modeling methods
//! (Section II-C.2, Figure 4):
//!
//! - **Analytical models** ([`analytical`]) — white-box formulas for pilot
//!   startup overhead, replica-exchange runtime (\[72\]), MapReduce phase cost,
//!   and the classic speedup laws. They decompose *why* a runtime is what it
//!   is, and EXP PJ-3 overlays them on measured strong-scaling curves.
//! - **Statistical models** ([`regression`]) — black-box OLS regression fit
//!   on sweep data, used for streaming throughput prediction and
//!   optimal-resource selection (\[73\], EXP PS-2). Built on a small dense
//!   linear-algebra kernel ([`linalg`]) — no external math dependency.

//! ## Example
//!
//! ```rust
//! use pilot_perfmodel::{amdahl_speedup, FeatureMap, LinearModel, r_squared};
//!
//! // Analytical: 5% serial work caps speedup near 20x.
//! assert!(amdahl_speedup(0.05, 1024) < 20.0);
//!
//! // Statistical: recover a planted linear law from observations.
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 7.0 + 3.0 * x[0]).collect();
//! let model = LinearModel::fit(&xs, &ys, FeatureMap::Linear).unwrap();
//! assert!(r_squared(&ys, &model.predict_all(&xs)) > 0.999);
//! assert!((model.predict(&[100.0]) - 307.0).abs() < 1e-6);
//! ```

pub mod analytical;
pub mod linalg;
pub mod regression;

pub use analytical::{
    amdahl_speedup, efficiency, gustafson_speedup, MapReduceModel, PilotOverheadModel,
    ReplicaExchangeModel,
};
pub use linalg::Matrix;
pub use regression::{mae, r_squared, rmse, train_test_split, FeatureMap, LinearModel};
