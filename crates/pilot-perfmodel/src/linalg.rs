//! Minimal dense linear algebra: exactly what normal-equation OLS needs.

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row slices (all the same length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "shape mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting plus a
    /// tiny ridge fallback when the system is singular (collinear features).
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        match gauss_solve(self.clone(), b.to_vec()) {
            Some(x) => Some(x),
            None => {
                // Ridge-regularize: (A + λI) x = b.
                let n = self.rows;
                let mut a = self.clone();
                let scale = (0..n).map(|i| a[(i, i)].abs()).fold(0.0, f64::max);
                let lambda = (scale * 1e-8).max(1e-12);
                for i in 0..n {
                    a[(i, i)] += lambda;
                }
                gauss_solve(a, b.to_vec())
            }
        }
    }
}

fn gauss_solve(mut a: Matrix, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.rows;
    for col in 0..n {
        // Partial pivot.
        let Some(pivot) = (col..n).max_by(|&i, &j| a[(i, col)].abs().total_cmp(&a[(j, col)].abs()))
        else {
            return None; // n == 0: nothing to solve
        };
        if a[(pivot, col)].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot, j)];
                a[(pivot, j)] = tmp;
            }
            b.swap(col, pivot);
        }
        for row in (col + 1)..n {
            let f = a[(row, col)] / a[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                a[(row, j)] -= f * a[(col, j)];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= a[(i, j)] * x[j];
        }
        x[i] = s / a[(i, i)];
    }
    Some(x)
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(0, 2)], 0.0);
    }

    #[test]
    fn transpose_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at[(2, 1)], 6.0);
        let p = a.matmul(&at); // 2x2
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn solve_well_conditioned() {
        // x + 2y = 5; 3x + 4y = 11 → x=1, y=2
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = a.solve(&[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_falls_back_to_ridge() {
        // Perfectly collinear: rank 1. Ridge fallback returns *a* solution
        // with small residual rather than None.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let x = a.solve(&[2.0, 2.0]).unwrap();
        let r = a.matvec(&x);
        assert!((r[0] - 2.0).abs() < 1e-3 && (r[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
