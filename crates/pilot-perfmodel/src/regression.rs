//! Ordinary-least-squares regression with feature maps — the statistical
//! performance-model machinery of EXP PS-2 (throughput prediction, \[73\]).

use crate::linalg::Matrix;

/// How raw factors expand into regression features.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FeatureMap {
    /// `[1, x1, ..., xk]`
    Linear,
    /// Linear plus all squares: `[1, x, x²]` per factor.
    Quadratic,
    /// Linear plus pairwise products (interactions).
    Interactions,
}

impl FeatureMap {
    /// Expand one raw factor vector.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        let mut f = Vec::with_capacity(1 + x.len() * 2);
        f.push(1.0);
        f.extend_from_slice(x);
        match self {
            FeatureMap::Linear => {}
            FeatureMap::Quadratic => {
                f.extend(x.iter().map(|v| v * v));
            }
            FeatureMap::Interactions => {
                for i in 0..x.len() {
                    for j in (i + 1)..x.len() {
                        f.push(x[i] * x[j]);
                    }
                }
            }
        }
        f
    }
}

/// A fitted linear model `y ≈ w · φ(x)`.
#[derive(Clone, Debug)]
pub struct LinearModel {
    /// Feature expansion in use.
    pub features: FeatureMap,
    /// Learned weights (aligned with [`FeatureMap::expand`] output).
    pub weights: Vec<f64>,
}

impl LinearModel {
    /// Fit by normal equations: `w = (ΦᵀΦ)⁻¹ Φᵀ y`.
    ///
    /// Returns `None` when there are no samples or the expanded design is
    /// hopeless even after ridge regularization.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], features: FeatureMap) -> Option<LinearModel> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let phi: Vec<Vec<f64>> = xs.iter().map(|x| features.expand(x)).collect();
        let design = Matrix::from_rows(&phi);
        let dt = design.transpose();
        let gram = dt.matmul(&design);
        let rhs = dt.matvec(ys);
        let weights = gram.solve(&rhs)?;
        Some(LinearModel { features, weights })
    }

    /// Predict one point.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.features
            .expand(x)
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| f * w)
            .sum()
    }

    /// Predict many points.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Among candidate configurations, the one with the highest predicted
    /// response (the paper's "optimal set of resources for a workload").
    pub fn argmax<'a>(&self, candidates: &'a [Vec<f64>]) -> Option<&'a Vec<f64>> {
        candidates
            .iter()
            .max_by(|a, b| self.predict(a).total_cmp(&self.predict(b)))
    }
}

/// Coefficient of determination.
pub fn r_squared(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root-mean-square error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    (y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64)
        .sqrt()
}

/// A `(train_xs, train_ys, test_xs, test_ys)` split.
pub type Split = (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>);

/// Deterministic shuffled split: `(train_xs, train_ys, test_xs, test_ys)`.
pub fn train_test_split(xs: &[Vec<f64>], ys: &[f64], test_fraction: f64, seed: u64) -> Split {
    assert_eq!(xs.len(), ys.len());
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    // Tiny Fisher-Yates with SplitMix64 so this crate stays dependency-free.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..idx.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let n_test = ((xs.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test.min(xs.len()));
    let pick = |ids: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            ids.iter().map(|&i| xs[i].clone()).collect(),
            ids.iter().map(|&i| ys[i]).collect(),
        )
    };
    let (test_x, test_y) = pick(test_idx);
    let (train_x, train_y) = pick(train_idx);
    (train_x, train_y, test_x, test_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_linear_model() {
        // y = 3 + 2a - b, exactly.
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1]).collect();
        let m = LinearModel::fit(&xs, &ys, FeatureMap::Linear).unwrap();
        assert!((m.weights[0] - 3.0).abs() < 1e-6, "{:?}", m.weights);
        assert!((m.weights[1] - 2.0).abs() < 1e-6);
        assert!((m.weights[2] + 1.0).abs() < 1e-6);
        let preds = m.predict_all(&xs);
        assert!(r_squared(&ys, &preds) > 0.999999);
        assert!(mae(&ys, &preds) < 1e-6);
        assert!(rmse(&ys, &preds) < 1e-6);
    }

    #[test]
    fn quadratic_features_fit_parabola() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 3.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.0 + 0.5 * x[0] + 2.0 * x[0] * x[0])
            .collect();
        let linear = LinearModel::fit(&xs, &ys, FeatureMap::Linear).unwrap();
        let quad = LinearModel::fit(&xs, &ys, FeatureMap::Quadratic).unwrap();
        let r2_lin = r_squared(&ys, &linear.predict_all(&xs));
        let r2_quad = r_squared(&ys, &quad.predict_all(&xs));
        assert!(r2_quad > 0.999999);
        assert!(r2_quad > r2_lin);
    }

    #[test]
    fn interactions_capture_products() {
        let xs: Vec<Vec<f64>> = (0..5)
            .flat_map(|a| (0..5).map(move |b| vec![a as f64, b as f64]))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] * x[1] + 1.0).collect();
        let m = LinearModel::fit(&xs, &ys, FeatureMap::Interactions).unwrap();
        assert!(r_squared(&ys, &m.predict_all(&xs)) > 0.999999);
    }

    #[test]
    fn feature_expansion_shapes() {
        let x = [2.0, 3.0, 4.0];
        assert_eq!(FeatureMap::Linear.expand(&x), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            FeatureMap::Quadratic.expand(&x),
            vec![1.0, 2.0, 3.0, 4.0, 4.0, 9.0, 16.0]
        );
        assert_eq!(
            FeatureMap::Interactions.expand(&x),
            vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0]
        );
    }

    #[test]
    fn argmax_picks_best_candidate() {
        // y rises with x0: best candidate has the largest x0.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0]).collect();
        let m = LinearModel::fit(&xs, &ys, FeatureMap::Linear).unwrap();
        let candidates = vec![vec![2.0], vec![7.0], vec![4.0]];
        assert_eq!(m.argmax(&candidates), Some(&vec![7.0]));
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (tr_x, tr_y, te_x, te_y) = train_test_split(&xs, &ys, 0.25, 42);
        assert_eq!(tr_x.len(), 75);
        assert_eq!(te_x.len(), 25);
        assert_eq!(tr_y.len(), 75);
        assert_eq!(te_y.len(), 25);
        let (tr_x2, ..) = train_test_split(&xs, &ys, 0.25, 42);
        assert_eq!(tr_x, tr_x2, "same seed, same split");
        let mut all: Vec<f64> = tr_x.iter().chain(te_x.iter()).map(|v| v[0]).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(LinearModel::fit(&[], &[], FeatureMap::Linear).is_none());
        assert_eq!(r_squared(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        // Constant target: R² defined as 1 for a perfect constant fit.
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![5.0, 5.0];
        let m = LinearModel::fit(&xs, &ys, FeatureMap::Linear).unwrap();
        assert!((m.predict(&[1.5]) - 5.0).abs() < 1e-6);
        assert_eq!(r_squared(&ys, &m.predict_all(&xs)).round(), 1.0);
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 17) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 + x[0] * 1.5 + x[1] * -2.0).collect();
        let (tr_x, tr_y, te_x, te_y) = train_test_split(&xs, &ys, 0.3, 7);
        let m = LinearModel::fit(&tr_x, &tr_y, FeatureMap::Linear).unwrap();
        let preds = m.predict_all(&te_x);
        assert!(r_squared(&te_y, &preds) > 0.999);
    }
}
