//! Micro-benchmark: one late-binding pass over a deep pending queue.
//!
//! Compares the original rebuild-per-bind loop (`per_unit_pass`, kept as the
//! executable specification) against the batched pass both backends now run
//! (`batched_pass`: one snapshot build, in-place capacity deltas). The
//! managers wake the pass on every capacity change, so its cost bounds
//! middleware bind throughput under pilot churn (EXP SC-1 sweeps the same
//! axes end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pilot_core::binding::{batched_pass, per_unit_pass, BindStats, PendingUnit};
use pilot_core::describe::{DataLocation, UnitDescription};
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::{LoadBalanceScheduler, PilotSnapshot};
use pilot_infra::types::SiteId;
use std::hint::black_box;

fn pilots(n: usize) -> Vec<PilotSnapshot> {
    (0..n)
        .map(|i| PilotSnapshot {
            pilot: PilotId(i as u64 + 1),
            site: SiteId((i % 4) as u16),
            total_cores: 32,
            free_cores: 32,
            bound_units: 0,
            remaining_walltime_s: 3600.0 - i as f64,
        })
        .collect()
}

fn pending(n: usize) -> Vec<PendingUnit> {
    (0..n)
        .map(|i| PendingUnit {
            unit: UnitId(i as u64 + 1),
            desc: UnitDescription::new(1)
                .with_priority((i % 7) as i32 - 3)
                .with_inputs(vec![DataLocation::new(
                    1_000_000,
                    vec![SiteId((i % 4) as u16)],
                )]),
        })
        .collect()
}

fn bench_bind(c: &mut Criterion) {
    let mut group = c.benchmark_group("bind_pass");
    group.sample_size(10);
    for &(n_units, n_pilots) in &[(100usize, 8usize), (1000, 32)] {
        let snaps = pilots(n_pilots);
        let pend = pending(n_units);
        let label = format!("{n_units}u_{n_pilots}p");
        group.bench_with_input(
            BenchmarkId::new("per_unit", &label),
            &(&snaps, &pend),
            |b, (snaps, pend)| {
                b.iter(|| {
                    let mut stats = BindStats::default();
                    black_box(per_unit_pass(
                        &mut LoadBalanceScheduler,
                        snaps,
                        pend,
                        &mut stats,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", &label),
            &(&snaps, &pend),
            |b, (snaps, pend)| {
                b.iter(|| {
                    let mut stats = BindStats::default();
                    black_box(batched_pass(
                        &mut LoadBalanceScheduler,
                        snaps,
                        pend,
                        &mut stats,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bind);
criterion_main!(benches);
