//! End-to-end middleware dispatch cost: submit → late-bind → execute (no-op
//! kernel) → report, through the real threaded service. This is the pilot
//! system's per-task overhead floor (EXP PJ-2's left edge).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_sim::SimDuration;
use std::hint::black_box;

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("unit_roundtrip_noop", |b| {
        let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let p = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
        assert!(svc.wait_pilot_active(p));
        b.iter(|| {
            let u = svc.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::none())),
            );
            black_box(svc.wait_unit(u).unwrap().state)
        });
    });
    group.throughput(Throughput::Elements(64));
    group.bench_function("burst_64_units", |b| {
        let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX));
        assert!(svc.wait_pilot_active(p));
        b.iter(|| {
            let units: Vec<_> = (0..64)
                .map(|_| {
                    svc.submit_unit(
                        UnitDescription::new(1),
                        kernel_fn(|_| Ok(TaskOutput::none())),
                    )
                })
                .collect();
            for u in units {
                black_box(svc.wait_unit(u).unwrap().state);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
