//! Application-kernel benchmarks: the real compute inside the case-study
//! units (alignment, clustering, peak detection, contacts, MD) — the
//! denominators of every task-granularity experiment.
//!
//! The `kernel_kmeans_assign` group is the layout/parallelism baseline
//! behind `BENCH_kernels.json`: the old `Vec<Vec<f64>>` walk (AoS) against
//! the flat row-major blocked kernel (SoA), sequential and at 1/2/4/8
//! worker threads. Thread counts above the host's core count measure
//! oversubscription, not speedup — the committed JSON records the host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pilot_apps::kmeans::{
    assign_step, assign_step_aos, generate_blobs, init_centroids, BlobConfig, Point,
};
use pilot_apps::lightsource::{detect_peaks, generate_frame, median3x3, FrameConfig};
use pilot_apps::linalg::Matrix;
use pilot_apps::md::MdSystem;
use pilot_apps::pairwise::{contacts_grid, contacts_naive, contacts_naive_par, generate_points};
use pilot_apps::seqalign::{
    align_reads, generate_reads, generate_reference, smith_waterman, Scoring,
};
use pilot_core::Parallelism;
use std::hint::black_box;

/// Worker-thread counts for the parallel scaling rows.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_smith_waterman");
    group.sample_size(20);
    let reference = generate_reference(4000, 1);
    let reads = generate_reads(&reference, 4, 64, 0.03, 2);
    group.throughput(Throughput::Elements(1));
    group.bench_function("64bp_vs_4kb", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % reads.len();
            black_box(smith_waterman(
                black_box(&reads[i].seq),
                black_box(&reference),
                Scoring::default(),
            ))
        });
    });
    group.finish();

    // Batch alignment fanned over worker threads (fixed 16-read blocks).
    let mut group = c.benchmark_group("kernel_align_reads");
    group.sample_size(10);
    let batch = generate_reads(&reference, 32, 64, 0.03, 4);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for threads in THREADS {
        let par = Parallelism::new(threads);
        group.bench_function(format!("par_t{threads}_32x64bp"), |b| {
            b.iter(|| {
                black_box(align_reads(
                    black_box(&batch),
                    black_box(&reference),
                    Scoring::default(),
                    &par,
                ))
            });
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_kmeans_assign");
    // Noisy shared host: widen the mean's window.
    group.sample_size(30);
    // The BENCH_kernels.json acceptance scale: 100k points × 16 dims, k=8.
    let cfg = BlobConfig::new(8, 16, 100_000, 3);
    let (points_aos, _) = generate_blobs(&cfg);
    let points = Matrix::from_rows(&points_aos);
    let centroids_aos: Vec<Point> = points_aos.iter().take(cfg.k).cloned().collect();
    let centroids = init_centroids(&points, cfg.k);
    group.throughput(Throughput::Elements(points.rows() as u64));
    group.bench_function("aos_100k_d16", |b| {
        b.iter(|| {
            black_box(assign_step_aos(
                black_box(&points_aos),
                black_box(&centroids_aos),
            ))
        });
    });
    group.bench_function("soa_seq_100k_d16", |b| {
        let par = Parallelism::sequential();
        b.iter(|| black_box(assign_step(black_box(&points), black_box(&centroids), &par)));
    });
    for threads in THREADS {
        let par = Parallelism::new(threads);
        group.bench_function(format!("soa_par_t{threads}_100k_d16"), |b| {
            b.iter(|| black_box(assign_step(black_box(&points), black_box(&centroids), &par)));
        });
    }
    group.finish();
}

fn bench_lightsource(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_lightsource");
    group.sample_size(20);
    let (frame, _) = generate_frame(&FrameConfig::small(), 5);
    group.bench_function("median3x3_64x64", |b| {
        b.iter(|| black_box(median3x3(black_box(&frame))));
    });
    group.bench_function("detect_peaks_64x64", |b| {
        b.iter(|| black_box(detect_peaks(black_box(&frame), 15.0)));
    });
    group.finish();
}

fn bench_contacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_contacts");
    group.sample_size(10);
    let points = generate_points(5000, 120.0, 7);
    group.bench_function("naive_5k", |b| {
        b.iter(|| black_box(contacts_naive(black_box(&points), 1.5)));
    });
    group.bench_function("grid_5k", |b| {
        b.iter(|| black_box(contacts_grid(black_box(&points), 1.5)));
    });
    for threads in THREADS {
        let par = Parallelism::new(threads);
        group.bench_function(format!("naive_par_t{threads}_5k"), |b| {
            b.iter(|| black_box(contacts_naive_par(black_box(&points), 1.5, &par)));
        });
    }
    group.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_md_step");
    group.sample_size(10);
    group.bench_function("64_particles_10_steps", |b| {
        b.iter_with_setup(
            || MdSystem::new(64, 1.2, 9),
            |mut sys| {
                sys.run(10, 0.002);
                black_box(sys.potential_energy())
            },
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alignment,
    bench_kmeans,
    bench_lightsource,
    bench_contacts,
    bench_md
);
criterion_main!(benches);
