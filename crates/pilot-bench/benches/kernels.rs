//! Application-kernel benchmarks: the real compute inside the case-study
//! units (alignment, clustering, peak detection, contacts, MD) — the
//! denominators of every task-granularity experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pilot_apps::kmeans::{assign_step, generate_blobs, init_centroids, BlobConfig};
use pilot_apps::lightsource::{detect_peaks, generate_frame, median3x3, FrameConfig};
use pilot_apps::md::MdSystem;
use pilot_apps::pairwise::{contacts_grid, contacts_naive, generate_points};
use pilot_apps::seqalign::{generate_reads, generate_reference, smith_waterman, Scoring};
use std::hint::black_box;

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_smith_waterman");
    group.sample_size(20);
    let reference = generate_reference(4000, 1);
    let reads = generate_reads(&reference, 4, 64, 0.03, 2);
    group.throughput(Throughput::Elements(1));
    group.bench_function("64bp_vs_4kb", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % reads.len();
            black_box(smith_waterman(
                black_box(&reads[i].seq),
                black_box(&reference),
                Scoring::default(),
            ))
        });
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_kmeans_assign");
    group.sample_size(20);
    let cfg = BlobConfig::new(8, 3, 10_000, 3);
    let (points, _) = generate_blobs(&cfg);
    let centroids = init_centroids(&points, 8);
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("10k_points_k8_d3", |b| {
        b.iter(|| black_box(assign_step(black_box(&points), black_box(&centroids))));
    });
    group.finish();
}

fn bench_lightsource(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_lightsource");
    group.sample_size(20);
    let (frame, _) = generate_frame(&FrameConfig::small(), 5);
    group.bench_function("median3x3_64x64", |b| {
        b.iter(|| black_box(median3x3(black_box(&frame))));
    });
    group.bench_function("detect_peaks_64x64", |b| {
        b.iter(|| black_box(detect_peaks(black_box(&frame), 15.0)));
    });
    group.finish();
}

fn bench_contacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_contacts");
    group.sample_size(10);
    let points = generate_points(5000, 120.0, 7);
    group.bench_function("naive_5k", |b| {
        b.iter(|| black_box(contacts_naive(black_box(&points), 1.5)));
    });
    group.bench_function("grid_5k", |b| {
        b.iter(|| black_box(contacts_grid(black_box(&points), 1.5)));
    });
    group.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_md_step");
    group.sample_size(10);
    group.bench_function("64_particles_10_steps", |b| {
        b.iter_with_setup(
            || MdSystem::new(64, 1.2, 9),
            |mut sys| {
                sys.run(10, 0.002);
                black_box(sys.potential_energy())
            },
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alignment,
    bench_kmeans,
    bench_lightsource,
    bench_contacts,
    bench_md
);
criterion_main!(benches);
