//! Micro-benchmark: late-binding scheduler decision latency as the number of
//! active pilots grows. The unit manager calls `select` on every capacity
//! change, so decision cost bounds middleware task throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pilot_core::describe::{DataLocation, UnitDescription};
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::{
    BackfillScheduler, DataAwareScheduler, FirstFitScheduler, LoadBalanceScheduler, PilotSnapshot,
    RandomScheduler, Scheduler, UnitRequest,
};
use pilot_infra::types::SiteId;
use std::hint::black_box;

fn snapshots(n: usize) -> Vec<PilotSnapshot> {
    (0..n)
        .map(|i| PilotSnapshot {
            pilot: PilotId(i as u64),
            site: SiteId((i % 4) as u16),
            total_cores: 32,
            free_cores: (i % 33) as u32,
            bound_units: i % 7,
            remaining_walltime_s: 3600.0 - i as f64,
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_select");
    group.sample_size(20);
    let desc = UnitDescription::new(2)
        .with_estimate(30.0)
        .with_inputs(vec![DataLocation::new(1_000_000, vec![SiteId(2)])]);
    let req = UnitRequest {
        unit: UnitId(1),
        desc: &desc,
    };
    for n_pilots in [4usize, 32, 256] {
        let snaps = snapshots(n_pilots);
        let mut schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
            ("first-fit", Box::new(FirstFitScheduler)),
            ("load-balance", Box::new(LoadBalanceScheduler)),
            ("data-aware", Box::new(DataAwareScheduler::default())),
            ("backfill", Box::new(BackfillScheduler::default())),
            ("random", Box::new(RandomScheduler::new(42))),
        ];
        for (name, sched) in &mut schedulers {
            group.bench_with_input(BenchmarkId::new(*name, n_pilots), &snaps, |b, snaps| {
                b.iter(|| black_box(sched.select(black_box(&req), black_box(snaps))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
