//! Streaming data-plane benchmarks: per-message vs batched produce across
//! partition counts, and the allocating `poll` vs the buffer-reusing
//! `poll_into` consume path. These are the measurements behind
//! `BENCH_streaming.json` and the acceptance floor "batched produce ≥ 3×
//! per-message at batch = 64".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_streaming::Broker;
use std::hint::black_box;
use std::sync::Arc;

/// Messages moved per iteration — large enough that the shim's per-iteration
/// mean is dominated by broker work, and one number divides evenly by every
/// batch size swept.
const MSGS: u64 = 4096;

fn bench_produce_per_message_vs_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_produce");
    group.sample_size(20);
    group.throughput(Throughput::Elements(MSGS));
    for partitions in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("per_message", partitions),
            &partitions,
            |b, &p| {
                let broker = Broker::new();
                broker.create_topic("t", p, 1_000_000).unwrap();
                let payload = Arc::new(vec![7u8; 256]);
                b.iter(|| {
                    for _ in 0..MSGS {
                        black_box(broker.produce("t", None, Arc::clone(&payload)).unwrap());
                    }
                });
            },
        );
        for batch in [16u64, 64, 256] {
            group.bench_with_input(
                BenchmarkId::new(format!("batch{batch}"), partitions),
                &partitions,
                |b, &p| {
                    let broker = Broker::new();
                    broker.create_topic("t", p, 1_000_000).unwrap();
                    let payload = Arc::new(vec![7u8; 256]);
                    b.iter(|| {
                        for _ in 0..MSGS / batch {
                            black_box(
                                broker
                                    .produce_batch(
                                        "t",
                                        (0..batch).map(|_| (None, Arc::clone(&payload))),
                                    )
                                    .unwrap(),
                            );
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_poll_vs_poll_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_poll");
    group.sample_size(20);
    group.throughput(Throughput::Elements(MSGS));

    // Allocating path: fresh Vecs + assignment re-derivation every call.
    group.bench_function("poll_alloc", |b| {
        let broker = Broker::new();
        broker.create_topic("t", 4, usize::MAX / 2).unwrap();
        broker.join_group("g", "t", "c").unwrap();
        let payload = Arc::new(vec![7u8; 256]);
        b.iter_with_setup(
            || {
                broker
                    .produce_batch("t", (0..MSGS).map(|_| (None, Arc::clone(&payload))))
                    .unwrap();
            },
            |_| {
                let mut drained = 0u64;
                while drained < MSGS {
                    drained += broker.poll("g", "c", 64).unwrap().len() as u64;
                }
                black_box(drained)
            },
        );
    });

    // Buffer-reusing path: cached assignment, caller-owned buffer.
    group.bench_function("poll_into_reuse", |b| {
        let broker = Broker::new();
        broker.create_topic("t", 4, usize::MAX / 2).unwrap();
        broker.join_group("g", "t", "c").unwrap();
        let mut sub = broker.subscribe("g", "c").unwrap();
        let mut buf = Vec::with_capacity(64);
        let payload = Arc::new(vec![7u8; 256]);
        b.iter_with_setup(
            || {
                broker
                    .produce_batch("t", (0..MSGS).map(|_| (None, Arc::clone(&payload))))
                    .unwrap();
            },
            |_| {
                let mut drained = 0u64;
                while drained < MSGS {
                    drained += broker.poll_into(&mut sub, 64, &mut buf).unwrap() as u64;
                }
                black_box(drained)
            },
        );
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_produce_per_message_vs_batched,
    bench_poll_vs_poll_into
);
criterion_main!(benches);
