//! Simulation-substrate benchmarks: raw DES event throughput and a full
//! batch-cluster simulation — these bound how large the virtual-time
//! experiments (PJ-1/PJ-4/IO-1/DY-1) can be pushed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pilot_infra::component::drive_until;
use pilot_infra::hpc::{BackgroundLoad, HpcCluster, HpcConfig};
use pilot_sim::{Dist, Executor, Machine, Outbox, SimDuration, SimTime};
use std::hint::black_box;

/// A self-perpetuating machine that stops after N events.
struct Ticker {
    remaining: u64,
}

impl Machine for Ticker {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _e: (), out: &mut Outbox<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            out.after(SimDuration::from_millis(1), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("100k_chained_events", |b| {
        b.iter(|| {
            let mut ex = Executor::new(Ticker { remaining: n });
            ex.schedule_at(SimTime::ZERO, ());
            ex.run();
            black_box(ex.processed())
        });
    });
    group.finish();
}

fn bench_hpc_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_hpc_cluster");
    group.sample_size(10);
    group.bench_function("busy_cluster_1_virtual_day", |b| {
        b.iter(|| {
            let bg = BackgroundLoad::at_utilization(
                0.8,
                512,
                Dist::uniform(4.0, 64.0),
                Dist::exponential(1800.0),
            );
            let mut cluster = HpcCluster::new(HpcConfig::quiet("bench", 512).with_background(bg));
            let inputs = cluster.initial_inputs();
            let outs = drive_until(&mut cluster, inputs, SimTime::from_hours(24));
            black_box((outs.len(), cluster.utilization(SimTime::from_hours(24))))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_hpc_sim);
criterion_main!(benches);
