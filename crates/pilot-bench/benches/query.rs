//! Read-plane microbenchmarks: the four QP-1 query paths isolated from the
//! write storm, plus the materializer's fold rate. These are the
//! measurements behind `BENCH_query.json` and the acceptance floor
//! "projection dashboard ≥ 10× the lock-path dashboard".
//!
//! `dashboard` compares the pre-read-plane aggregate (full
//! `status_snapshot()` clone under the registry lock, folded per query)
//! against `QueryService::dashboard()` (atomic snapshot load, aggregates
//! precomputed by the materializer). `point` compares single-unit lookups on
//! both paths. `fold` measures raw events-per-second through
//! `QueryTables::apply`, the materializer's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::events::ProjEvent;
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_query::{
    publish_events, BrokerSink, Materializer, QueryService, QueryTables, ShardedMaterializer,
};
use pilot_sim::SimDuration;
use pilot_streaming::{Broker, Retention};
use std::hint::black_box;
use std::sync::Arc;

/// A service + drained projection with `units` terminal units.
fn populated(units: usize) -> (ThreadPilotService, QueryService, Vec<UnitId>) {
    let broker = Arc::new(Broker::new());
    let sink = BrokerSink::create(Arc::clone(&broker), "bench.proj", 4).unwrap();
    let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let ids: Vec<UnitId> = (0..units)
        .map(|_| {
            svc.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::of(0u64))),
            )
        })
        .collect();
    for &u in &ids {
        svc.wait_unit(u).unwrap();
    }
    let mut m = Materializer::bootstrap(Arc::clone(&broker), "bench.proj").unwrap();
    m.catch_up().unwrap();
    (svc, m.service(), ids)
}

fn bench_dashboard(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_dashboard");
    group.sample_size(20);
    for units in [500usize, 2000] {
        let (svc, qs, _ids) = populated(units);
        group.bench_with_input(BenchmarkId::new("lock_path", units), &units, |b, _| {
            b.iter(|| {
                let snap = svc.status_snapshot();
                let done = snap
                    .units
                    .iter()
                    .filter(|(_, s, _)| *s == UnitState::Done)
                    .count();
                black_box(done + snap.open_units)
            });
        });
        group.bench_with_input(BenchmarkId::new("projection", units), &units, |b, _| {
            b.iter(|| {
                let d = qs.dashboard();
                black_box(d.units_in(UnitState::Done) + d.open_units())
            });
        });
        svc.shutdown();
    }
    group.finish();
}

fn bench_point_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_point");
    group.sample_size(20);
    let units = 2000usize;
    let (svc, qs, ids) = populated(units);
    group.bench_function("lock_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(svc.unit_state(ids[i]))
        });
    });
    group.bench_function("projection", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(qs.unit_state(ids[i]))
        });
    });
    group.bench_function("projection_utilization", |b| {
        b.iter(|| black_box(qs.pilot_utilization(PilotId(0))));
    });
    svc.shutdown();
    group.finish();
}

const FOLD_EVENTS: u64 = 4096;

fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_fold");
    group.sample_size(20);
    group.throughput(Throughput::Elements(FOLD_EVENTS));
    // A realistic event mix: 4 lifecycle events + 1 metric per unit.
    let events: Vec<ProjEvent> = (0..FOLD_EVENTS / 5)
        .flat_map(|u| {
            let unit = UnitId(u);
            let pilot = Some(PilotId(u % 8));
            [
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Pending,
                    pilot: None,
                    t_s: u as f64,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Assigned,
                    pilot,
                    t_s: u as f64 + 0.1,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Running,
                    pilot,
                    t_s: u as f64 + 0.2,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Done,
                    pilot,
                    t_s: u as f64 + 0.9,
                },
                ProjEvent::UnitMetric {
                    unit,
                    wait_s: 0.1,
                    exec_s: 0.7,
                    t_s: u as f64 + 0.9,
                },
            ]
        })
        .collect();
    group.bench_function("apply", |b| {
        b.iter(|| {
            let mut t = QueryTables::new(4);
            for e in &events {
                t.apply(e);
            }
            black_box(t.digest())
        });
    });
    // The full pipeline: fetch -> decode -> apply from a freshly produced
    // topic (encode+produce happen in the setup half, outside the timing).
    group.bench_function("materialize_from_topic", |b| {
        b.iter_with_setup(
            || {
                let broker = Arc::new(Broker::new());
                broker.create_topic("fold", 4, usize::MAX / 2).unwrap();
                broker
                    .produce_batch(
                        "fold",
                        events.iter().map(|e| (Some(e.key()), Arc::new(e.encode()))),
                    )
                    .unwrap();
                broker
            },
            |broker| {
                let mut m = Materializer::bootstrap(Arc::clone(&broker), "fold").unwrap();
                m.catch_up().unwrap();
                black_box(m.tables().events_applied)
            },
        );
    });
    group.finish();
}

/// Projection churn over `units` entities, `rounds` state+metric updates
/// each — the workload whose final table is `units` rows however long the
/// history is.
fn churn(units: u64, rounds: u64) -> Vec<ProjEvent> {
    let mut evs = Vec::with_capacity((rounds * units * 2) as usize);
    for r in 0..rounds {
        for u in 0..units {
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: if r % 2 == 0 {
                    UnitState::Running
                } else {
                    UnitState::Done
                },
                pilot: Some(PilotId(u % 4)),
                t_s: r as f64,
            });
            evs.push(ProjEvent::UnitMetric {
                unit: UnitId(u),
                wait_s: 0.1,
                exec_s: 0.5,
                t_s: r as f64,
            });
        }
    }
    evs
}

/// Sharded fold scaling: drain one pre-produced topic with 1/2/4 fold
/// workers over disjoint partition groups, `publish_every` 16 (the cadence
/// contract is per-event, so each shard clones 1/Nth-sized tables at the
/// same cadence — the dominant cost drops N-fold even on one core).
fn bench_shard_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_shard_fold");
    group.sample_size(10);
    let events = churn(4096, 3);
    group.throughput(Throughput::Elements(events.len() as u64));
    let broker = Arc::new(Broker::new());
    broker
        .create_topic("shard.fold", 4, usize::MAX / 2)
        .unwrap();
    for chunk in events.chunks(512) {
        publish_events(&broker, "shard.fold", chunk).unwrap();
    }
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("catch_up", shards), &shards, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut sm =
                        ShardedMaterializer::bootstrap(Arc::clone(&broker), "shard.fold", n)
                            .unwrap();
                    sm.set_publish_every(16);
                    sm
                },
                |mut sm| {
                    std::thread::scope(|s| {
                        for m in sm.shards_mut().iter_mut() {
                            s.spawn(move || m.catch_up().unwrap());
                        }
                    });
                    black_box(sm.events_applied())
                },
            );
        });
    }
    group.finish();
}

/// Bootstrap cost, full history vs compacted topic, at a 32× event-to-entity
/// ratio: the compacted replay is bounded by live entities, not history.
fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_bootstrap");
    group.sample_size(10);
    let events = churn(256, 16); // 8192 events, 256 live units
    let broker = Arc::new(Broker::new());
    broker.create_topic("boot.full", 4, usize::MAX / 2).unwrap();
    broker
        .create_topic_with("boot.compact", 4, Retention::Compact { trigger: 128 })
        .unwrap();
    for chunk in events.chunks(512) {
        publish_events(&broker, "boot.full", chunk).unwrap();
        publish_events(&broker, "boot.compact", chunk).unwrap();
    }
    for topic in ["boot.full", "boot.compact"] {
        group.bench_with_input(BenchmarkId::new("catch_up", topic), &topic, |b, t| {
            b.iter(|| {
                let mut m = Materializer::bootstrap(Arc::clone(&broker), t).unwrap();
                m.catch_up().unwrap();
                black_box(m.tables().events_applied)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dashboard,
    bench_point_reads,
    bench_fold,
    bench_shard_fold,
    bench_bootstrap
);
criterion_main!(benches);
