//! Read-plane microbenchmarks: the four QP-1 query paths isolated from the
//! write storm, plus the materializer's fold rate. These are the
//! measurements behind `BENCH_query.json` and the acceptance floor
//! "projection dashboard ≥ 10× the lock-path dashboard".
//!
//! `dashboard` compares the pre-read-plane aggregate (full
//! `status_snapshot()` clone under the registry lock, folded per query)
//! against `QueryService::dashboard()` (atomic snapshot load, aggregates
//! precomputed by the materializer). `point` compares single-unit lookups on
//! both paths. `fold` measures raw events-per-second through
//! `QueryTables::apply`, the materializer's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::events::ProjEvent;
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_query::{BrokerSink, Materializer, QueryService, QueryTables};
use pilot_sim::SimDuration;
use pilot_streaming::Broker;
use std::hint::black_box;
use std::sync::Arc;

/// A service + drained projection with `units` terminal units.
fn populated(units: usize) -> (ThreadPilotService, QueryService, Vec<UnitId>) {
    let broker = Arc::new(Broker::new());
    let sink = BrokerSink::create(Arc::clone(&broker), "bench.proj", 4).unwrap();
    let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let ids: Vec<UnitId> = (0..units)
        .map(|_| {
            svc.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::of(0u64))),
            )
        })
        .collect();
    for &u in &ids {
        svc.wait_unit(u).unwrap();
    }
    let mut m = Materializer::bootstrap(Arc::clone(&broker), "bench.proj").unwrap();
    m.catch_up().unwrap();
    (svc, m.service(), ids)
}

fn bench_dashboard(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_dashboard");
    group.sample_size(20);
    for units in [500usize, 2000] {
        let (svc, qs, _ids) = populated(units);
        group.bench_with_input(BenchmarkId::new("lock_path", units), &units, |b, _| {
            b.iter(|| {
                let snap = svc.status_snapshot();
                let done = snap
                    .units
                    .iter()
                    .filter(|(_, s, _)| *s == UnitState::Done)
                    .count();
                black_box(done + snap.open_units)
            });
        });
        group.bench_with_input(BenchmarkId::new("projection", units), &units, |b, _| {
            b.iter(|| {
                let d = qs.dashboard();
                black_box(d.units_in(UnitState::Done) + d.open_units())
            });
        });
        svc.shutdown();
    }
    group.finish();
}

fn bench_point_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_point");
    group.sample_size(20);
    let units = 2000usize;
    let (svc, qs, ids) = populated(units);
    group.bench_function("lock_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(svc.unit_state(ids[i]))
        });
    });
    group.bench_function("projection", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(qs.unit_state(ids[i]))
        });
    });
    group.bench_function("projection_utilization", |b| {
        b.iter(|| black_box(qs.pilot_utilization(PilotId(0))));
    });
    svc.shutdown();
    group.finish();
}

const FOLD_EVENTS: u64 = 4096;

fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_fold");
    group.sample_size(20);
    group.throughput(Throughput::Elements(FOLD_EVENTS));
    // A realistic event mix: 4 lifecycle events + 1 metric per unit.
    let events: Vec<ProjEvent> = (0..FOLD_EVENTS / 5)
        .flat_map(|u| {
            let unit = UnitId(u);
            let pilot = Some(PilotId(u % 8));
            [
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Pending,
                    pilot: None,
                    t_s: u as f64,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Assigned,
                    pilot,
                    t_s: u as f64 + 0.1,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Running,
                    pilot,
                    t_s: u as f64 + 0.2,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Done,
                    pilot,
                    t_s: u as f64 + 0.9,
                },
                ProjEvent::UnitMetric {
                    unit,
                    wait_s: 0.1,
                    exec_s: 0.7,
                    t_s: u as f64 + 0.9,
                },
            ]
        })
        .collect();
    group.bench_function("apply", |b| {
        b.iter(|| {
            let mut t = QueryTables::new(4);
            for e in &events {
                t.apply(e);
            }
            black_box(t.digest())
        });
    });
    // The full pipeline: fetch -> decode -> apply from a freshly produced
    // topic (encode+produce happen in the setup half, outside the timing).
    group.bench_function("materialize_from_topic", |b| {
        b.iter_with_setup(
            || {
                let broker = Arc::new(Broker::new());
                broker.create_topic("fold", 4, usize::MAX / 2).unwrap();
                broker
                    .produce_batch(
                        "fold",
                        events.iter().map(|e| (Some(e.key()), Arc::new(e.encode()))),
                    )
                    .unwrap();
                broker
            },
            |broker| {
                let mut m = Materializer::bootstrap(Arc::clone(&broker), "fold").unwrap();
                m.catch_up().unwrap();
                black_box(m.tables().events_applied)
            },
        );
    });
    group.finish();
}

criterion_group!(benches, bench_dashboard, bench_point_reads, bench_fold);
criterion_main!(benches);
