//! Broker micro-benchmarks: produce and poll rates vs partition count —
//! the partition-parallelism knob of the streaming experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pilot_streaming::Broker;
use std::hint::black_box;
use std::sync::Arc;

fn bench_produce(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_produce");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    for partitions in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, &p| {
                let broker = Broker::new();
                broker.create_topic("t", p, 1_000_000).unwrap();
                let payload = Arc::new(vec![7u8; 256]);
                b.iter(|| black_box(broker.produce("t", None, Arc::clone(&payload)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_poll_batch64");
    group.sample_size(20);
    group.throughput(Throughput::Elements(64));
    group.bench_function("poll", |b| {
        let broker = Broker::new();
        broker.create_topic("t", 4, usize::MAX / 2).unwrap();
        broker.join_group("g", "t", "c").unwrap();
        let payload = Arc::new(vec![7u8; 256]);
        // Keep the topic ahead of the consumer.
        for _ in 0..500_000 {
            broker.produce("t", None, Arc::clone(&payload)).unwrap();
        }
        b.iter(|| black_box(broker.poll("g", "c", 64).unwrap().len()));
    });
    group.finish();
}

fn bench_keyed_produce(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_produce_keyed");
    group.sample_size(20);
    group.bench_function("keyed_8p", |b| {
        let broker = Broker::new();
        broker.create_topic("t", 8, 1_000_000).unwrap();
        let payload = Arc::new(vec![7u8; 64]);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(broker.produce("t", Some(k), Arc::clone(&payload)).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_produce, bench_poll, bench_keyed_produce);
criterion_main!(benches);
