//! Experiment driver: regenerates every table in EXPERIMENTS.md.
//!
//! Usage:
//!   experiments            # run everything
//!   experiments --quick    # downscaled (CI-sized) runs
//!   experiments PJ-1 PS-2  # run selected experiment ids
//!   experiments --list     # list experiment ids

use pilot_bench::experiments::{registry, run_all};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in registry() {
            println!("{name}");
        }
        return;
    }
    if selected.is_empty() {
        let _ = run_all(quick);
        return;
    }
    let reg = registry();
    for want in &selected {
        match reg.iter().find(|(name, _)| name.eq_ignore_ascii_case(want)) {
            Some((name, f)) => {
                println!("\n================ {name} ================");
                let _ = f(quick);
            }
            None => {
                eprintln!("unknown experiment '{want}'; try --list");
                std::process::exit(2);
            }
        }
    }
}
