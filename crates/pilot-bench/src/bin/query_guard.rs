//! Read-plane regression guard: re-measures the two load-bearing query-path
//! costs — the projection dashboard read and the materializer fold-apply —
//! and fails (exit 1) if either regressed more than 2× against the committed
//! `BENCH_query.json` baseline.
//!
//! The criterion shim prints plain text, so the guard does not parse bench
//! output; it re-times the same workloads directly (best-of-N to damp CI
//! noise) and compares against the baseline file parsed with the miniapp's
//! own JSON reader. 2× is deliberately loose: it catches accidental
//! algorithmic regressions (a lock on the read path, an O(n) fold step going
//! O(n²)) without tripping on shared-runner jitter.
//!
//! Usage: `query_guard [path/to/BENCH_query.json]`

use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::events::ProjEvent;
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_core::WallClock;
use pilot_miniapp::json;
use pilot_query::{BrokerSink, Materializer, QueryTables};
use pilot_sim::SimDuration;
use pilot_streaming::Broker;
use std::hint::black_box;
use std::sync::Arc;

/// Baseline µs/iter for `id` from the committed bench file.
fn baseline_us(doc: &json::Value, id: &str) -> Option<f64> {
    doc.get("results")?.as_arr()?.iter().find_map(|r| {
        if r.get("id")?.as_str()? == id {
            r.get("us_per_iter")?.as_f64()
        } else {
            None
        }
    })
}

/// Best-of-`rounds` time for `iters` runs of `f`, in µs per iteration.
fn time_us(rounds: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let clock = WallClock::start();
        for _ in 0..iters {
            f();
        }
        best = best.min(clock.elapsed().as_secs_f64());
    }
    best * 1e6 / iters as f64
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/../../BENCH_query.json", env!("CARGO_MANIFEST_DIR")));
    let raw = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("query_guard: cannot read baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match json::parse(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("query_guard: cannot parse baseline {path}: {e:?}");
            std::process::exit(2);
        }
    };

    // --- dashboard read: the committed projection/2000 workload -----------
    let units = 2000usize;
    let broker = Arc::new(Broker::new());
    let sink = BrokerSink::create(Arc::clone(&broker), "guard.proj", 4)
        // lint: allow(panic, reason = "fresh broker, fresh topic")
        .expect("projection topic");
    let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p), "pilot must activate");
    for _ in 0..units {
        let u = svc.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::of(0u64))),
        );
        // lint: allow(panic, reason = "unit ids come from submit_unit on this same service")
        svc.wait_unit(u).expect("unit issued by this service");
    }
    let mut m = Materializer::bootstrap(Arc::clone(&broker), "guard.proj")
        // lint: allow(panic, reason = "the topic was created above")
        .expect("bootstrap");
    m.catch_up()
        // lint: allow(panic, reason = "broker and topic are alive for the whole run")
        .expect("seed drain");
    let qs = m.service();
    let dash_us = time_us(5, 20_000, || {
        let d = qs.dashboard();
        black_box(d.units_in(UnitState::Done) + d.open_units());
    });
    svc.shutdown();

    // --- fold apply: the committed query_fold/apply workload --------------
    let events: Vec<ProjEvent> = (0..4096u64 / 5)
        .flat_map(|u| {
            let unit = UnitId(u);
            let pilot = Some(PilotId(u % 8));
            [
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Pending,
                    pilot: None,
                    t_s: u as f64,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Assigned,
                    pilot,
                    t_s: u as f64 + 0.1,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Running,
                    pilot,
                    t_s: u as f64 + 0.2,
                },
                ProjEvent::Unit {
                    unit,
                    state: UnitState::Done,
                    pilot,
                    t_s: u as f64 + 0.9,
                },
                ProjEvent::UnitMetric {
                    unit,
                    wait_s: 0.1,
                    exec_s: 0.7,
                    t_s: u as f64 + 0.9,
                },
            ]
        })
        .collect();
    let fold_us = time_us(5, 20, || {
        let mut t = QueryTables::new(4);
        for e in &events {
            t.apply(e);
        }
        black_box(t.digest());
    });

    let checks = [
        ("query_dashboard/projection/2000", dash_us),
        ("query_fold/apply", fold_us),
    ];
    let mut failed = false;
    for (id, measured) in checks {
        match baseline_us(&doc, id) {
            Some(base) => {
                let ratio = measured / base.max(1e-9);
                let verdict = if ratio > 2.0 { "REGRESSED" } else { "ok" };
                println!(
                    "query_guard: {id}: measured {measured:.3} µs vs baseline {base:.3} µs ({ratio:.2}x) {verdict}"
                );
                if ratio > 2.0 {
                    failed = true;
                }
            }
            None => {
                eprintln!("query_guard: baseline {path} has no entry for {id}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("query_guard: read-plane performance regressed >2x against {path}");
        std::process::exit(1);
    }
    println!("query_guard: read plane within 2x of committed baselines");
}
