//! ST-1: data-plane throughput sweep — per-message vs batched produce and
//! the buffer-reusing consume path across partitions × producers, with an
//! OLS throughput model over the sweep (the pilot-perfmodel consumer of the
//! numbers, as in the paper's streaming evaluation).

use super::common;
use pilot_core::describe::UnitDescription;
use pilot_core::thread::{kernel_fn, TaskOutput};
use pilot_core::WallClock;
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_perfmodel::{mae, r_squared, train_test_split, FeatureMap, LinearModel};
use pilot_streaming::Broker;
use std::sync::Arc;

/// ST-1: produce `msgs` records through pilot producer units (per-message
/// when batch = 1, `produce_batch` otherwise), then drain them through one
/// `Subscription` + `poll_into` consumer; fit OLS throughput over the sweep.
pub fn run_st1(quick: bool) -> String {
    let msgs: u64 = if quick { 20_000 } else { 100_000 };
    let spec = ExperimentSpec::new(
        "ST-1 data-plane throughput sweep",
        vec![
            Factor::new("partitions", &[1.0, 2.0, 4.0]),
            Factor::new("producers", &[1.0, 2.0]),
            Factor::new("batch", &[1.0, 64.0]),
        ],
        if quick { 1 } else { 3 },
        0x5354,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let partitions = trial.param_usize("partitions");
        let producers = trial.param_usize("producers");
        let batch = trial.param_usize("batch").max(1) as u64;
        let per_producer = msgs / producers as u64;
        let total = per_producer * producers as u64;

        let svc = common::thread_service(
            producers as u32,
            Box::new(pilot_core::scheduler::FirstFitScheduler),
        );
        let broker = Arc::new(Broker::new());
        let topic = format!("st-{}-{}", trial.config_key(), trial.rep);
        broker
            .create_topic(&topic, partitions, usize::MAX / 2)
            // lint: allow(panic, reason = "the topic name embeds the trial key and rep, so it is fresh on a fresh broker")
            .expect("fresh topic per trial");

        // ---- produce phase: pilot units hammer the broker ----------------
        let clock = WallClock::start();
        let units: Vec<_> = (0..producers)
            .map(|_| {
                let broker = Arc::clone(&broker);
                let topic = topic.clone();
                let payload = Arc::new(vec![7u8; 256]);
                svc.submit_unit(
                    UnitDescription::new(1).tagged("st1-producer"),
                    kernel_fn(move |_| {
                        let mut sent = 0u64;
                        while sent < per_producer {
                            let chunk = batch.min(per_producer - sent);
                            if chunk == 1 {
                                broker
                                    .produce(&topic, None, Arc::clone(&payload))
                                    // lint: allow(panic, reason = "the topic was created before the producer units were submitted")
                                    .expect("topic exists");
                            } else {
                                broker
                                    .produce_batch(
                                        &topic,
                                        (0..chunk).map(|_| (None, Arc::clone(&payload))),
                                    )
                                    // lint: allow(panic, reason = "the topic was created before the producer units were submitted")
                                    .expect("topic exists");
                            }
                            sent += chunk;
                        }
                        Ok(TaskOutput::of(sent))
                    }),
                )
            })
            .collect();
        for u in units {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
            svc.wait_unit(u).expect("unit issued by this service");
        }
        let produce_s = clock.elapsed().as_secs_f64();
        svc.shutdown();

        // ---- consume phase: one subscription drains everything ------------
        broker
            .join_group("st1", &topic, "c0")
            // lint: allow(panic, reason = "the topic was created above on this same broker")
            .expect("topic exists");
        let mut sub = broker
            .subscribe("st1", "c0")
            // lint: allow(panic, reason = "c0 joined the group on the line above")
            .expect("member of group");
        let mut buf = Vec::with_capacity(256);
        let clock = WallClock::start();
        let mut drained = 0u64;
        while drained < total {
            let n = broker
                .poll_into(&mut sub, 256, &mut buf)
                // lint: allow(panic, reason = "c0 joined the group before the drain loop")
                .expect("member of group");
            drained += n as u64;
            std::hint::black_box(buf.len());
        }
        let consume_s = clock.elapsed().as_secs_f64();
        assert_eq!(drained, total, "drain must account for every record");

        table.push(
            trial,
            vec![
                ("produce_msg_s".into(), total as f64 / produce_s.max(1e-9)),
                ("consume_msg_s".into(), total as f64 / consume_s.max(1e-9)),
            ],
        );
    }

    // Batching must pay on the real pilot path, not just in the
    // single-threaded microbench (BENCH_streaming.json holds the ≥ 3×
    // floor there); across producers/partitions with scheduler overhead in
    // the denominator we require a conservative 1.3×.
    let mean = |batch: f64| {
        let rows: Vec<f64> = table
            .rows
            .iter()
            .filter(|r| r.trial.param("batch") == batch)
            .map(|r| r.measured("produce_msg_s"))
            .collect();
        rows.iter().sum::<f64>() / rows.len().max(1) as f64
    };
    let batched_ratio = mean(64.0) / mean(1.0).max(1e-9);
    assert!(
        batched_ratio >= 1.3,
        "batched produce must beat per-message end to end, got {batched_ratio:.2}×"
    );

    // OLS throughput model over the sweep — the perfmodel hand-off.
    let xs: Vec<Vec<f64>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.trial.param("partitions"),
                r.trial.param("producers"),
                r.trial.param("batch"),
            ]
        })
        .collect();
    let ys: Vec<f64> = table
        .rows
        .iter()
        .map(|r| r.measured("produce_msg_s"))
        .collect();
    let (tr_x, tr_y, te_x, te_y) = train_test_split(&xs, &ys, 0.3, 0x5355);
    let model = LinearModel::fit(&tr_x, &tr_y, FeatureMap::Interactions)
        // lint: allow(panic, reason = "the factorial sweep spans all factor levels, so the interaction design matrix has full rank")
        .expect("design matrix is well-posed");
    let preds = model.predict_all(&te_x);
    let r2 = r_squared(&te_y, &preds);
    let err = mae(&te_y, &preds);

    let mut out = table.to_markdown();
    out.push_str(&format!(
        "\nbatched (64) over per-message produce, end to end: {batched_ratio:.2}×\n\n\
         ### ST-1 OLS throughput model (interaction features)\n\n\
         | metric | value |\n|---|---|\n\
         | training samples | {} |\n\
         | held-out samples | {} |\n\
         | held-out R² | {r2:.3} |\n\
         | held-out MAE | {err:.0} msg/s |\n",
        tr_x.len(),
        te_x.len(),
    ));
    assert!(r2 > 0.3, "model must beat the mean predictor, got R²={r2}");
    common::emit(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn st1_quick_holds_batching_floor_and_model_fit() {
        // The floors are asserted inside run_st1; surviving the call in
        // quick mode is the regression check CI runs.
        let report = super::run_st1(true);
        assert!(report.contains("produce_msg_s"));
        assert!(report.contains("held-out R²"));
    }
}
