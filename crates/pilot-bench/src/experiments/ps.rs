//! PS experiments: Pilot-Streaming throughput/latency sweep (PS-1) and the
//! statistical throughput model with optimal-resource selection (PS-2) —
//! Table II "Pilot-Streaming" column and \[73\].

use super::common;
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_perfmodel::{mae, r_squared, train_test_split, FeatureMap, LinearModel};
use pilot_streaming::pipeline::run_stream_job;
use pilot_streaming::{Broker, StreamJobConfig};
use std::sync::Arc;

fn sweep(quick: bool, name: &str, reps: u32) -> ResultTable {
    let msgs = if quick { 1500 } else { 6000 };
    let spec = ExperimentSpec::new(
        name,
        vec![
            Factor::new("partitions", &[1.0, 2.0, 4.0]),
            Factor::new("processors", &[1.0, 2.0]),
            Factor::new("payload_kb", &[0.25, 4.0]),
        ],
        reps,
        0x5053,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let partitions = trial.param_usize("partitions");
        let processors = trial.param_usize("processors");
        let payload = (trial.param("payload_kb") * 1024.0) as usize;
        let svc = common::thread_service(
            (1 + processors) as u32,
            Box::new(pilot_core::scheduler::FirstFitScheduler),
        );
        let broker = Arc::new(Broker::new());
        let mut cfg = StreamJobConfig::new(
            &format!("t-{}-{}", trial.config_key(), trial.rep),
            partitions,
            1,
            processors,
        );
        cfg.messages_per_producer = msgs;
        cfg.payload_bytes = payload;
        // A real per-message operator: a sequential fold over the payload
        // (cannot vectorize away), so message cost scales with payload size
        // and the pipeline has a genuine service rate to model.
        let report = run_stream_job(
            &svc,
            &broker,
            &cfg,
            Arc::new(|m| {
                let mut acc = 0u64;
                for &b in m.payload.iter() {
                    acc = acc.wrapping_mul(31).wrapping_add(b as u64);
                }
                std::hint::black_box(acc);
            }),
        );
        svc.shutdown();
        assert_eq!(report.consumed, msgs);
        table.push(
            trial,
            vec![
                ("throughput_msg_s".into(), report.throughput),
                ("latency_p50_ms".into(), report.latency_p50 * 1e3),
                ("latency_p99_ms".into(), report.latency_p99 * 1e3),
            ],
        );
    }
    table
}

/// PS-1: throughput and latency percentiles across partitions × processors
/// × payload size, on the real broker and pilots.
pub fn run_ps1(quick: bool) -> String {
    let table = sweep(
        quick,
        "PS-1 streaming throughput/latency sweep",
        if quick { 1 } else { 3 },
    );
    common::emit(table.to_markdown())
}

/// PS-2: fit an OLS model on the PS-1 sweep, validate on held-out
/// configurations, and pick the best configuration — the paper's
/// throughput-prediction / resource-selection result.
pub fn run_ps2(quick: bool) -> String {
    let table = sweep(
        quick,
        "PS-2 model training sweep",
        if quick { 1 } else { 2 },
    );
    let xs: Vec<Vec<f64>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.trial.param("partitions"),
                r.trial.param("processors"),
                r.trial.param("payload_kb"),
            ]
        })
        .collect();
    let ys: Vec<f64> = table
        .rows
        .iter()
        .map(|r| r.measured("throughput_msg_s"))
        .collect();
    let (tr_x, tr_y, te_x, te_y) = train_test_split(&xs, &ys, 0.3, 0x5054);
    let model = LinearModel::fit(&tr_x, &tr_y, FeatureMap::Interactions)
        // lint: allow(panic, reason = "the factorial sweep spans all factor levels, so the interaction design matrix has full rank")
        .expect("design matrix is well-posed");
    let preds = model.predict_all(&te_x);
    let r2 = r_squared(&te_y, &preds);
    let err = mae(&te_y, &preds);
    let candidates: Vec<Vec<f64>> = [1.0, 2.0, 4.0, 8.0]
        .iter()
        .flat_map(|&p| [1.0, 2.0].iter().map(move |&c| vec![p, c, 0.25]))
        .collect();
    // lint: allow(panic, reason = "candidates is built from two static non-empty level lists")
    let best = model.argmax(&candidates).expect("non-empty candidates");
    let mut out =
        String::from("### PS-2 statistical throughput model (OLS, interaction features)\n\n");
    out.push_str(&format!(
        "| metric | value |\n|---|---|\n\
         | training samples | {} |\n\
         | held-out samples | {} |\n\
         | held-out R² | {r2:.3} |\n\
         | held-out MAE | {err:.0} msg/s |\n\
         | predicted-best config | partitions={}, processors={}, payload={}kB |\n\
         | predicted throughput there | {:.0} msg/s |\n",
        tr_x.len(),
        te_x.len(),
        best[0],
        best[1],
        best[2],
        model.predict(best),
    ));
    out.push_str("\nheld-out predictions vs measurements:\n\n| config (p, c, kB) | measured | predicted |\n|---|---|---|\n");
    for (x, (m, p)) in te_x.iter().zip(te_y.iter().zip(&preds)) {
        out.push_str(&format!(
            "| ({}, {}, {}) | {m:.0} | {p:.0} |\n",
            x[0], x[1], x[2]
        ));
    }
    assert!(r2 > 0.3, "model must beat the mean predictor, got R²={r2}");
    common::emit(out)
}

/// PS-3: HPC/cloud-pilot vs serverless stream processing (\[73\]). The pilot
/// holds capacity (low, stable latency; pay for idle); serverless pays a
/// cold-start tail and per-invocation cost but nothing when idle.
pub fn run_ps3(quick: bool) -> String {
    use pilot_core::describe::{PilotDescription, UnitDescription};
    use pilot_core::sim::SimPilotSystem;
    use pilot_core::state::UnitState;
    use pilot_infra::component::drive_until;
    use pilot_infra::serverless::{
        ServerlessConfig, ServerlessIn, ServerlessOut, ServerlessPlatform,
    };
    use pilot_sim::{percentile, SimDuration, SimRng, SimTime};

    let messages = if quick { 500 } else { 3000 };
    let proc_s = 0.05; // per-message processing time
    let mut out = String::from(
        "### PS-3 pilot-hosted vs serverless stream processing (sim)\n\n\
         | arrival rate (msg/s) | backend | p50 latency (s) | p99 latency (s) | cost ($/1M msg) |\n\
         |---|---|---|---|---|\n",
    );
    for rate in [1.0f64, 10.0, 50.0] {
        // Shared arrival process per rate.
        let mut rng = SimRng::new(0x5057).stream(rate as u64);
        let mut t = 0.0;
        let arrivals: Vec<f64> = (0..messages)
            .map(|_| {
                t += rng.exponential(1.0 / rate);
                t
            })
            .collect();
        // lint: allow(panic, reason = "arrivals holds exactly `messages` samples and messages is a positive constant")
        let span_s = *arrivals.last().expect("non-empty") + 10.0;

        // --- pilot on a cloud VM (4 cores held for the whole span) --------
        {
            let mut sys = SimPilotSystem::new(0x5057);
            sys.disable_trace();
            let site = sys.add_resource(common::cloud("stream-cloud", 64));
            sys.submit_pilot(
                SimTime::ZERO,
                site,
                PilotDescription::new(4, SimDuration::from_secs_f64(span_s + 300.0)),
            );
            for &at in &arrivals {
                sys.submit_unit_fixed(
                    SimTime::from_secs_f64(at + 120.0), // after boot
                    UnitDescription::new(1),
                    proc_s,
                );
            }
            let report = sys.run(SimTime::from_secs_f64(span_s + 3600.0));
            assert_eq!(report.count(UnitState::Done), messages);
            let lats: Vec<f64> = report
                .units
                .iter()
                .filter_map(|u| u.times.turnaround())
                .collect();
            // small.4 instance at $0.17/h held for the span (+boot).
            let cost_total = 0.17 * (span_s + 300.0) / 3600.0;
            let cost_per_m = cost_total / messages as f64 * 1e6;
            out.push_str(&format!(
                "| {rate:.0} | pilot (4-core VM) | {:.3} | {:.3} | {:.2} |\n",
                percentile(&lats, 50.0),
                percentile(&lats, 99.0),
                cost_per_m
            ));
        }

        // --- serverless: one invocation per message ------------------------
        {
            let mut platform = ServerlessPlatform::new(ServerlessConfig::lambda_like("recon", 64));
            let inputs: Vec<(SimTime, ServerlessIn)> = arrivals
                .iter()
                .enumerate()
                .map(|(i, &at)| {
                    (
                        SimTime::from_secs_f64(at),
                        ServerlessIn::Invoke {
                            id: i as u64,
                            duration: SimDuration::from_secs_f64(proc_s),
                        },
                    )
                })
                .collect();
            let outs = drive_until(
                &mut platform,
                inputs,
                SimTime::from_secs_f64(span_s + 3600.0),
            );
            let lats: Vec<f64> = outs
                .iter()
                .filter_map(|(_, o)| match o {
                    ServerlessOut::Completed { latency, .. } => Some(latency.as_secs_f64()),
                    _ => None,
                })
                .collect();
            assert_eq!(lats.len(), messages, "no throttling at this concurrency");
            let cost_per_m = platform.cost_total() / messages as f64 * 1e6;
            out.push_str(&format!(
                "| {rate:.0} | serverless | {:.3} | {:.3} | {:.2} |\n",
                percentile(&lats, 50.0),
                percentile(&lats, 99.0),
                cost_per_m
            ));
        }
    }
    out.push_str(
        "\n(serverless costs scale with use and stay flat per message, but cold starts\n\
         surface in the p99 whenever arrival bursts outrun the warm pool; the pilot's\n\
         held VM gives flat latency at a fixed cost that only amortizes at high\n\
         rates — the capacity-vs-elasticity trade-off of [73])\n",
    );
    common::emit(out)
}
