//! Experiment implementations. See the crate docs for the index.

pub mod ab;
pub mod common;
pub mod f5;
pub mod fb;
pub mod io_dy;
pub mod ks;
pub mod pd;
pub mod ph;
pub mod pj;
pub mod pm;
pub mod ps;
pub mod qp;
pub mod rb;
pub mod sc;
pub mod st;
pub mod t1;

/// Run every experiment in index order; returns the concatenated reports.
pub fn run_all(quick: bool) -> String {
    let mut out = String::new();
    for (name, f) in registry() {
        let banner = format!("\n================ {name} ================\n");
        println!("{banner}");
        out.push_str(&banner);
        out.push_str(&f(quick));
    }
    out
}

/// An experiment entry: id plus its runner.
pub type ExperimentEntry = (&'static str, fn(bool) -> String);

/// `(id, runner)` for every experiment.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        ("T1", t1::run as fn(bool) -> String),
        ("PJ-1", pj::run_pj1),
        ("PJ-2", pj::run_pj2),
        ("PJ-3", pj::run_pj3),
        ("PJ-4", pj::run_pj4),
        ("PD-1", pd::run_pd1),
        ("PD-2", pd::run_pd2),
        ("PH-1", ph::run_ph1),
        ("PH-2", ph::run_ph2),
        ("PM-1", pm::run_pm1),
        ("KS-1", ks::run_ks1),
        ("PS-1", ps::run_ps1),
        ("PS-2", ps::run_ps2),
        ("PS-3", ps::run_ps3),
        ("ST-1", st::run_st1),
        ("QP-1", qp::run_qp1),
        ("QP-2", qp::run_qp2),
        ("IO-1", io_dy::run_io1),
        ("DY-1", io_dy::run_dy1),
        ("RB-1", rb::run_rb1),
        ("RB-2", rb::run_rb2),
        ("SC-1", sc::run_sc1),
        ("FB-1", fb::run_fb1),
        ("DF-1", ab::run_df1),
        ("AB-1", ab::run_ab1),
        ("AB-2", ab::run_ab2),
        ("F5", f5::run),
    ]
}
