//! RB-1: reliability under failure — failure rate × retry policy sweep.
//!
//! Part one sweeps the injected kernel-failure probability against three
//! retry policies (fail-fast, fixed, capped-exponential with jitter) on the
//! simulated backend and reports makespan, completion, and the reliability
//! counters from `ReliabilityStats`. Part two injects pilot crashes and
//! compares recovery-by-late-rebinding (failed units re-enter the queue and
//! bind to surviving pilots) against fail-fast on the same crash schedule.

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::retry::{FaultPlan, RetryPolicy};
use pilot_core::sim::SimPilotSystem;
use pilot_core::state::UnitState;
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_sim::{SimDuration, SimTime};

fn policy(idx: usize) -> (&'static str, RetryPolicy) {
    match idx {
        0 => ("fail-fast", RetryPolicy::none()),
        1 => ("fixed(4, 5s)", RetryPolicy::fixed(4, 5.0)),
        _ => (
            "exp(6, 2s x2, cap 60s)",
            RetryPolicy::exponential(6, 2.0, 2.0, 60.0).with_jitter(0.25),
        ),
    }
}

/// RB-1: failure rates × retry policies on the simulated backend.
pub fn run_rb1(quick: bool) -> String {
    let tasks = if quick { 48 } else { 160 };
    let reps = if quick { 1 } else { 3 };
    let spec = ExperimentSpec::new(
        "RB-1 failure rate x retry policy",
        vec![
            Factor::new("fail_p", &[0.0, 0.1, 0.3, 0.5]),
            Factor::new("policy", &[0.0, 1.0, 2.0]),
        ],
        reps,
        0x4b01,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let fail_p = trial.param("fail_p");
        let (_, retry) = policy(trial.param_usize("policy"));
        let mut sys = SimPilotSystem::new(trial.seed);
        sys.disable_trace();
        sys.set_fault_plan(FaultPlan::none().with_unit_failures(fail_p));
        let site = sys.add_resource(common::quiet_hpc("hpc", 64));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(32, SimDuration::from_hours(12)),
        );
        for i in 0..tasks {
            sys.submit_unit_fixed(
                SimTime::from_secs(i),
                UnitDescription::new(1).with_retry(retry),
                60.0,
            );
        }
        let report = sys.run(SimTime::from_hours(24));
        let mut metrics = vec![
            ("makespan_s".to_string(), report.makespan()),
            ("done".to_string(), report.count(UnitState::Done) as f64),
            ("failed".to_string(), report.count(UnitState::Failed) as f64),
        ];
        metrics.extend(report.reliability.as_metrics());
        table.push(trial, metrics);
    }

    let mut out =
        format!("### RB-1 reliability: failure rate x retry policy ({tasks} units, 60 s each)\n\n");
    out.push_str("policy 0 = fail-fast, 1 = fixed(4 attempts, 5 s), 2 = exponential(6 attempts, 2 s base, x2, 60 s cap, 25% jitter)\n\n");
    for metric in ["done", "failed", "makespan_s", "attempts", "wasted_work_s"] {
        out.push_str(&format!("**{metric}**\n\n"));
        for (config, summary) in table.aggregate(metric) {
            out.push_str(&format!("- {config}: {:.1}\n", summary.mean));
        }
        out.push('\n');
    }
    out.push_str(&rb1_crash_recovery(quick));
    out.push_str(
        "\nRetry policies hold completion at 100% as the failure rate climbs; \
         fail-fast loses units in proportion to the rate. Makespan degrades \
         gracefully (wasted work is re-run on the same pilot), and under \
         pilot crashes late re-binding recovers units that fail-fast loses \
         outright.\n",
    );
    common::emit(out)
}

/// Part two: pilot crashes — late re-binding vs. fail-fast on the same
/// seed-deterministic crash schedule.
fn rb1_crash_recovery(quick: bool) -> String {
    let tasks = if quick { 32 } else { 96 };
    let mut out = String::from(
        "**pilot crashes (MTBF 600 s, staggered pilots, same crash schedule)**\n\n\
         | policy | done | failed | pilot crashes | requeues + rebinds | makespan (s) |\n\
         |---|---|---|---|---|---|\n",
    );
    for pol in [0usize, 1] {
        let (name, retry) = policy(pol);
        let mut sys = SimPilotSystem::new(0x4b02);
        sys.disable_trace();
        sys.set_fault_plan(FaultPlan::none().with_pilot_crashes(600.0));
        let site = sys.add_resource(common::quiet_hpc("hpc", 64));
        // Staggered pilots: early ones absorb the crash schedule, late ones
        // supply the capacity retried units re-bind to.
        for k in 0..(tasks / 4).max(8) {
            sys.submit_pilot(
                SimTime::from_secs(k * 240),
                site,
                PilotDescription::new(8, SimDuration::from_hours(12)),
            );
        }
        for i in 0..tasks {
            sys.submit_unit_fixed(
                SimTime::from_secs(i * 5),
                UnitDescription::new(1).with_retry(retry),
                240.0,
            );
        }
        let report = sys.run(SimTime::from_hours(24));
        let rel = &report.reliability;
        out.push_str(&format!(
            "| {name} | {}/{tasks} | {} | {} | {} | {:.0} |\n",
            report.count(UnitState::Done),
            report.count(UnitState::Failed),
            rel.pilot_crashes,
            rel.requeues + rel.rebinds,
            report.makespan(),
        ));
    }
    out
}
