//! RB-1: reliability under failure — failure rate × retry policy sweep.
//!
//! Part one sweeps the injected kernel-failure probability against three
//! retry policies (fail-fast, fixed, capped-exponential with jitter) on the
//! simulated backend and reports makespan, completion, and the reliability
//! counters from `ReliabilityStats`. Part two injects pilot crashes and
//! compares recovery-by-late-rebinding (failed units re-enter the queue and
//! bind to surviving pilots) against fail-fast on the same crash schedule.
//!
//! RB-2: data-plane reliability — a broker node of a 3-node replicated
//! cluster is killed mid-stream at the full ST-1 produce rate, a follower is
//! promoted under a new epoch (the deposed leader's appends are fenced), the
//! victim restarts from its write-ahead log and catches up, and end-to-end
//! delivery is verified exactly-once: zero lost, zero duplicated.

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::retry::{FaultPlan, RetryPolicy};
use pilot_core::sim::SimPilotSystem;
use pilot_core::state::UnitState;
use pilot_core::WallClock;
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_sim::{SimDuration, SimTime};
use pilot_streaming::wal::TempDir;
use pilot_streaming::{
    BrokerError, FsyncPolicy, KillSchedule, Message, ReplicatedBroker, Retention, WalConfig,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn policy(idx: usize) -> (&'static str, RetryPolicy) {
    match idx {
        0 => ("fail-fast", RetryPolicy::none()),
        1 => ("fixed(4, 5s)", RetryPolicy::fixed(4, 5.0)),
        _ => (
            "exp(6, 2s x2, cap 60s)",
            RetryPolicy::exponential(6, 2.0, 2.0, 60.0).with_jitter(0.25),
        ),
    }
}

/// RB-1: failure rates × retry policies on the simulated backend.
pub fn run_rb1(quick: bool) -> String {
    let tasks = if quick { 48 } else { 160 };
    let reps = if quick { 1 } else { 3 };
    let spec = ExperimentSpec::new(
        "RB-1 failure rate x retry policy",
        vec![
            Factor::new("fail_p", &[0.0, 0.1, 0.3, 0.5]),
            Factor::new("policy", &[0.0, 1.0, 2.0]),
        ],
        reps,
        0x4b01,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let fail_p = trial.param("fail_p");
        let (_, retry) = policy(trial.param_usize("policy"));
        let mut sys = SimPilotSystem::new(trial.seed);
        sys.disable_trace();
        sys.set_fault_plan(FaultPlan::none().with_unit_failures(fail_p));
        let site = sys.add_resource(common::quiet_hpc("hpc", 64));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(32, SimDuration::from_hours(12)),
        );
        for i in 0..tasks {
            sys.submit_unit_fixed(
                SimTime::from_secs(i),
                UnitDescription::new(1).with_retry(retry),
                60.0,
            );
        }
        let report = sys.run(SimTime::from_hours(24));
        let mut metrics = vec![
            ("makespan_s".to_string(), report.makespan()),
            ("done".to_string(), report.count(UnitState::Done) as f64),
            ("failed".to_string(), report.count(UnitState::Failed) as f64),
        ];
        metrics.extend(report.reliability.as_metrics());
        table.push(trial, metrics);
    }

    let mut out =
        format!("### RB-1 reliability: failure rate x retry policy ({tasks} units, 60 s each)\n\n");
    out.push_str("policy 0 = fail-fast, 1 = fixed(4 attempts, 5 s), 2 = exponential(6 attempts, 2 s base, x2, 60 s cap, 25% jitter)\n\n");
    for metric in ["done", "failed", "makespan_s", "attempts", "wasted_work_s"] {
        out.push_str(&format!("**{metric}**\n\n"));
        for (config, summary) in table.aggregate(metric) {
            out.push_str(&format!("- {config}: {:.1}\n", summary.mean));
        }
        out.push('\n');
    }
    out.push_str(&rb1_crash_recovery(quick));
    out.push_str(
        "\nRetry policies hold completion at 100% as the failure rate climbs; \
         fail-fast loses units in proportion to the rate. Makespan degrades \
         gracefully (wasted work is re-run on the same pilot), and under \
         pilot crashes late re-binding recovers units that fail-fast loses \
         outright.\n",
    );
    common::emit(out)
}

/// Part two: pilot crashes — late re-binding vs. fail-fast on the same
/// seed-deterministic crash schedule.
fn rb1_crash_recovery(quick: bool) -> String {
    let tasks = if quick { 32 } else { 96 };
    let mut out = String::from(
        "**pilot crashes (MTBF 600 s, staggered pilots, same crash schedule)**\n\n\
         | policy | done | failed | pilot crashes | requeues + rebinds | makespan (s) |\n\
         |---|---|---|---|---|---|\n",
    );
    for pol in [0usize, 1] {
        let (name, retry) = policy(pol);
        let mut sys = SimPilotSystem::new(0x4b02);
        sys.disable_trace();
        sys.set_fault_plan(FaultPlan::none().with_pilot_crashes(600.0));
        let site = sys.add_resource(common::quiet_hpc("hpc", 64));
        // Staggered pilots: early ones absorb the crash schedule, late ones
        // supply the capacity retried units re-bind to.
        for k in 0..(tasks / 4).max(8) {
            sys.submit_pilot(
                SimTime::from_secs(k * 240),
                site,
                PilotDescription::new(8, SimDuration::from_hours(12)),
            );
        }
        for i in 0..tasks {
            sys.submit_unit_fixed(
                SimTime::from_secs(i * 5),
                UnitDescription::new(1).with_retry(retry),
                240.0,
            );
        }
        let report = sys.run(SimTime::from_hours(24));
        let rel = &report.reliability;
        out.push_str(&format!(
            "| {name} | {}/{tasks} | {} | {} | {} | {:.0} |\n",
            report.count(UnitState::Done),
            report.count(UnitState::Failed),
            rel.pilot_crashes,
            rel.requeues + rel.rebinds,
            report.makespan(),
        ));
    }
    out
}

fn rb2_encode(producer: u64, seq: u64, payload_bytes: usize) -> Arc<Vec<u8>> {
    let mut b = vec![0u8; payload_bytes.max(16)];
    b[..8].copy_from_slice(&producer.to_le_bytes());
    b[8..16].copy_from_slice(&seq.to_le_bytes());
    Arc::new(b)
}

fn rb2_decode(m: &Message) -> (u64, u64) {
    let mut p = [0u8; 8];
    let mut s = [0u8; 8];
    p.copy_from_slice(&m.payload[..8]);
    s.copy_from_slice(&m.payload[8..16]);
    (u64::from_le_bytes(p), u64::from_le_bytes(s))
}

/// RB-2: kill a broker node of a replicated 3-node cluster mid-stream at the
/// full ST-1 produce rate; verify epoch-fenced failover, WAL recovery with
/// replica catch-up, and exactly-once end-to-end delivery.
pub fn run_rb2(quick: bool) -> String {
    const NODES: usize = 3;
    const PARTITIONS: usize = 4;
    let producers: u64 = 2;
    let consumers: usize = 2;
    let per_producer: u64 = if quick { 10_000 } else { 50_000 };
    let total = producers * per_producer;
    let batch: u64 = 64;
    // Quick mode (the CI smoke) keeps fsync off; the full run exercises the
    // periodic-fsync path at a cadence that stays off the produce hot path.
    let fsync = if quick {
        FsyncPolicy::Never
    } else {
        FsyncPolicy::EveryN(256)
    };

    let dirs: Vec<TempDir> = (0..NODES)
        .map(|i| {
            TempDir::new(&format!("rb2-node-{i}"))
                // lint: allow(panic, reason = "the experiment owns its tempdirs; failing to create one is an environment error worth aborting on")
                .expect("tempdir for node WAL")
        })
        .collect();
    let cfgs: Vec<WalConfig> = dirs
        .iter()
        .map(|d| WalConfig::new(d.path()).with_fsync(fsync))
        .collect();
    let cluster = Arc::new(
        ReplicatedBroker::open(&cfgs)
            // lint: allow(panic, reason = "the WAL directories were just created empty; open cannot find torn state")
            .expect("fresh cluster"),
    );
    cluster
        .create_topic("rb2", PARTITIONS, Retention::Count(usize::MAX / 2))
        // lint: allow(panic, reason = "the cluster is fresh, the topic cannot exist")
        .expect("fresh topic");
    for c in 0..consumers {
        cluster
            .join_group("rb2-group", "rb2", &format!("c{c}"))
            // lint: allow(panic, reason = "the topic was created on the lines above")
            .expect("topic exists");
    }

    // The kill is drawn from the fault plan through the reserved BROKER_KILL
    // stream: same seed, same victim, same schedule — the failure replays.
    let plan = FaultPlan::none().with_broker_node_kills(1.0);
    let schedule = KillSchedule::from_plan(&plan, 0x4b20, NODES);
    let (victim, kill_draw_s) = schedule
        .first()
        // lint: allow(panic, reason = "the plan sets a broker-node MTBF, so every node has a drawn kill time")
        .expect("plan schedules kills");
    // Leaders are assigned round-robin over the nodes, so partition `victim`
    // is led by the victim — its pre-kill lease is guaranteed to be fenced
    // after the failover.
    let stale_lease = cluster
        .lease("rb2", victim)
        // lint: allow(panic, reason = "the victim index is below the partition count, so the partition exists")
        .expect("victim-led partition lease");
    assert_eq!(stale_lease.node, victim, "round-robin leader assignment");

    let produced = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let clock = WallClock::start();

    // ---- producers: pilot units at the ST-1 full-speed batched rate -------
    let svc = common::thread_service(
        producers as u32,
        Box::new(pilot_core::scheduler::FirstFitScheduler),
    );
    let units: Vec<_> = (0..producers)
        .map(|p| {
            let cluster = Arc::clone(&cluster);
            let produced = Arc::clone(&produced);
            svc.submit_unit(
                UnitDescription::new(1).tagged("rb2-producer"),
                pilot_core::thread::kernel_fn(move |_| {
                    let mut seq = 0u64;
                    while seq < per_producer {
                        let chunk = batch.min(per_producer - seq);
                        let records: Vec<_> = (seq..seq + chunk)
                            .map(|s| (None, rb2_encode(p, s, 256)))
                            .collect();
                        cluster
                            .produce_batch("rb2", records)
                            // lint: allow(panic, reason = "replicated appends only fail when every node is dead; RB-2 kills one of three")
                            .expect("a replica is always alive");
                        seq += chunk;
                        produced.fetch_add(chunk, Ordering::AcqRel);
                    }
                    Ok(pilot_core::thread::TaskOutput::of(seq))
                }),
            )
        })
        .collect();

    // ---- consumers: drain through the cluster, surviving the failover -----
    let consumer_handles: Vec<_> = (0..consumers)
        .map(|c| {
            let cluster = Arc::clone(&cluster);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut sub = cluster
                    .subscribe("rb2-group", &format!("c{c}"))
                    // lint: allow(panic, reason = "every consumer joined the group before any thread started")
                    .expect("member of group");
                let mut buf = Vec::with_capacity(256);
                let mut got: Vec<(u64, u64)> = Vec::new();
                loop {
                    let was_done = done.load(Ordering::Acquire);
                    let seq = cluster.data_seq();
                    let n = cluster
                        .poll_into(&mut sub, 256, &mut buf)
                        // lint: allow(panic, reason = "cluster polls re-resolve onto an alive node; only an all-dead cluster errors")
                        .expect("a replica is always alive");
                    if n == 0 {
                        if was_done {
                            break;
                        }
                        cluster.wait_for_data(seq, Duration::from_millis(5));
                        continue;
                    }
                    got.extend(buf.iter().map(rb2_decode));
                }
                got
            })
        })
        .collect();

    // ---- the kill: mid-stream, guaranteed ---------------------------------
    while produced.load(Ordering::Acquire) < total / 2 {
        std::thread::sleep(Duration::from_micros(200));
    }
    let produced_at_kill = produced.load(Ordering::Acquire);
    let failovers = cluster
        .kill_node(victim)
        // lint: allow(panic, reason = "the victim index comes from the schedule over the cluster's own node count")
        .expect("victim exists");
    // The deposed leader's lease must now be fenced — stale appends bounce
    // without touching any replica.
    let fence = cluster.append_with_lease(&stale_lease, &[(None, rb2_encode(u64::MAX, 0, 16))]);
    let fenced_as_expected = matches!(fence, Err(BrokerError::FencedEpoch { .. }));

    for u in units {
        // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
        svc.wait_unit(u).expect("unit issued by this service");
    }
    let produce_s = clock.elapsed().as_secs_f64();
    svc.shutdown();
    done.store(true, Ordering::Release);
    cluster.wake_all();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    for h in consumer_handles {
        seen.extend(
            h.join()
                // lint: allow(panic, reason = "consumer threads only panic if an invariant already failed; propagate it")
                .expect("consumer thread"),
        );
    }
    let elapsed_s = clock.elapsed().as_secs_f64();

    // ---- recovery: the victim replays its WAL and catches up --------------
    // The recovery-time column ROADMAP item 1 left open: wall time of the
    // whole restart_node call — WAL replay plus record-for-record catch-up
    // from a live replica — reported alongside what the replay found.
    let restart_t0 = std::time::Instant::now();
    let recovery = cluster
        .restart_node(victim)
        // lint: allow(panic, reason = "two replicas are alive to catch up from; restart only errors with no live source")
        .expect("victim restarts");
    let recovery_s = restart_t0.elapsed().as_secs_f64();
    let restarted = cluster
        .node_broker(victim)
        // lint: allow(panic, reason = "the victim index is within the cluster's node count")
        .expect("victim broker");
    let survivor_idx = (0..NODES)
        .find(|&n| n != victim)
        // lint: allow(panic, reason = "a 3-node cluster always has a non-victim index")
        .expect("a survivor exists");
    let survivor = cluster
        .node_broker(survivor_idx)
        // lint: allow(panic, reason = "the survivor index is within the cluster's node count")
        .expect("survivor broker");
    let mut caught_up = true;
    for part in 0..PARTITIONS {
        let image = |b: &pilot_streaming::Broker| -> Vec<(u64, u64, u64)> {
            b.fetch("rb2", part, 0, usize::MAX)
                // lint: allow(panic, reason = "the topic and partition exist on every node of the cluster")
                .expect("partition exists")
                .iter()
                .map(|m| {
                    let (p, s) = rb2_decode(m);
                    (m.offset, p, s)
                })
                .collect()
        };
        if image(&restarted) != image(&survivor) {
            caught_up = false;
        }
    }

    // ---- verdicts ----------------------------------------------------------
    let unique: HashSet<(u64, u64)> = seen.iter().copied().collect();
    let duplicated = seen.len() as u64 - unique.len() as u64;
    let lost = total - unique.len() as u64;
    let stats = cluster.stats();
    let seen_len = seen.len();

    let epoch_after = cluster
        .lease("rb2", victim)
        // lint: allow(panic, reason = "the victim index is below the partition count, so the partition exists")
        .expect("victim-led partition lease")
        .epoch;
    let out = format!(
        "### RB-2 data-plane reliability: node kill at full produce rate ({total} msgs, 256 B, {NODES} nodes x {PARTITIONS} partitions)\n\n\
         | metric | value |\n|---|---|\n\
         | scheduled victim (seed 0x4b20 draw) | node {victim} at {kill_draw_s:.2} s |\n\
         | produced at kill | {produced_at_kill}/{total} |\n\
         | leader failovers on kill | {failovers} |\n\
         | victim-led partition epoch after failover | {epoch_after} (lease was epoch {}) |\n\
         | stale-leader append fenced | {fenced_as_expected} |\n\
         | delivered | {seen_len} |\n\
         | duplicated | {duplicated} |\n\
         | lost | {lost} |\n\
         | WAL replay on restart: records | {} |\n\
         | WAL replay on restart: truncated bytes | {} |\n\
         | recovery time (WAL replay + catch-up) | {recovery_s:.3} s |\n\
         | victim caught up record-for-record | {caught_up} |\n\
         | cluster kills / failovers / fenced | {} / {} / {} |\n\
         | produce throughput | {:.0} msg/s |\n\
         | end-to-end elapsed | {elapsed_s:.2} s |\n",
        stale_lease.epoch,
        recovery.records,
        recovery.truncated_bytes,
        stats.node_kills,
        stats.leader_failovers,
        stats.fenced_appends,
        total as f64 / produce_s.max(1e-9),
    );

    // Exactly-once is the acceptance bar, not a soft metric.
    assert_eq!(lost, 0, "records lost across the node kill");
    assert_eq!(duplicated, 0, "records redelivered across the node kill");
    assert!(produced_at_kill < total, "the kill must land mid-stream");
    assert!(failovers >= 1, "the victim led at least one partition");
    assert!(fenced_as_expected, "epoch fencing did not hold");
    assert!(caught_up, "restarted node diverged from the survivors");
    common::emit(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn rb2_quick_holds_exactly_once_across_node_kill() {
        // The acceptance bars (zero lost, zero duplicated, fencing, catch-up)
        // are asserted inside run_rb2; surviving the quick run is the
        // regression check CI runs.
        let report = super::run_rb2(true);
        assert!(report.contains("| lost | 0 |"));
        assert!(report.contains("| duplicated | 0 |"));
        assert!(report.contains("stale-leader append fenced | true"));
    }
}
