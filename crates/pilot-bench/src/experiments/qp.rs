//! QP-1: read-plane QPS — materialized projections vs lock-path reads under
//! a full write storm, with staleness percentiles and an exactly-once
//! restart drill.
//!
//! The service runs with a `BrokerSink` wired to a projection topic; a
//! `Materializer` folds the topic on its own thread and publishes snapshots;
//! reader threads then measure four paths while a feeder keeps the write
//! side saturated (ST-1-style sustained submissions):
//!
//! - `dash_lock_qps` — the dashboard computed the pre-read-plane way: a
//!   `status_snapshot()` (one global lock acquisition + full clone) folded
//!   into counts, per query.
//! - `dash_proj_qps` — the same numbers from `QueryService::dashboard()`:
//!   one atomic snapshot load, all aggregates precomputed.
//! - `point_lock_qps` / `point_proj_qps` — single-unit state lookups via
//!   the registry mutex vs the projection snapshot.
//!
//! Floors asserted per run: projections ≥ 10× the lock path on the
//! dashboard query, p99 staleness (event append → applied) under 1 s, and
//! the restart drill — resume from the last *published* snapshot after the
//! run — rebuilds tables bit-identical to a from-scratch fold (0 lost, 0
//! duplicated events).

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_core::{UnitId, WallClock};
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_query::{BrokerSink, Materializer};
use pilot_sim::SimDuration;
use pilot_streaming::Broker;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Run `f` in `readers` threads for `dur_s` seconds; returns aggregate QPS.
/// The closure gets a per-thread scratch counter (rotating read index /
/// sink for observed values, kept live via `black_box`).
fn qps<F: Fn(&mut u64) + Sync>(readers: usize, dur_s: f64, f: &F) -> f64 {
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..readers {
            s.spawn(|| {
                let clock = WallClock::start();
                let mut scratch = 0u64;
                let mut iters = 0u64;
                while clock.elapsed().as_secs_f64() < dur_s {
                    f(&mut scratch);
                    iters += 1;
                }
                std::hint::black_box(scratch);
                total.fetch_add(iters, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed) as f64 / dur_s
}

/// QP-1: projection read plane vs lock-path reads under sustained writes.
pub fn run_qp1(quick: bool) -> String {
    let seed_units: usize = if quick { 300 } else { 1500 };
    let phase_s: f64 = if quick { 0.12 } else { 0.4 };
    let spec = ExperimentSpec::new(
        "QP-1 read plane: projection vs lock-path QPS under write load",
        vec![Factor::new("readers", &[1.0, 2.0, 4.0])],
        if quick { 1 } else { 3 },
        0x5150,
    );
    let mut table = ResultTable::new(&spec.name);
    let mut dash_ratios = Vec::new();

    for trial in spec.trials() {
        let readers = trial.param_usize("readers");
        let broker = Arc::new(Broker::new());
        let topic = format!("qp-{}-{}", trial.config_key(), trial.rep);
        let sink = BrokerSink::create(Arc::clone(&broker), &topic, 4)
            // lint: allow(panic, reason = "the topic name embeds the trial key and rep, so it is fresh on a fresh broker")
            .expect("fresh topic per trial");
        let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
        let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX).labeled("qp"));
        assert!(svc.wait_pilot_active(p), "pilot must activate");

        // Seed a populated registry/projection: point reads and dashboard
        // folds must scan something representative, not an empty table.
        let ids: Vec<UnitId> = (0..seed_units)
            .map(|_| {
                svc.submit_unit(
                    UnitDescription::new(1).tagged("qp-seed"),
                    kernel_fn(|_| Ok(TaskOutput::of(0u64))),
                )
            })
            .collect();
        for &u in &ids {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service")
            svc.wait_unit(u).expect("unit issued by this service");
        }

        let mut m = Materializer::bootstrap(Arc::clone(&broker), &topic)
            // lint: allow(panic, reason = "the topic was created by BrokerSink::create above")
            .expect("projection topic exists");
        m.catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("seed drain");
        let qs = m.service();

        let stop_writes = AtomicBool::new(false);
        let stop_mat = AtomicBool::new(false);
        let writes = AtomicU64::new(0);
        let mut dash_lock = 0.0;
        let mut dash_proj = 0.0;
        let mut point_lock = 0.0;
        let mut point_proj = 0.0;

        let m = std::thread::scope(|s| {
            let stop_mat_ref = &stop_mat;
            let materializer = s.spawn(move || {
                let mut m = m;
                m.run_until_stopped(stop_mat_ref);
                m
            });
            // ST-1-style write storm: sustained unit submissions through the
            // sink-wired service for the whole measurement window.
            let feeder = s.spawn(|| {
                while !stop_writes.load(Ordering::Acquire) {
                    for _ in 0..16 {
                        svc.submit_unit(
                            UnitDescription::new(1).tagged("qp-load"),
                            kernel_fn(|_| Ok(TaskOutput::of(1u64))),
                        );
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });

            dash_lock = qps(readers, phase_s, &|scratch: &mut u64| {
                // The pre-read-plane dashboard: full snapshot under the
                // registry lock, then fold.
                let snap = svc.status_snapshot();
                let done = snap
                    .units
                    .iter()
                    .filter(|(_, s, _)| *s == UnitState::Done)
                    .count() as u64;
                *scratch = scratch.wrapping_add(done + snap.open_units as u64);
            });
            dash_proj = qps(readers, phase_s, &|scratch: &mut u64| {
                let d = qs.dashboard();
                *scratch = scratch.wrapping_add(d.units_in(UnitState::Done) + d.open_units());
            });
            point_lock = qps(readers, phase_s, &|scratch: &mut u64| {
                let id = ids[*scratch as usize % ids.len()];
                *scratch = scratch.wrapping_add(1);
                if svc.unit_state(id) == Some(UnitState::Done) {
                    *scratch = scratch.wrapping_add(1);
                }
            });
            point_proj = qps(readers, phase_s, &|scratch: &mut u64| {
                let id = ids[*scratch as usize % ids.len()];
                *scratch = scratch.wrapping_add(1);
                if qs.unit_state(id) == Some(UnitState::Done) {
                    *scratch = scratch.wrapping_add(1);
                }
            });

            stop_writes.store(true, Ordering::Release);
            // lint: allow(panic, reason = "the feeder thread only submits units and cannot panic")
            feeder.join().expect("feeder thread");
            stop_mat.store(true, Ordering::Release);
            broker.wake_all(); // wake the parked materializer immediately
                               // lint: allow(panic, reason = "run_until_stopped returns after the stop flag is set")
            materializer.join().expect("materializer thread")
        });

        // Staleness over the storm: event append -> applied-to-projection.
        let stale_p50_ms = qs.staleness(0.5).unwrap_or(0.0) * 1e3;
        let stale_p99_ms = qs.staleness(0.99).unwrap_or(0.0) * 1e3;
        assert!(
            stale_p99_ms < 1_000.0,
            "p99 staleness must stay bounded under load, got {stale_p99_ms:.1} ms"
        );

        // Shutdown cancels the backlog (more events), then the restart
        // drill: resume from the last *published* snapshot and drain; a
        // from-scratch fold of the full topic must agree bit-for-bit.
        svc.shutdown();
        let mut m = m;
        m.catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("final drain");
        let published = qs.snapshot();
        let mut resumed = Materializer::resume(Arc::clone(&broker), &topic, &published)
            // lint: allow(panic, reason = "the topic still exists; resume only fails on a missing topic")
            .expect("resume from published snapshot");
        resumed
            .catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("resumed drain");
        let mut fresh = Materializer::bootstrap(Arc::clone(&broker), &topic)
            // lint: allow(panic, reason = "the topic still exists")
            .expect("bootstrap from offset 0");
        fresh
            .catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("fresh drain");
        assert_eq!(
            resumed.tables().events_applied,
            fresh.tables().events_applied,
            "restart must lose and duplicate nothing"
        );
        assert_eq!(
            resumed.tables().digest(),
            fresh.tables().digest(),
            "resumed projection must be bit-identical to a from-scratch fold"
        );
        assert_eq!(resumed.events_lost(), 0);

        let dash_ratio = dash_proj / dash_lock.max(1e-9);
        dash_ratios.push(dash_ratio);
        table.push(
            trial,
            vec![
                ("dash_lock_qps".into(), dash_lock),
                ("dash_proj_qps".into(), dash_proj),
                ("point_lock_qps".into(), point_lock),
                ("point_proj_qps".into(), point_proj),
                ("stale_p50_ms".into(), stale_p50_ms),
                ("stale_p99_ms".into(), stale_p99_ms),
                (
                    "writes_s".into(),
                    writes.load(Ordering::Relaxed) as f64 / (4.0 * phase_s),
                ),
            ],
        );
    }

    let mean_ratio = dash_ratios.iter().sum::<f64>() / dash_ratios.len().max(1) as f64;
    assert!(
        mean_ratio >= 10.0,
        "projections must sustain >= 10x the lock-path dashboard QPS, got {mean_ratio:.1}x"
    );

    let mut out = table.to_markdown();
    out.push_str(&format!(
        "\nprojection dashboard over lock-path dashboard: {mean_ratio:.0}× (floor 10×)\n\
         restart drill: resume-from-snapshot == from-scratch fold (digest + event count) on every trial\n"
    ));
    common::emit(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn qp1_quick_holds_speedup_staleness_and_restart_floors() {
        // The floors are asserted inside run_qp1; surviving the call in
        // quick mode is the regression check CI runs.
        let report = super::run_qp1(true);
        assert!(report.contains("dash_proj_qps"));
        assert!(report.contains("stale_p99_ms"));
    }
}
