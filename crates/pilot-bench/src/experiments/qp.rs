//! QP-1: read-plane QPS — materialized projections vs lock-path reads under
//! a full write storm, with staleness percentiles and an exactly-once
//! restart drill.
//!
//! The service runs with a `BrokerSink` wired to a projection topic; a
//! `Materializer` folds the topic on its own thread and publishes snapshots;
//! reader threads then measure four paths while a feeder keeps the write
//! side saturated (ST-1-style sustained submissions):
//!
//! - `dash_lock_qps` — the dashboard computed the pre-read-plane way: a
//!   `status_snapshot()` (one global lock acquisition + full clone) folded
//!   into counts, per query.
//! - `dash_proj_qps` — the same numbers from `QueryService::dashboard()`:
//!   one atomic snapshot load, all aggregates precomputed.
//! - `point_lock_qps` / `point_proj_qps` — single-unit state lookups via
//!   the registry mutex vs the projection snapshot.
//!
//! Floors asserted per run: projections ≥ 10× the lock path on the
//! dashboard query, p99 staleness (event append → applied) under 1 s, and
//! the restart drill — resume from the last *published* snapshot after the
//! run — rebuilds tables bit-identical to a from-scratch fold (0 lost, 0
//! duplicated events).

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::events::ProjEvent;
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::state::{PilotState, UnitState};
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_core::{PilotId, UnitId, WallClock};
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_query::{publish_events, BrokerSink, Materializer, ShardedMaterializer, StalenessWindow};
use pilot_sim::SimDuration;
use pilot_streaming::{Broker, Retention};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Run `f` in `readers` threads for `dur_s` seconds; returns aggregate QPS.
/// The closure gets a per-thread scratch counter (rotating read index /
/// sink for observed values, kept live via `black_box`).
fn qps<F: Fn(&mut u64) + Sync>(readers: usize, dur_s: f64, f: &F) -> f64 {
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..readers {
            s.spawn(|| {
                let clock = WallClock::start();
                let mut scratch = 0u64;
                let mut iters = 0u64;
                while clock.elapsed().as_secs_f64() < dur_s {
                    f(&mut scratch);
                    iters += 1;
                }
                std::hint::black_box(scratch);
                total.fetch_add(iters, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed) as f64 / dur_s
}

/// QP-1: projection read plane vs lock-path reads under sustained writes.
pub fn run_qp1(quick: bool) -> String {
    let seed_units: usize = if quick { 300 } else { 1500 };
    let phase_s: f64 = if quick { 0.12 } else { 0.4 };
    let spec = ExperimentSpec::new(
        "QP-1 read plane: projection vs lock-path QPS under write load",
        vec![Factor::new("readers", &[1.0, 2.0, 4.0])],
        if quick { 1 } else { 3 },
        0x5150,
    );
    let mut table = ResultTable::new(&spec.name);
    let mut dash_ratios = Vec::new();

    for trial in spec.trials() {
        let readers = trial.param_usize("readers");
        let broker = Arc::new(Broker::new());
        let topic = format!("qp-{}-{}", trial.config_key(), trial.rep);
        let sink = BrokerSink::create(Arc::clone(&broker), &topic, 4)
            // lint: allow(panic, reason = "the topic name embeds the trial key and rep, so it is fresh on a fresh broker")
            .expect("fresh topic per trial");
        let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
        let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX).labeled("qp"));
        assert!(svc.wait_pilot_active(p), "pilot must activate");

        // Seed a populated registry/projection: point reads and dashboard
        // folds must scan something representative, not an empty table.
        let ids: Vec<UnitId> = (0..seed_units)
            .map(|_| {
                svc.submit_unit(
                    UnitDescription::new(1).tagged("qp-seed"),
                    kernel_fn(|_| Ok(TaskOutput::of(0u64))),
                )
            })
            .collect();
        for &u in &ids {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service")
            svc.wait_unit(u).expect("unit issued by this service");
        }

        let mut m = Materializer::bootstrap(Arc::clone(&broker), &topic)
            // lint: allow(panic, reason = "the topic was created by BrokerSink::create above")
            .expect("projection topic exists");
        m.catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("seed drain");
        let qs = m.service();

        let stop_writes = AtomicBool::new(false);
        let stop_mat = AtomicBool::new(false);
        let writes = AtomicU64::new(0);
        let mut dash_lock = 0.0;
        let mut dash_proj = 0.0;
        let mut point_lock = 0.0;
        let mut point_proj = 0.0;

        let m = std::thread::scope(|s| {
            let stop_mat_ref = &stop_mat;
            let materializer = s.spawn(move || {
                let mut m = m;
                m.run_until_stopped(stop_mat_ref);
                m
            });
            // ST-1-style write storm: sustained unit submissions through the
            // sink-wired service for the whole measurement window.
            let feeder = s.spawn(|| {
                while !stop_writes.load(Ordering::Acquire) {
                    for _ in 0..16 {
                        svc.submit_unit(
                            UnitDescription::new(1).tagged("qp-load"),
                            kernel_fn(|_| Ok(TaskOutput::of(1u64))),
                        );
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });

            dash_lock = qps(readers, phase_s, &|scratch: &mut u64| {
                // The pre-read-plane dashboard: full snapshot under the
                // registry lock, then fold.
                let snap = svc.status_snapshot();
                let done = snap
                    .units
                    .iter()
                    .filter(|(_, s, _)| *s == UnitState::Done)
                    .count() as u64;
                *scratch = scratch.wrapping_add(done + snap.open_units as u64);
            });
            dash_proj = qps(readers, phase_s, &|scratch: &mut u64| {
                let d = qs.dashboard();
                *scratch = scratch.wrapping_add(d.units_in(UnitState::Done) + d.open_units());
            });
            point_lock = qps(readers, phase_s, &|scratch: &mut u64| {
                let id = ids[*scratch as usize % ids.len()];
                *scratch = scratch.wrapping_add(1);
                if svc.unit_state(id) == Some(UnitState::Done) {
                    *scratch = scratch.wrapping_add(1);
                }
            });
            point_proj = qps(readers, phase_s, &|scratch: &mut u64| {
                let id = ids[*scratch as usize % ids.len()];
                *scratch = scratch.wrapping_add(1);
                if qs.unit_state(id) == Some(UnitState::Done) {
                    *scratch = scratch.wrapping_add(1);
                }
            });

            stop_writes.store(true, Ordering::Release);
            // lint: allow(panic, reason = "the feeder thread only submits units and cannot panic")
            feeder.join().expect("feeder thread");
            stop_mat.store(true, Ordering::Release);
            broker.wake_all(); // wake the parked materializer immediately
                               // lint: allow(panic, reason = "run_until_stopped returns after the stop flag is set")
            materializer.join().expect("materializer thread")
        });

        // Staleness over the storm: event append -> applied-to-projection.
        let stale_p50_ms = qs.staleness(0.5).unwrap_or(0.0) * 1e3;
        let stale_p99_ms = qs.staleness(0.99).unwrap_or(0.0) * 1e3;
        assert!(
            stale_p99_ms < 1_000.0,
            "p99 staleness must stay bounded under load, got {stale_p99_ms:.1} ms"
        );

        // Shutdown cancels the backlog (more events), then the restart
        // drill: resume from the last *published* snapshot and drain; a
        // from-scratch fold of the full topic must agree bit-for-bit.
        svc.shutdown();
        let mut m = m;
        m.catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("final drain");
        let published = qs.snapshot();
        let mut resumed = Materializer::resume(Arc::clone(&broker), &topic, &published)
            // lint: allow(panic, reason = "the topic still exists; resume only fails on a missing topic")
            .expect("resume from published snapshot");
        resumed
            .catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("resumed drain");
        let mut fresh = Materializer::bootstrap(Arc::clone(&broker), &topic)
            // lint: allow(panic, reason = "the topic still exists")
            .expect("bootstrap from offset 0");
        fresh
            .catch_up()
            // lint: allow(panic, reason = "broker and topic are alive for the whole trial")
            .expect("fresh drain");
        assert_eq!(
            resumed.tables().events_applied,
            fresh.tables().events_applied,
            "restart must lose and duplicate nothing"
        );
        assert_eq!(
            resumed.tables().digest(),
            fresh.tables().digest(),
            "resumed projection must be bit-identical to a from-scratch fold"
        );
        assert_eq!(resumed.events_lost(), 0);

        let dash_ratio = dash_proj / dash_lock.max(1e-9);
        dash_ratios.push(dash_ratio);
        table.push(
            trial,
            vec![
                ("dash_lock_qps".into(), dash_lock),
                ("dash_proj_qps".into(), dash_proj),
                ("point_lock_qps".into(), point_lock),
                ("point_proj_qps".into(), point_proj),
                ("stale_p50_ms".into(), stale_p50_ms),
                ("stale_p99_ms".into(), stale_p99_ms),
                (
                    "writes_s".into(),
                    writes.load(Ordering::Relaxed) as f64 / (4.0 * phase_s),
                ),
            ],
        );
    }

    let mean_ratio = dash_ratios.iter().sum::<f64>() / dash_ratios.len().max(1) as f64;
    assert!(
        mean_ratio >= 10.0,
        "projections must sustain >= 10x the lock-path dashboard QPS, got {mean_ratio:.1}x"
    );

    let mut out = table.to_markdown();
    out.push_str(&format!(
        "\nprojection dashboard over lock-path dashboard: {mean_ratio:.0}× (floor 10×)\n\
         restart drill: resume-from-snapshot == from-scratch fold (digest + event count) on every trial\n"
    ));
    common::emit(out)
}

/// Synthetic projection churn: every round flaps every pilot's capacity and
/// transitions + meters every unit, so event volume is `rounds ×` the live
/// entity count while the final table stays `units + pilots` rows.
fn churn_events(units: u64, pilots: u64, rounds: u64) -> Vec<ProjEvent> {
    let pilots = pilots.max(1);
    let mut evs = Vec::with_capacity((rounds * (units + pilots) * 2) as usize);
    for r in 0..rounds {
        let t = r as f64;
        for p in 0..pilots {
            evs.push(ProjEvent::Pilot {
                pilot: PilotId(p),
                state: PilotState::Active,
                t_s: t,
            });
            evs.push(ProjEvent::PilotCapacity {
                pilot: PilotId(p),
                free_cores: (r % 8) as u32,
                total_cores: 8,
                t_s: t,
            });
        }
        for u in 0..units {
            let state = match (u + r) % 3 {
                0 => UnitState::Pending,
                1 => UnitState::Running,
                _ => UnitState::Done,
            };
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state,
                pilot: Some(PilotId(u % pilots)),
                t_s: t,
            });
            evs.push(ProjEvent::UnitMetric {
                unit: UnitId(u),
                wait_s: (r + 1) as f64 * 0.5,
                exec_s: (r + 1) as f64,
                t_s: t,
            });
        }
    }
    evs
}

/// Append `evs` to `topic` in moderately sized batches (so compacted topics
/// compact *during* the stream, as a live producer would drive them).
fn produce_chunked(broker: &Broker, topic: &str, evs: &[ProjEvent]) {
    for chunk in evs.chunks(512) {
        publish_events(broker, topic, chunk)
            // lint: allow(panic, reason = "the topic was created by this experiment on a fresh broker")
            .expect("append churn chunk");
    }
}

/// Time one sharded fold of the whole topic: one worker thread per shard,
/// each draining its own partition group. Returns `(wall_s, merged tables)`.
fn timed_shard_fold(
    broker: &Arc<Broker>,
    topic: &str,
    shards: usize,
    publish_every: u64,
) -> (f64, pilot_query::QueryTables) {
    let mut sm = ShardedMaterializer::bootstrap(Arc::clone(broker), topic, shards)
        // lint: allow(panic, reason = "the topic was created by this experiment on a fresh broker")
        .expect("bootstrap shard set");
    sm.set_publish_every(publish_every);
    let clock = WallClock::start();
    std::thread::scope(|s| {
        for m in sm.shards_mut().iter_mut() {
            s.spawn(move || {
                m.catch_up()
                    // lint: allow(panic, reason = "broker and topic are alive for the whole fold")
                    .expect("shard drain");
            });
        }
    });
    let wall = clock.elapsed().as_secs_f64();
    (wall, sm.service().merged())
}

/// QP-2: read-plane scaling — fold throughput vs shard count, compacted vs
/// full-history bootstrap, and delta-push latency vs poll staleness.
///
/// Floors asserted per run: 4-shard fold throughput ≥ 2× single-shard (the
/// win is mostly publication cost — each shard clones 1/Nth the rows at
/// 1/Nth the cadence — so it holds even on one core); every merged digest
/// bit-identical to the unsharded fold; compacted bootstrap ≥ 5× faster at a
/// 100× event-to-entity ratio with `applied + superseded` accounting for
/// every appended event; delta-push p99 latency bounded under 1 s.
pub fn run_qp2(quick: bool) -> String {
    let mut out = String::new();

    // ---- Part A: fold throughput vs shard count -------------------------
    let units: u64 = if quick { 4_000 } else { 10_000 };
    let fold_rounds: u64 = 3;
    let publish_every: u64 = if quick { 8 } else { 16 };
    let evs = churn_events(units, 8, fold_rounds);
    let total = evs.len() as f64;
    let broker = Arc::new(Broker::new());
    let _ = BrokerSink::create(Arc::clone(&broker), "qp2.fold", 4)
        // lint: allow(panic, reason = "fresh broker, fresh topic")
        .expect("fold topic");
    produce_chunked(&broker, "qp2.fold", &evs);

    // Unsharded reference fold: the digest every merged shard set must hit.
    let mut reference = Materializer::bootstrap(Arc::clone(&broker), "qp2.fold")
        // lint: allow(panic, reason = "the topic was created above")
        .expect("reference bootstrap");
    reference.set_publish_every(publish_every);
    reference
        .catch_up()
        // lint: allow(panic, reason = "broker and topic are alive for the whole run")
        .expect("reference drain");
    let want_digest = reference.tables().digest();

    let spec = ExperimentSpec::new(
        "QP-2a fold throughput vs shard count",
        vec![Factor::new("shards", &[1.0, 2.0, 4.0])],
        1,
        0x5152,
    );
    let mut table = ResultTable::new(&spec.name);
    let mut tp_by_shards = Vec::new();
    for trial in spec.trials() {
        let shards = trial.param_usize("shards");
        // Best of two folds: the second run damps allocator warm-up noise.
        let mut wall = f64::MAX;
        let mut merged = None;
        for _ in 0..2 {
            let (w, m) = timed_shard_fold(&broker, "qp2.fold", shards, publish_every);
            if w < wall {
                wall = w;
            }
            merged = Some(m);
        }
        // lint: allow(panic, reason = "the loop above always runs and sets merged")
        let merged = merged.expect("two folds ran");
        assert_eq!(
            merged.digest(),
            want_digest,
            "merged {shards}-shard digest must be bit-identical to the single fold"
        );
        let events_s = total / wall.max(1e-9);
        tp_by_shards.push((shards, events_s));
        table.push(
            trial,
            vec![
                ("wall_ms".into(), wall * 1e3),
                ("events_per_s".into(), events_s),
            ],
        );
    }
    let tp1 = tp_by_shards
        .iter()
        .find(|(s, _)| *s == 1)
        .map(|(_, t)| *t)
        .unwrap_or(f64::MAX);
    let tp4 = tp_by_shards
        .iter()
        .find(|(s, _)| *s == 4)
        .map(|(_, t)| *t)
        .unwrap_or(0.0);
    let scaling = tp4 / tp1.max(1e-9);
    let floor = if quick { 1.4 } else { 2.0 };
    assert!(
        scaling >= floor,
        "4-shard fold must be >= {floor}x single-shard throughput, got {scaling:.2}x"
    );
    out.push_str(&table.to_markdown());
    out.push_str(&format!(
        "4-shard over 1-shard fold throughput: {scaling:.1}× (floor {floor}×); every merged digest == unsharded fold digest\n"
    ));

    // ---- Part B: bootstrap cost, compacted vs full history --------------
    let live: u64 = if quick { 200 } else { 1_000 };
    let trigger = if quick { 64 } else { 512 };
    out.push_str("\n| ratio | events | full_ms | compact_ms | speedup | superseded |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for ratio in [10u64, 100] {
        let evs = churn_events(live, 4, (ratio / 2).max(1));
        let broker = Arc::new(Broker::new());
        let _ = BrokerSink::create(Arc::clone(&broker), "qp2.full", 4)
            // lint: allow(panic, reason = "fresh broker, fresh topic")
            .expect("full topic");
        broker
            .create_topic_with("qp2.compact", 4, Retention::Compact { trigger })
            // lint: allow(panic, reason = "fresh broker, fresh topic")
            .expect("compact topic");
        produce_chunked(&broker, "qp2.full", &evs);
        produce_chunked(&broker, "qp2.compact", &evs);

        let boot = |topic: &str| {
            let mut best = f64::MAX;
            let mut m = None;
            for _ in 0..2 {
                let clock = WallClock::start();
                let mut mat = Materializer::bootstrap(Arc::clone(&broker), topic)
                    // lint: allow(panic, reason = "the topic was created above")
                    .expect("bootstrap");
                mat.catch_up()
                    // lint: allow(panic, reason = "broker and topic are alive for the whole run")
                    .expect("bootstrap drain");
                best = best.min(clock.elapsed().as_secs_f64());
                m = Some(mat);
            }
            // lint: allow(panic, reason = "the loop above always runs and sets m")
            (best, m.expect("two bootstraps ran"))
        };
        let (t_full, mf) = boot("qp2.full");
        let (t_comp, mc) = boot("qp2.compact");
        assert_eq!(
            mf.tables().data_digest(),
            mc.tables().data_digest(),
            "compacted bootstrap must reconstruct the full-history rows exactly"
        );
        assert_eq!(
            mc.tables().events_applied + mc.events_superseded(),
            evs.len() as u64,
            "superseded + applied must account for every appended event"
        );
        assert_eq!(mc.events_lost(), 0, "compaction supersedes, never loses");
        let speedup = t_full / t_comp.max(1e-9);
        if ratio == 100 {
            assert!(
                speedup >= 5.0,
                "compacted bootstrap must be >= 5x faster at a 100x event-to-entity ratio, got {speedup:.1}x"
            );
        }
        out.push_str(&format!(
            "| {ratio}× | {} | {:.2} | {:.2} | {speedup:.1}× | {} |\n",
            evs.len(),
            t_full * 1e3,
            t_comp * 1e3,
            mc.events_superseded(),
        ));
    }
    out.push_str(
        "compacted bootstrap floor: >= 5× at 100× event-to-entity ratio; data digests identical\n",
    );

    // ---- Part C: delta push latency vs poll staleness -------------------
    let phase_s: f64 = if quick { 0.15 } else { 0.5 };
    let ring_cap = 128usize;
    let broker = Arc::new(Broker::new());
    let _ = BrokerSink::create(Arc::clone(&broker), "qp2.delta", 4)
        // lint: allow(panic, reason = "fresh broker, fresh topic")
        .expect("delta topic");
    let mut sm = ShardedMaterializer::bootstrap(Arc::clone(&broker), "qp2.delta", 2)
        // lint: allow(panic, reason = "the topic was created above")
        .expect("delta shard set");
    sm.set_publish_every(4);
    sm.set_staleness_capacity(ring_cap);
    let service = sm.service();
    let sub = service.subscribe();

    let stop = AtomicBool::new(false);
    let feeding = AtomicBool::new(true);
    let fed = AtomicU64::new(0);
    let mut push_lat = StalenessWindow::new(8192);
    let mut batches = 0u64;
    let mut delta_entities = 0u64;
    let mut shards_seen = [false; 2];
    std::thread::scope(|s| {
        let (stop_ref, feeding_ref) = (&stop, &feeding);
        let fold = s.spawn(move || {
            let mut sm = sm;
            sm.run_until_stopped(stop_ref);
            sm
        });
        let broker_ref = &broker;
        let fed_ref = &fed;
        let feeder = s.spawn(move || {
            let clock = WallClock::start();
            let mut tick = 0u64;
            while clock.elapsed().as_secs_f64() < phase_s {
                let evs = churn_events(64, 4, 1);
                fed_ref.fetch_add(evs.len() as u64, Ordering::Relaxed);
                produce_chunked(broker_ref, "qp2.delta", &evs);
                tick += 1;
                if tick.is_multiple_of(4) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            feeding_ref.store(false, Ordering::Release);
        });
        // Consume pushes while the feeder runs, then drain the tail.
        loop {
            match sub.next_timeout(Duration::from_millis(20)) {
                Some(b) => {
                    batches += 1;
                    delta_entities += b.len() as u64;
                    if b.shard < shards_seen.len() {
                        shards_seen[b.shard] = true;
                    }
                    if let Some(enq) = b.newest_enqueued_s {
                        push_lat.record((broker.now_s() - enq).max(0.0));
                    }
                }
                None if !feeding.load(Ordering::Acquire) => break,
                None => {}
            }
        }
        // lint: allow(panic, reason = "the feeder thread only appends events and cannot panic")
        feeder.join().expect("feeder thread");
        stop.store(true, Ordering::Release);
        broker.wake_all();
        // lint: allow(panic, reason = "run_until_stopped returns after the stop flag is set")
        let _ = fold.join().expect("fold threads");
    });

    let push_p50_ms = push_lat.percentile(0.5).unwrap_or(0.0) * 1e3;
    let push_p99_ms = push_lat.percentile(0.99).unwrap_or(0.0) * 1e3;
    let fold_p50_ms = service.staleness(0.5).unwrap_or(0.0) * 1e3;
    let fold_p99_ms = service.staleness(0.99).unwrap_or(0.0) * 1e3;
    assert!(
        push_p99_ms < 1_000.0,
        "p99 delta-push latency must stay bounded, got {push_p99_ms:.1} ms"
    );
    assert!(batches > 0 && delta_entities > 0, "the feed must push data");
    assert!(
        shards_seen.iter().all(|&s| s),
        "every shard's fold must reach the one merged subscription"
    );
    // Staleness-ring accounting: held never exceeds the configured capacity
    // per shard, and never exceeds the lifetime sample count.
    let held = service.staleness_held();
    let samples = service.staleness_samples();
    assert!(held > 0 && held <= ring_cap * 2, "ring capacity respected");
    assert!(
        held as u64 <= samples,
        "held samples are a suffix of lifetime samples"
    );
    out.push_str(&format!(
        "\ndelta push (subscribe): p50 {push_p50_ms:.2} ms, p99 {push_p99_ms:.2} ms over {batches} batches / {delta_entities} entity upserts\n\
         poll-path floor (fold staleness, before any poll interval): p50 {fold_p50_ms:.2} ms, p99 {fold_p99_ms:.2} ms\n\
         staleness ring: {held} held / {samples} lifetime samples (cap {ring_cap} per shard)\n\
         events fed: {}\n",
        fed.load(Ordering::Relaxed)
    ));
    common::emit(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn qp1_quick_holds_speedup_staleness_and_restart_floors() {
        // The floors are asserted inside run_qp1; surviving the call in
        // quick mode is the regression check CI runs.
        let report = super::run_qp1(true);
        assert!(report.contains("dash_proj_qps"));
        assert!(report.contains("stale_p99_ms"));
    }

    #[test]
    fn qp2_quick_holds_scaling_compaction_and_push_floors() {
        // Shard-scaling, compacted-bootstrap, digest-identity, and push
        // latency floors are asserted inside run_qp2; surviving the call in
        // quick mode is the regression check CI runs.
        let report = super::run_qp2(true);
        assert!(report.contains("events_per_s"));
        assert!(report.contains("compact_ms"));
        assert!(report.contains("delta push"));
    }
}
