//! SC experiments: scheduler/binding hot-path scaling. SC-1 sweeps
//! pending-queue depth x pilot count and compares the original
//! rebuild-per-bind pass against the batched pass both backends now run.

use super::common;
use pilot_core::binding::{batched_pass, per_unit_pass, BindStats, PendingUnit};
use pilot_core::describe::{DataLocation, UnitDescription};
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::{LoadBalanceScheduler, PilotSnapshot};
use pilot_core::WallClock;
use pilot_infra::types::SiteId;

fn pilots(n: usize) -> Vec<PilotSnapshot> {
    (0..n)
        .map(|i| PilotSnapshot {
            pilot: PilotId(i as u64 + 1),
            site: SiteId((i % 4) as u16),
            total_cores: 32,
            free_cores: 32,
            bound_units: 0,
            remaining_walltime_s: 3600.0 - i as f64,
        })
        .collect()
}

fn pending(n: usize) -> Vec<PendingUnit> {
    (0..n)
        .map(|i| PendingUnit {
            unit: UnitId(i as u64 + 1),
            desc: UnitDescription::new(1)
                .with_priority((i % 7) as i32 - 3)
                .with_inputs(vec![DataLocation::new(
                    1_000_000,
                    vec![SiteId((i % 4) as u16)],
                )]),
        })
        .collect()
}

/// Time `reps` repetitions of one pass, returning (binds/sec, stats of one pass).
fn measure(
    reps: u32,
    snaps: &[PilotSnapshot],
    pend: &[PendingUnit],
    batched: bool,
) -> (f64, BindStats) {
    let mut stats = BindStats::default();
    let start = WallClock::start();
    let mut binds = 0u64;
    for _ in 0..reps {
        stats = BindStats::default();
        let placed = if batched {
            batched_pass(&mut LoadBalanceScheduler, snaps, pend, &mut stats)
        } else {
            per_unit_pass(&mut LoadBalanceScheduler, snaps, pend, &mut stats)
        };
        binds += placed.len() as u64;
    }
    let secs = start.elapsed_s().max(1e-9);
    (binds as f64 / secs, stats)
}

/// SC-1: late-binding pass throughput, pending depth x pilot count.
/// The batched pass builds one snapshot vector per pass instead of one per
/// bind; at 1k pending units x 32 pilots that is a >=5x reduction in rebuilds
/// (in practice ~1000x) and a corresponding binds/sec jump.
pub fn run_sc1(quick: bool) -> String {
    let depths: &[usize] = if quick { &[64, 256] } else { &[64, 256, 1024] };
    let pilot_counts: &[usize] = &[8, 32];
    let reps = if quick { 3 } else { 10 };
    let mut out = String::from(
        "### SC-1 late-binding pass: rebuild-per-bind vs batched (32-core pilots)\n\n\
         | pending | pilots | old binds/s | new binds/s | speedup | old rebuilds | new rebuilds |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let mut worst_rebuild_ratio = f64::INFINITY;
    for &n_pilots in pilot_counts {
        for &depth in depths {
            let snaps = pilots(n_pilots);
            let pend = pending(depth);
            let (old_rate, old_stats) = measure(reps, &snaps, &pend, false);
            let (new_rate, new_stats) = measure(reps, &snaps, &pend, true);
            assert_eq!(
                old_stats.binds, new_stats.binds,
                "passes diverged at {depth}x{n_pilots}"
            );
            let ratio = old_stats.snapshot_builds as f64 / new_stats.snapshot_builds as f64;
            worst_rebuild_ratio = worst_rebuild_ratio.min(ratio);
            out.push_str(&format!(
                "| {depth} | {n_pilots} | {old_rate:.0} | {new_rate:.0} | {:.0}x | {} | {} |\n",
                new_rate / old_rate.max(1e-9),
                old_stats.snapshot_builds,
                new_stats.snapshot_builds,
            ));
        }
    }
    out.push_str(&format!(
        "\n(worst-case rebuild reduction {worst_rebuild_ratio:.0}x; acceptance floor is 5x)\n"
    ));
    assert!(
        worst_rebuild_ratio >= 5.0,
        "batched pass must cut snapshot rebuilds at least 5x (got {worst_rebuild_ratio:.1}x)"
    );
    common::emit(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc1_quick_holds_rebuild_floor() {
        let report = run_sc1(true);
        assert!(report.contains("SC-1"));
        assert!(report.contains("acceptance floor"));
    }
}
