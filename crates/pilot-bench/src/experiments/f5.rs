//! F5: the automated build-assess-refine loop of Figure 5 — sweep a
//! configuration space with the Mini-App framework, fit a performance model,
//! choose the next configuration from the model, and verify the improvement
//! by running it.
//!
//! Concrete instance: right-size a pilot for an ensemble. A coarse sweep of
//! pilot core counts measures makespan (on the deterministic simulated
//! backend, so the loop works the same on any host), a model of
//! `makespan ~ a + b/cores` is fitted, a finer candidate grid is scored, and
//! the chosen configuration is verified by running it.

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::sim::SimPilotSystem;
use pilot_core::state::UnitState;
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_perfmodel::{FeatureMap, LinearModel};
use pilot_sim::{SimDuration, SimTime};

fn measure_makespan(cores: u32, tasks: usize, task_s: f64, seed: u64) -> f64 {
    let mut sys = SimPilotSystem::new(seed);
    sys.disable_trace();
    let site = sys.add_resource(common::quiet_hpc("hpc", 512));
    sys.submit_pilot(
        SimTime::ZERO,
        site,
        PilotDescription::new(cores, SimDuration::from_hours(100)),
    );
    for _ in 0..tasks {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), task_s);
    }
    let report = sys.run(SimTime::from_hours(400));
    assert_eq!(report.count(UnitState::Done), tasks);
    report.makespan()
}

/// Run the loop: assess (sweep) → model → refine (pick) → verify.
pub fn run(quick: bool) -> String {
    let tasks = if quick { 120 } else { 480 };
    let task_s = 240.0;
    let mut out = String::from("### F5 automated build-assess-refine loop (Figure 5)\n\n");

    // Assess: a deliberately coarse designed sweep of pilot sizes.
    out.push_str(
        "**assess** — coarse sweep of pilot core counts (Mini-App framework, sim backend):\n\n",
    );
    let spec = ExperimentSpec::new(
        "f5-pilot-sizing",
        vec![Factor::new("cores", &[4.0, 16.0, 48.0])],
        1,
        0xF5,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let cores = trial.param_usize("cores") as u32;
        let mk = measure_makespan(cores, tasks, task_s, trial.seed);
        table.push(trial, vec![("makespan_s".into(), mk)]);
    }
    out.push_str(&table.to_markdown());

    // Model: makespan is wave-structured, ≈ a + b/cores over a sweep.
    let xs: Vec<Vec<f64>> = table
        .rows
        .iter()
        .map(|r| vec![1.0 / r.trial.param("cores")])
        .collect();
    let ys: Vec<f64> = table
        .rows
        .iter()
        .map(|r| -r.measured("makespan_s")) // negate: argmax = argmin makespan
        .collect();
    // lint: allow(panic, reason = "the sweep always yields >= 2 distinct 1/cores levels, so the 2-column design matrix has full rank")
    let model = LinearModel::fit(&xs, &ys, FeatureMap::Linear).expect("well-posed design");

    // Refine: score a finer grid the sweep never ran, under a budget cap.
    let budget_cap = 64.0;
    let candidates: Vec<Vec<f64>> = [4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0]
        .iter()
        .filter(|&&c| c <= budget_cap)
        .map(|&c| vec![1.0 / c])
        .collect();
    // lint: allow(panic, reason = "the candidate grid is a static list filtered by a cap it satisfies; it is never empty")
    let best = model.argmax(&candidates).expect("non-empty grid").clone();
    let chosen_cores = (1.0 / best[0]).round() as u32;
    out.push_str(&format!(
        "\n**refine** — model `makespan ≈ a + b/cores` picks cores={chosen_cores} (≤ budget {budget_cap}); predicted makespan {:.0} s\n",
        -model.predict(&best)
    ));

    // Verify: run the chosen configuration against the worst swept one.
    let verified = measure_makespan(chosen_cores, tasks, task_s, 0xF5F5);
    let worst = table
        .rows
        .iter()
        .map(|r| r.measured("makespan_s"))
        .fold(f64::NEG_INFINITY, f64::max);
    out.push_str(&format!(
        "\n**verify** — measured {verified:.0} s at cores={chosen_cores} vs {worst:.0} s at the worst swept config ({:.1}x better)\n",
        worst / verified.max(1.0)
    ));
    assert!(verified < worst, "the refined configuration must improve");
    out.push_str("\n(the loop closes: measurements feed the model, the model feeds the next design — Figure 5)\n");
    common::emit(out)
}
