//! PH experiments: Pilot-MapReduce — wordcount phases and combiner effect
//! (PH-1), sequence alignment throughput (PH-2), with the MapReduce cost
//! model's scaling prediction.

use super::common;
use pilot_apps::seqalign::{generate_reads, generate_reference, map_read, Read, Scoring};
use pilot_apps::wordcount::{generate_text, TextConfig};
use pilot_core::WallClock;
use pilot_mapreduce::MapReduceJob;
use pilot_perfmodel::MapReduceModel;
use std::sync::Arc;

/// PH-1: wordcount phase decomposition, combiner ablation, and the cost
/// model's view of how shuffle bounds scaling.
pub fn run_ph1(quick: bool) -> String {
    let cfg = TextConfig {
        lines: if quick { 500 } else { 5000 },
        words_per_line: 20,
        vocabulary: 2000,
        zipf_s: 1.0,
        seed: 0x5051,
    };
    let text = generate_text(&cfg);
    let mk_job = |text: Vec<String>| {
        MapReduceJob::new(
            MapReduceJob::<String, String, u64, u64>::split_input(text, 8),
            |line: &String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |_k, vs: Vec<u64>| vs.iter().sum::<u64>(),
            4,
        )
    };
    let svc = common::thread_service(4, Box::new(pilot_core::scheduler::FirstFitScheduler));
    let plain = mk_job(text.clone()).run(&svc);
    let combined = mk_job(text)
        .with_combiner(|_k, vs| vs.iter().sum())
        .run(&svc);
    svc.shutdown();
    assert_eq!(
        plain.output, combined.output,
        "combiner must not change results"
    );
    let mut out = String::from(
        "### PH-1 Pilot-MapReduce wordcount: phases and combiner effect\n\n\
         | variant | map (s) | shuffle (s) | reduce (s) | total (s) | shuffled pairs |\n\
         |---|---|---|---|---|---|\n",
    );
    for (name, r) in [("no combiner", &plain), ("with combiner", &combined)] {
        out.push_str(&format!(
            "| {name} | {:.4} | {:.4} | {:.4} | {:.4} | {} |\n",
            r.times.map_s,
            r.times.shuffle_s,
            r.times.reduce_s,
            r.times.total_s(),
            r.shuffled_pairs
        ));
    }
    // Model: scale the measured phase work across parallelism.
    let model = MapReduceModel {
        map_work_s: plain.times.map_s * 4.0, // measured on 4 effective slots
        reduce_work_s: plain.times.reduce_s * 4.0,
        shuffle_bytes: plain.shuffled_pairs as f64 * 16.0,
        shuffle_bandwidth: 1e9,
        per_task_overhead_s: 0.001,
        map_tasks: plain.map_tasks as u32,
        reduce_tasks: plain.reduce_tasks as u32,
    };
    out.push_str("\nmodel-predicted runtime by parallelism (shuffle becomes the floor):\n\n| p | predicted (s) |\n|---|---|\n");
    for p in [1u32, 2, 4, 8, 16, 64] {
        out.push_str(&format!("| {p} | {:.4} |\n", model.runtime(p)));
    }
    common::emit(out)
}

/// PH-2: Smith-Waterman read alignment as a MapReduce job — alignment
/// throughput and mapping accuracy.
pub fn run_ph2(quick: bool) -> String {
    let n_reads = if quick { 100 } else { 600 };
    let reference = Arc::new(generate_reference(6000, 0x5052));
    let reads = generate_reads(&reference, n_reads, 64, 0.03, 0x5053);
    let truth: Vec<usize> = reads.iter().map(|r| r.true_pos).collect();
    let scoring = Scoring::default();
    let svc = common::thread_service(4, Box::new(pilot_core::scheduler::FirstFitScheduler));
    let ref2 = Arc::clone(&reference);
    let job = MapReduceJob::new(
        MapReduceJob::<Read, u64, (usize, i32), u64>::split_input(reads, 8),
        move |read: &Read, emit: &mut dyn FnMut(u64, (usize, i32))| {
            let (mapped, a) = map_read(read, &ref2, scoring, 80);
            if mapped {
                emit(0, (a.ref_end, a.score)); // single key: global stats
            }
        },
        |_k, vs: Vec<(usize, i32)>| vs.len() as u64,
        2,
    );
    let t0 = WallClock::start();
    let r = job.run(&svc);
    let elapsed = t0.elapsed_s();
    svc.shutdown();
    let mapped: u64 = r.output.iter().map(|(_, n)| n).sum();
    let bases = n_reads as f64 * 64.0 * 6000.0; // DP cells evaluated
    let mut out = String::from("### PH-2 sequence alignment via Pilot-MapReduce\n\n");
    out.push_str(&format!(
        "| metric | value |\n|---|---|\n\
         | reads | {n_reads} |\n\
         | mapped (score ≥ 80) | {mapped} |\n\
         | runtime | {elapsed:.3} s |\n\
         | alignment throughput | {:.0} reads/s |\n\
         | DP cell rate | {:.1} Mcells/s |\n\
         | map tasks / reduce tasks | {} / {} |\n",
        n_reads as f64 / elapsed,
        bases / elapsed / 1e6,
        r.map_tasks,
        r.reduce_tasks,
    ));
    assert!(
        mapped as usize >= n_reads * 9 / 10,
        "mapping rate collapsed"
    );
    let _ = truth;
    common::emit(out)
}
