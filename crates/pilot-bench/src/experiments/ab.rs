//! Ablations: DF-1 (dataflow pipeline), AB-1 (scheduler policies under a
//! locality-heavy workload), AB-2 (better algorithm vs more resources —
//! Section VI, "Optimize Application Algorithms").

use super::common;
use pilot_apps::pairwise::{contacts_grid, contacts_naive, generate_points};
use pilot_core::describe::{DataLocation, PilotDescription, UnitDescription};
use pilot_core::scheduler::{
    BackfillScheduler, DataAwareScheduler, FirstFitScheduler, LoadBalanceScheduler,
    RandomScheduler, RoundRobinScheduler, Scheduler,
};
use pilot_core::sim::SimPilotSystem;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput};
use pilot_core::WallClock;
use pilot_dataflow::{Dataflow, StageData};
use pilot_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// DF-1: a generate → transform → reduce pipeline at several widths; stage
/// wall times and end-to-end time.
pub fn run_df1(quick: bool) -> String {
    let points_per_task = if quick { 2000 } else { 8000 };
    let mut out = String::from(
        "### DF-1 dataflow pipeline (generate → contacts → reduce)\n\n\
         | width | gen (s) | analyze (s) | reduce (s) | end-to-end (s) | stage-sum (s) |\n\
         |---|---|---|---|---|---|\n",
    );
    for width in [1usize, 2, 4] {
        let svc = common::thread_service(4, Box::new(FirstFitScheduler));
        let mut g = Dataflow::new();
        let gen = g.add_stage("gen", width, move |task, _| {
            Ok(Arc::new(generate_points(points_per_task, 120.0, task as u64)) as StageData)
        });
        let analyze = g.add_stage("analyze", width, move |task, inputs| {
            let clouds = inputs.downcast_all::<Vec<[f64; 2]>>(gen);
            let mine = &clouds[task % clouds.len()];
            Ok(Arc::new(contacts_grid(mine, 2.0)) as StageData)
        });
        let reduce = g.add_stage("reduce", 1, move |_, inputs| {
            let counts = inputs.downcast_all::<u64>(analyze);
            Ok(Arc::new(counts.iter().map(|c| **c).sum::<u64>()) as StageData)
        });
        // lint: allow(panic, reason = "edges connect stage ids minted by this graph three lines up; a cycle in a 3-stage chain is impossible")
        g.add_edge(gen, analyze).unwrap();
        // lint: allow(panic, reason = "edges connect stage ids minted by this graph three lines up; a cycle in a 3-stage chain is impossible")
        g.add_edge(analyze, reduce).unwrap();
        // lint: allow(panic, reason = "a static acyclic 3-stage graph cannot fail validation")
        let report = g.run(&svc).unwrap();
        svc.shutdown();
        assert!(report.all_done());
        let sum: f64 = report.stage_wall_s.iter().sum();
        out.push_str(&format!(
            "| {width} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |\n",
            report.stage_wall_s[0],
            report.stage_wall_s[1],
            report.stage_wall_s[2],
            report.total_wall_s,
            sum
        ));
    }
    out.push_str("\n(stages overlap when the host has idle cores; stage-sum > end-to-end then)\n");
    common::emit(out)
}

/// AB-1: one workload, six late-binding schedulers (sim). Inputs have strong
/// site affinity, so data-awareness dominates; the others differ in packing.
pub fn run_ab1(quick: bool) -> String {
    let tasks = if quick { 60 } else { 240 };
    let mut out = String::from(
        "### AB-1 scheduler ablation (2 sites, locality-heavy workload)\n\n\
         | scheduler | makespan (s) | mean wait (s) | mean staging (s) |\n|---|---|---|---|\n",
    );
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FirstFitScheduler),
        Box::new(RoundRobinScheduler::default()),
        Box::new(LoadBalanceScheduler),
        Box::new(BackfillScheduler::default()),
        Box::new(DataAwareScheduler::default()),
        Box::new(RandomScheduler::new(0xAB1)),
    ];
    for sched in schedulers {
        let name = sched.name();
        let mut sys = SimPilotSystem::new(0xAB01);
        sys.disable_trace();
        let a = sys.add_resource(common::quiet_hpc("a", 64));
        let b = sys.add_resource(common::quiet_hpc("b", 64));
        sys.set_scheduler(sched);
        for site in [a, b] {
            sys.submit_pilot(
                SimTime::ZERO,
                site,
                PilotDescription::new(16, SimDuration::from_hours(12)),
            );
        }
        for i in 0..tasks {
            let home = if i % 2 == 0 { a } else { b };
            sys.submit_unit_fixed(
                SimTime::ZERO,
                UnitDescription::new(1)
                    .with_inputs(vec![DataLocation::new(200_000_000, vec![home])])
                    .with_estimate(45.0),
                45.0,
            );
        }
        let report = sys.run(SimTime::from_hours(24));
        assert_eq!(report.count(UnitState::Done), tasks, "{name}");
        let waits: Vec<f64> = report.units.iter().filter_map(|u| u.times.wait()).collect();
        let stag: Vec<f64> = report
            .units
            .iter()
            .filter_map(|u| u.times.staging())
            .collect();
        out.push_str(&format!(
            "| {name} | {:.0} | {:.1} | {:.2} |\n",
            report.makespan(),
            waits.iter().sum::<f64>() / waits.len() as f64,
            stag.iter().sum::<f64>() / stag.len() as f64
        ));
    }
    common::emit(out)
}

/// AB-2: algorithm choice vs scale-out. Parallelizing the O(n²) contact
/// count across pilot units competes with simply switching to the grid
/// algorithm on one core.
pub fn run_ab2(quick: bool) -> String {
    let n = if quick { 6000 } else { 20_000 };
    let points = Arc::new(generate_points(n, 200.0, 0xAB2));
    let cutoff = 1.5;
    let truth = contacts_grid(&points, cutoff);
    let mut out = String::from(
        "### AB-2 optimize the algorithm vs scale out (contact counting)\n\n\
         | approach | workers | runtime (s) | pairs found |\n|---|---|---|---|\n",
    );
    // Naive O(n²), parallelized over row chunks as pilot units.
    for workers in [1usize, 2, 4] {
        let svc = common::thread_service(workers as u32, Box::new(FirstFitScheduler));
        let t0 = WallClock::start();
        let chunk = n.div_ceil(workers * 2);
        let units: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let pts = Arc::clone(&points);
                let end = (start + chunk).min(n);
                svc.submit_unit(
                    UnitDescription::new(1),
                    kernel_fn(move |_| {
                        let c2 = cutoff * cutoff;
                        let mut count = 0u64;
                        for i in start..end {
                            for j in (i + 1)..pts.len() {
                                let dx = pts[i][0] - pts[j][0];
                                let dy = pts[i][1] - pts[j][1];
                                if dx * dx + dy * dy <= c2 {
                                    count += 1;
                                }
                            }
                        }
                        Ok(TaskOutput::of(count))
                    }),
                )
            })
            .collect();
        let mut total = 0u64;
        for u in units {
            total += svc
                .wait_unit(u)
                // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
                .expect("unit issued by this service")
                .output
                .and_then(|r| r.ok())
                .and_then(|o| o.downcast::<u64>().ok())
                .unwrap_or(0);
        }
        let elapsed = t0.elapsed_s();
        svc.shutdown();
        assert_eq!(total, truth);
        out.push_str(&format!(
            "| naive O(n²) on pilots | {workers} | {elapsed:.3} | {total} |\n"
        ));
    }
    // The better algorithm, one core, no middleware at all.
    let t0 = WallClock::start();
    let got = contacts_grid(&points, cutoff);
    let t_grid = t0.elapsed_s();
    assert_eq!(got, truth);
    out.push_str(&format!(
        "| grid O(n) sequential | 1 | {t_grid:.3} | {got} |\n"
    ));
    // Reference: naive sequential without middleware (black_box keeps the
    // otherwise-unused call from being optimized away).
    let t0 = WallClock::start();
    std::hint::black_box(contacts_naive(std::hint::black_box(&points), cutoff));
    let t_naive = t0.elapsed_s();
    out.push_str(&format!(
        "| naive O(n²) sequential | 1 | {t_naive:.3} | {truth} |\n"
    ));
    out.push_str(&format!(
        "\n(the algorithm change wins {:.0}x — more than any realistic scale-out; Section VI)\n",
        t_naive / t_grid.max(1e-9)
    ));
    common::emit(out)
}
