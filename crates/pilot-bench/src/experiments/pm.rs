//! PM-1: Pilot-Memory — iterative K-Means with cached partitions vs
//! re-staging every iteration (Table II "Pilot-Memory" column).

use super::common;
use pilot_apps::kmeans::{
    assign_step, generate_blob_matrix, init_centroids, update_centroids, BlobConfig, Partial,
};
use pilot_apps::linalg::Matrix;
use pilot_core::Parallelism;
use pilot_memory::{CacheManager, CacheMode, IterativeExecutor, VecSource};
use std::sync::Arc;

/// PM-1 driver.
pub fn run_pm1(quick: bool) -> String {
    let iters = if quick { 4 } else { 10 };
    let points_n = if quick { 1000 } else { 6000 };
    let partitions = 8;
    let load_cost_s = 0.004; // synthetic storage/deserialization cost

    let run = |mode: CacheMode| {
        let cfg = BlobConfig::new(4, 3, points_n, 0x504D);
        let (points, _) = generate_blob_matrix(&cfg);
        let init = init_centroids(&points, cfg.k);
        let bands: Vec<Vec<Matrix>> = points
            .partition_rows(partitions)
            .into_iter()
            .map(|band| vec![band])
            .collect();
        let source = Arc::new(VecSource::from_partitions(bands).with_load_cost(load_cost_s));
        let cache = Arc::new(CacheManager::new(source as _, mode));
        let svc = common::thread_service(4, Box::new(pilot_core::scheduler::FirstFitScheduler));
        let exec = IterativeExecutor::new(
            cache,
            |part: &[Matrix], c: &Matrix, par: &Parallelism| match part.first() {
                Some(band) => assign_step(band, c, par),
                None => Partial::zero(c.rows(), c.cols()),
            },
            |partials: Vec<Partial>, c: Matrix| update_centroids(&partials, &c).0,
        );
        let out = exec.run(&svc, init, iters, |_, _| false);
        svc.shutdown();
        out
    };

    let cached = run(CacheMode::Cached);
    let reload = run(CacheMode::Reload);
    // Same data, same math: identical centroids.
    for (a, b) in cached.state.as_slice().iter().zip(reload.state.as_slice()) {
        assert!((a - b).abs() < 1e-9, "caching changed the answer");
    }

    let mut out = String::from(
        "### PM-1 iterative K-Means: Pilot-Memory caching vs per-iteration re-staging\n\n\
         | iteration | cached (s) | cached loads | reload (s) | reload loads |\n|---|---|---|---|---|\n",
    );
    for (c, r) in cached.iterations.iter().zip(&reload.iterations) {
        out.push_str(&format!(
            "| {} | {:.4} | {} | {:.4} | {} |\n",
            c.iteration, c.wall_s, c.loads, r.wall_s, r.loads
        ));
    }
    out.push_str(&format!(
        "\nsteady-state mean: cached {:.4} s/iter vs reload {:.4} s/iter → {:.1}x speedup\n\
         (first cached iteration pays the cold loads; afterwards hits are free)\n",
        cached.steady_state_mean_s(),
        reload.steady_state_mean_s(),
        reload.steady_state_mean_s() / cached.steady_state_mean_s().max(1e-9)
    ));
    common::emit(out)
}
