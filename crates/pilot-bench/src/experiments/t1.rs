//! T1: one representative application per scenario of the paper's Table I,
//! all through the same Pilot-API on the threaded backend.

use super::common;
use pilot_apps::kmeans::{
    assign_step, generate_blob_matrix, init_centroids, update_centroids, BlobConfig, Partial,
};
use pilot_apps::lightsource::{generate_frame, reconstruct, FrameConfig};
use pilot_apps::linalg::Matrix;
use pilot_apps::md::{run_replica_exchange, RexConfig};
use pilot_apps::pairwise::{contacts_grid, generate_points};
use pilot_apps::wordcount::{generate_text, TextConfig};
use pilot_core::describe::UnitDescription;
use pilot_core::scheduler::FirstFitScheduler;
use pilot_core::thread::{kernel_fn, TaskOutput};
use pilot_core::{Parallelism, WallClock};
use pilot_mapreduce::MapReduceJob;
use pilot_memory::{CacheManager, CacheMode, IterativeExecutor, VecSource};
use pilot_streaming::pipeline::run_stream_job;
use pilot_streaming::{Broker, StreamJobConfig};
use std::sync::Arc;

/// Run all five scenarios and print the Table I reproduction.
pub fn run(quick: bool) -> String {
    let scale = if quick { 1 } else { 4 };
    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new(); // scenario, tasks, runtime, throughput

    // --- task-parallel: replica exchange ---------------------------------
    {
        let svc = common::thread_service(4, Box::new(FirstFitScheduler));
        let mut cfg = RexConfig::small(4 * scale.min(2));
        cfg.phases = 2 * scale.min(2);
        cfg.steps_per_phase = 15;
        let t0 = WallClock::start();
        let report = run_replica_exchange(&svc, &cfg);
        let dt = t0.elapsed_s();
        svc.shutdown();
        let n = cfg.replicas * cfg.phases;
        assert_eq!(report.failed_units, 0);
        rows.push((
            "task-parallel (replica exchange)".into(),
            n,
            dt,
            n as f64 / dt,
        ));
    }

    // --- data-parallel: contact analysis over partitions -----------------
    {
        let svc = common::thread_service(4, Box::new(FirstFitScheduler));
        let parts = 8 * scale;
        let t0 = WallClock::start();
        let units: Vec<_> = (0..parts)
            .map(|i| {
                svc.submit_unit(
                    UnitDescription::new(1).tagged("contacts"),
                    kernel_fn(move |_| {
                        let pts = generate_points(3000, 80.0, i as u64);
                        Ok(TaskOutput::of(contacts_grid(&pts, 1.5)))
                    }),
                )
            })
            .collect();
        let mut total = 0u64;
        for u in units {
            total += svc
                .wait_unit(u)
                // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
                .expect("unit issued by this service")
                .output
                .and_then(|r| r.ok())
                .and_then(|o| o.downcast::<u64>().ok())
                .unwrap_or(0);
        }
        let dt = t0.elapsed_s();
        svc.shutdown();
        assert!(total > 0);
        rows.push((
            "data-parallel (contact analysis)".into(),
            parts,
            dt,
            parts as f64 / dt,
        ));
    }

    // --- dataflow/MapReduce: wordcount ------------------------------------
    {
        let svc = common::thread_service(4, Box::new(FirstFitScheduler));
        let mut tc = TextConfig::small();
        tc.lines = 400 * scale;
        let text = generate_text(&tc);
        let job = MapReduceJob::new(
            MapReduceJob::<String, String, u64, u64>::split_input(text, 8),
            |line: &String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |_k, vs: Vec<u64>| vs.iter().sum::<u64>(),
            4,
        );
        let t0 = WallClock::start();
        let r = job.run(&svc);
        let dt = t0.elapsed_s();
        svc.shutdown();
        let n = r.map_tasks + r.reduce_tasks;
        assert!(!r.output.is_empty());
        rows.push((
            "dataflow (MapReduce wordcount)".into(),
            n,
            dt,
            n as f64 / dt,
        ));
    }

    // --- iterative: K-Means with Pilot-Memory -----------------------------
    {
        let cfg = BlobConfig::new(3, 2, 1500 * scale, 0x71);
        let (points, _) = generate_blob_matrix(&cfg);
        let init = init_centroids(&points, cfg.k);
        let bands: Vec<Vec<Matrix>> = points
            .partition_rows(8)
            .into_iter()
            .map(|band| vec![band])
            .collect();
        let source = Arc::new(VecSource::from_partitions(bands));
        let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
        let svc = common::thread_service(4, Box::new(FirstFitScheduler));
        let exec = IterativeExecutor::new(
            cache,
            |part: &[Matrix], c: &Matrix, par: &Parallelism| match part.first() {
                Some(band) => assign_step(band, c, par),
                None => Partial::zero(c.rows(), c.cols()),
            },
            |ps: Vec<Partial>, c: Matrix| update_centroids(&ps, &c).0,
        );
        let iters = 5;
        let t0 = WallClock::start();
        let out = exec.run(&svc, init, iters, |_, _| false);
        let dt = t0.elapsed_s();
        svc.shutdown();
        assert_eq!(out.failed_units, 0);
        let n = iters * 8;
        rows.push(("iterative (K-Means, cached)".into(), n, dt, n as f64 / dt));
    }

    // --- streaming: light-source reconstruction ---------------------------
    {
        let svc = common::thread_service(3, Box::new(FirstFitScheduler));
        let broker = Arc::new(Broker::new());
        let frames = (50 * scale) as u64;
        let mut cfg = StreamJobConfig::new("t1-frames", 2, 1, 1);
        cfg.messages_per_producer = frames;
        // Payload: a real serialized frame; the operator reconstructs peaks.
        let (frame, _) = generate_frame(&FrameConfig::small(), 7);
        cfg.payload_bytes = frame.to_bytes().len();
        let t0 = WallClock::start();
        let report = run_stream_job(
            &svc,
            &broker,
            &cfg,
            Arc::new(move |m| {
                // Payload here is the synthetic fill (not a frame), so
                // reconstruct a real one to keep the operator honest.
                let _ = m.payload.len();
                let (f, _) = generate_frame(&FrameConfig::small(), m.offset);
                // lint: allow(panic, reason = "the frame bytes come from Frame::to_bytes on the previous line; reconstruct only rejects malformed headers")
                let peaks = reconstruct(&f.to_bytes(), 15.0).expect("valid frame");
                assert!(peaks.len() <= 8);
            }),
        );
        let dt = t0.elapsed_s();
        svc.shutdown();
        assert_eq!(report.consumed, frames);
        rows.push((
            "streaming (light-source frames)".into(),
            frames as usize,
            dt,
            report.throughput,
        ));
    }

    let mut out = String::from(
        "### T1 the five application scenarios of Table I on one Pilot-API\n\n\
         | scenario | tasks/messages | runtime (s) | throughput (/s) |\n|---|---|---|---|\n",
    );
    for (name, n, dt, tput) in rows {
        out.push_str(&format!("| {name} | {n} | {dt:.3} | {tput:.1} |\n"));
    }
    common::emit(out)
}
