//! IO-1 (interoperability across infrastructures, \[79\]) and DY-1 (runtime
//! adaptivity / cloud burst, \[63\]) — requirements R2 and R3.

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::sim::{ScaleOutPolicy, SimPilotSystem};
use pilot_core::state::UnitState;
use pilot_sim::{SimDuration, SimTime};

/// IO-1: the identical ensemble on four infrastructures through the same
/// Pilot-API; only provisioning latency and capacity shape differ.
pub fn run_io1(quick: bool) -> String {
    let tasks = if quick { 100 } else { 400 };
    let task_s = 90.0;
    let mut out = String::from(
        "### IO-1 interoperability: identical workload, four infrastructures\n\n\
         | infrastructure | makespan (s) | pilot startup (s) | done |\n|---|---|---|---|\n",
    );
    type Builder = Box<dyn FnOnce(&mut SimPilotSystem)>;
    let scenarios: Vec<(&str, Builder)> = vec![
        (
            "hpc (busy queue)",
            Box::new(|sys: &mut SimPilotSystem| {
                let s = sys.add_resource(common::busy_hpc("hpc", 128, 0.8, 42));
                sys.submit_pilot(
                    SimTime::from_secs(15_000),
                    s,
                    PilotDescription::new(64, SimDuration::from_hours(12)),
                );
            }),
        ),
        (
            "htc (glide-ins)",
            Box::new(|sys: &mut SimPilotSystem| {
                let s = sys.add_resource(common::htc_pool("osg", 128));
                sys.submit_pilot(
                    SimTime::from_secs(15_000),
                    s,
                    PilotDescription::new(64, SimDuration::from_hours(12)),
                );
            }),
        ),
        (
            "cloud (on demand)",
            Box::new(|sys: &mut SimPilotSystem| {
                let s = sys.add_resource(common::cloud("cloud", 256));
                sys.submit_pilot(
                    SimTime::from_secs(15_000),
                    s,
                    PilotDescription::new(64, SimDuration::from_hours(12)),
                );
            }),
        ),
        (
            "yarn (containers)",
            Box::new(|sys: &mut SimPilotSystem| {
                let s = sys.add_resource(common::yarn("emr", 256));
                sys.submit_pilot(
                    SimTime::from_secs(15_000),
                    s,
                    PilotDescription::new(64, SimDuration::from_hours(12)),
                );
            }),
        ),
    ];
    for (name, build) in scenarios {
        let mut sys = SimPilotSystem::new(0x101);
        sys.disable_trace();
        build(&mut sys);
        for _ in 0..tasks {
            sys.submit_unit_fixed(SimTime::from_secs(15_000), UnitDescription::new(1), task_s);
        }
        let report = sys.run(SimTime::from_hours(96));
        let done = report.count(UnitState::Done);
        out.push_str(&format!(
            "| {name} | {:.0} | {:.1} | {done}/{tasks} |\n",
            report.makespan(),
            report.mean_pilot_startup()
        ));
    }
    out.push_str("\n(same application code and scheduler for every row — R2)\n");
    common::emit(out)
}

/// DY-1: a burst of work hits a small HPC pilot; the adaptive policy bursts
/// to the cloud, the static setup grinds through the backlog.
pub fn run_dy1(quick: bool) -> String {
    let tasks = if quick { 150 } else { 500 };
    let task_s = 120.0;
    let mut out = String::from(
        "### DY-1 runtime adaptivity: static vs cloud-burst scale-out\n\n\
         | strategy | makespan (s) | pilots used | done |\n|---|---|---|---|\n",
    );
    for adaptive in [false, true] {
        let mut sys = SimPilotSystem::new(0xD71);
        sys.disable_trace();
        let hpc = sys.add_resource(common::quiet_hpc("hpc", 64));
        let cloud = sys.add_resource(common::cloud("burst", 512));
        sys.submit_pilot(
            SimTime::ZERO,
            hpc,
            PilotDescription::new(16, SimDuration::from_hours(24)).labeled("base"),
        );
        if adaptive {
            sys.set_scale_out(ScaleOutPolicy {
                check_every: SimDuration::from_secs(60),
                queue_threshold: 32,
                burst_site: cloud,
                pilot: PilotDescription::new(128, SimDuration::from_hours(8)).labeled("burst"),
                max_extra: 2,
            });
        }
        for _ in 0..tasks {
            sys.submit_unit_fixed(SimTime::from_secs(600), UnitDescription::new(1), task_s);
        }
        let report = sys.run(SimTime::from_hours(48));
        let done = report.count(UnitState::Done);
        out.push_str(&format!(
            "| {} | {:.0} | {} | {done}/{tasks} |\n",
            if adaptive {
                "adaptive (burst to cloud)"
            } else {
                "static (16-core pilot only)"
            },
            report.makespan(),
            report.pilots.len()
        ));
    }
    out.push_str("\n(the policy watches the pending queue and reacts at runtime — R3)\n");
    common::emit(out)
}
