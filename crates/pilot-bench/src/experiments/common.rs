//! Shared builders for experiment setups.

use pilot_core::describe::PilotDescription;
use pilot_core::scheduler::Scheduler;
use pilot_core::thread::ThreadPilotService;
use pilot_infra::cloud::{CloudConfig, CloudProvider};
use pilot_infra::hpc::{BackgroundLoad, HpcCluster, HpcConfig};
use pilot_infra::htc::{HtcConfig, HtcPool};
use pilot_infra::yarn::{YarnCluster, YarnConfig};
use pilot_saga::ResourceAdaptor;
use pilot_sim::{Dist, SimDuration};

/// A threaded service with one active pilot of `cores`.
pub fn thread_service(cores: u32, scheduler: Box<dyn Scheduler>) -> ThreadPilotService {
    let svc = ThreadPilotService::new(scheduler);
    let p = svc.submit_pilot(PilotDescription::new(cores, SimDuration::MAX).labeled("exp"));
    assert!(svc.wait_pilot_active(p), "pilot must activate");
    svc
}

/// A quiet HPC adaptor.
pub fn quiet_hpc(name: &str, cores: u32) -> ResourceAdaptor {
    ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(name, cores)))
}

/// An HPC adaptor with background load at the given utilization.
pub fn busy_hpc(name: &str, cores: u32, utilization: f64, seed: u64) -> ResourceAdaptor {
    let bg = BackgroundLoad::at_utilization(
        utilization,
        cores,
        Dist::uniform(4.0, 32.0),
        Dist::exponential(1800.0),
    );
    let mut cfg = HpcConfig::quiet(name, cores).with_background(bg);
    cfg.seed = seed;
    ResourceAdaptor::hpc(HpcCluster::new(cfg))
}

/// A reliable HTC pool adaptor.
pub fn htc_pool(name: &str, slots: u32) -> ResourceAdaptor {
    ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable(name, slots)))
}

/// A generic cloud adaptor.
pub fn cloud(name: &str, capacity: u32) -> ResourceAdaptor {
    ResourceAdaptor::cloud(CloudProvider::new(CloudConfig::generic(name, capacity)))
}

/// A YARN adaptor.
pub fn yarn(name: &str, vcores: u32) -> ResourceAdaptor {
    ResourceAdaptor::yarn(YarnCluster::new(YarnConfig::new(name, vcores)))
}

/// Print and return.
pub fn emit(report: String) -> String {
    println!("{report}");
    report
}
