//! FB-1: control-plane fabric failover — kill a host daemon mid-run,
//! measure the rebalance, verify exactly-once.
//!
//! N units spread across M pilots on K simulated host daemons, driven by the
//! fabric controller. Mid-run one daemon is turned into a zombie
//! ([`KillMode::Stall`]): it stops heartbeating but keeps binding and
//! completing units — the hardest case for the controller, because every
//! post-failover report from it arrives with a stale assignment epoch and
//! must be fenced (counted, never applied). The victim is drawn
//! deterministically from the FaultPlan's `host_daemon_mtbf_s` through the
//! reserved `DAEMON_KILL` stream, the same way RB-2 draws its broker kill,
//! so the failure replays with the seed.
//!
//! Reported: rebalance latency from last accepted heartbeat to (a) the
//! death declaration and (b) the first unit bound under the bumped epoch;
//! the fencing counters; and the exactly-once verdict (0 lost /
//! 0 duplicated), which is asserted, not just printed.

use super::common;
use pilot_core::describe::UnitDescription;
use pilot_core::fabric::{DaemonKillSchedule, Fabric, FabricConfig, KillMode, ScheduledKill};
use pilot_core::retry::{FaultPlan, RetryPolicy};
use pilot_core::WallClock;

/// FB-1: host-daemon kill mid-run on the sharded control plane.
pub fn run_fb1(quick: bool) -> String {
    let (n_daemons, n_shards, pilots_per_shard, n_units, run_ticks) = if quick {
        (4usize, 8u32, 4u32, 2_000u64, 20u64)
    } else {
        (16, 32, 16, 50_000, 20)
    };
    let cores_per_pilot = 8u32;
    let seed = 0x4b30;

    let mut config = FabricConfig {
        n_daemons,
        n_shards,
        pilots_per_shard,
        cores_per_pilot,
        tick_s: 0.01,
        heartbeat_every: 5,
        lapse_ticks: 15,
        max_ticks: 1_000_000,
        seed,
        faults: FaultPlan::none().with_daemon_kills(600.0),
        retry: RetryPolicy::fixed(4, 0.05),
        ..FabricConfig::default()
    };

    // Draw the victim from the DAEMON_KILL stream (deterministic, replays
    // with the seed), but pin the kill tick to mid-run: the fabric must be
    // at full rate when its manager dies.
    let schedule = DaemonKillSchedule::from_plan(&config.faults, seed, n_daemons, config.tick_s);
    let victim = schedule
        .ticks
        .iter()
        .enumerate()
        .filter_map(|(d, t)| t.map(|tick| (tick, d)))
        .min()
        .map(|(_, d)| d)
        .unwrap_or(0);
    let total_cores =
        u64::from(n_shards) * u64::from(pilots_per_shard) * u64::from(cores_per_pilot);
    let est_makespan_ticks = n_units.div_ceil(total_cores).max(1) * run_ticks;
    let kill_tick = (est_makespan_ticks / 2).max(1);
    // The plan-derived schedule is replaced by the pinned mid-run kill; the
    // plan's only remaining role is having seeded the victim draw.
    config.faults = FaultPlan::none();
    config.kills = vec![ScheduledKill {
        tick: kill_tick,
        daemon: victim,
        mode: KillMode::Stall,
    }];

    let units: Vec<(UnitDescription, u64)> = (0..n_units)
        .map(|_| (UnitDescription::new(1), run_ticks))
        .collect();

    let clock = WallClock::start();
    let report = Fabric::run(&config, units);
    let wall_s = clock.elapsed().as_secs_f64();

    let reb = report.rebalances.first();
    let declared = reb.map(|r| r.declared_tick).unwrap_or(0);
    let last_hb = reb.map(|r| r.last_heartbeat_tick).unwrap_or(0);
    let shards_moved = reb.map(|r| r.shards_moved).unwrap_or(0);
    let requeued = reb.map(|r| r.units_requeued).unwrap_or(0);
    let redispatched = reb.map(|r| r.units_redispatched).unwrap_or(0);
    let first_bind = reb.and_then(|r| r.first_bind_new_epoch_tick);
    let detect_ticks = declared.saturating_sub(last_hb);
    let rebind_ticks = report.max_rebalance_latency_ticks().unwrap_or(0);
    let first_bind_str = first_bind
        .map(|t| t.to_string())
        .unwrap_or_else(|| "-".to_string());

    let out = format!(
        "### FB-1 control-plane failover: host-daemon stall mid-run ({n_units} units x {} pilots x {n_daemons} daemons, {n_shards} shards)\n\n\
         | metric | value |\n|---|---|\n\
         | scheduled victim (seed {seed:#x} DAEMON_KILL draw) | daemon {victim}, stalled at tick {kill_tick} |\n\
         | last accepted heartbeat | tick {last_hb} |\n\
         | death declared (heartbeat lapse) | tick {declared} ({detect_ticks} ticks, {:.2} s virtual) |\n\
         | shards moved / epoch after | {shards_moved} / {} |\n\
         | first bind under bumped epoch | tick {first_bind_str} |\n\
         | rebalance latency (lapse to first new-epoch bind) | {rebind_ticks} ticks ({:.2} s virtual) |\n\
         | in-flight units requeued (charged) / redispatched (free) | {requeued} / {redispatched} |\n\
         | zombie post-failover binds fenced | {} |\n\
         | other stale-epoch reports fenced | {} |\n\
         | completed / lost / duplicated | {} / {} / {} |\n\
         | retries charged | {} |\n\
         | late-binding passes / binds | {} / {} |\n\
         | virtual ticks / wall time | {} / {wall_s:.2} s |\n",
        u64::from(n_shards) * u64::from(pilots_per_shard),
        detect_ticks as f64 * config.tick_s,
        report.max_epoch,
        rebind_ticks as f64 * config.tick_s,
        report.fenced_binds,
        report.fenced_reports,
        report.completed,
        report.lost,
        report.duplicates,
        report.retries_charged,
        report.bind_stats.passes,
        report.bind_stats.binds,
        report.ticks,
    );

    // Exactly-once and fencing are the acceptance bars, not soft metrics.
    assert_eq!(report.lost, 0, "units lost across the daemon stall");
    assert_eq!(report.duplicates, 0, "units completed twice");
    assert_eq!(
        report.daemons_declared_dead, 1,
        "the stalled daemon must be declared dead by heartbeat lapse"
    );
    assert!(report.max_epoch >= 2, "failover must bump the epoch");
    assert!(
        report.fenced_binds + report.fenced_reports > 0,
        "the zombie's post-failover reports must be fenced"
    );
    assert!(
        first_bind.is_some(),
        "work must resume under the bumped epoch"
    );
    common::emit(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fb1_quick_rebalances_exactly_once() {
        // The acceptance bars (0 lost, 0 duplicated, declared death, bumped
        // epoch, fenced zombie) are asserted inside run_fb1; surviving the
        // quick run is the regression check CI runs.
        let report = super::run_fb1(true);
        assert!(report.contains("| completed / lost / duplicated | 2000 / 0 / 0 |"));
        assert!(report.contains("first bind under bumped epoch | tick "));
    }
}
