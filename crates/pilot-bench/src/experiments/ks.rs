//! KS-1: intra-unit strong scaling — iterative K-Means where each compute
//! unit fans its assignment kernel over `threads-per-unit` workers via the
//! scoped `par` substrate (`Parallelism::from_ctx`).
//!
//! Sweeps dataset size × threads-per-unit and reports speedup and parallel
//! efficiency against the 1-thread run. The determinism contract makes the
//! sweep self-checking: every thread count must produce bit-identical
//! centroids.

use super::common;
use pilot_apps::kmeans::{
    assign_step, generate_blob_matrix, init_centroids, update_centroids, BlobConfig, Partial,
};
use pilot_apps::linalg::Matrix;
use pilot_core::{Parallelism, WallClock};
use pilot_memory::{CacheManager, CacheMode, IterativeExecutor, VecSource};
use std::sync::Arc;

/// Threads-per-unit sweep points.
const THREADS: [u32; 4] = [1, 2, 4, 8];

/// KS-1 driver.
pub fn run_ks1(quick: bool) -> String {
    let sizes: &[usize] = if quick { &[20_000] } else { &[50_000, 200_000] };
    let iters = if quick { 2 } else { 4 };
    let partitions = 4;

    let mut out = String::from(
        "### KS-1 K-Means strong scaling: threads-per-unit via the scoped `par` pool\n\n\
         Each of the 4 partition units runs the blocked SoA assignment kernel with\n\
         `Parallelism::from_ctx(ctx)`; `with_unit_cores(t)` sizes the reservation.\n\
         Efficiency = speedup / t. On a single-core host every t > 1 row measures\n\
         oversubscription overhead, not speedup — the centroid bit-identity check\n\
         is what must hold everywhere.\n\n\
         | points | threads/unit | wall (s) | speedup | efficiency |\n|---|---|---|---|---|\n",
    );

    for &n in sizes {
        let run_once = |t: u32| {
            let cfg = BlobConfig::new(8, 16, n, 0x4B53);
            let (points, _) = generate_blob_matrix(&cfg);
            let init = init_centroids(&points, cfg.k);
            let bands: Vec<Vec<Matrix>> = points
                .partition_rows(partitions)
                .into_iter()
                .map(|band| vec![band])
                .collect();
            let source = Arc::new(VecSource::from_partitions(bands));
            let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
            let svc = common::thread_service(8, Box::new(pilot_core::scheduler::FirstFitScheduler));
            let exec = IterativeExecutor::new(
                cache,
                |part: &[Matrix], c: &Matrix, par: &Parallelism| match part.first() {
                    Some(band) => assign_step(band, c, par),
                    None => Partial::zero(c.rows(), c.cols()),
                },
                |partials: Vec<Partial>, c: Matrix| update_centroids(&partials, &c).0,
            )
            .with_unit_cores(t);
            let clock = WallClock::start();
            let result = exec.run(&svc, init, iters, |_, _| false);
            let wall = clock.elapsed().as_secs_f64();
            svc.shutdown();
            (wall, result)
        };
        // Untimed warm-up so the first timed row doesn't pay first-touch
        // allocation and frequency-ramp costs the later rows skip.
        let _ = run_once(1);

        let mut base_s = 0.0f64;
        let mut reference: Option<Vec<f64>> = None;
        for &t in &THREADS {
            // Best-of-3: the minimum is the least contaminated by OS
            // scheduling noise on a shared host.
            let (mut wall, result) = run_once(t);
            for _ in 0..2 {
                wall = wall.min(run_once(t).0);
            }

            // Determinism contract: the per-partition partials have fixed
            // block boundaries and a left-fold merge, so the final centroids
            // cannot depend on the thread count.
            match &reference {
                None => reference = Some(result.state.as_slice().to_vec()),
                Some(r) => assert_eq!(
                    result.state.as_slice(),
                    &r[..],
                    "centroids diverged at {t} threads/unit"
                ),
            }

            if t == 1 {
                base_s = wall;
            }
            let speedup = base_s / wall.max(1e-9);
            out.push_str(&format!(
                "| {n} | {t} | {wall:.4} | {speedup:.2} | {:.2} |\n",
                speedup / t as f64
            ));
        }
        out.push('\n');
    }
    out.push_str("centroids bit-identical across all thread counts: yes\n");
    common::emit(out)
}
