//! PJ experiments: pilot overhead (PJ-1), task throughput (PJ-2), strong
//! scaling with the analytical model (PJ-3), and late binding vs. direct
//! submission (PJ-4) — the Table II "Pilot-Job" column.

use super::common;
use pilot_core::describe::{PilotDescription, UnitDescription};
use pilot_core::sim::SimPilotSystem;
use pilot_core::state::UnitState;
use pilot_core::thread::SyntheticKernel;
use pilot_core::WallClock;
use pilot_miniapp::{ExperimentSpec, Factor, ResultTable};
use pilot_perfmodel::ReplicaExchangeModel;
use pilot_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// PJ-1: pilot startup overhead across infrastructures and load levels
/// (simulated; pilots submitted after a warm-up so queues are realistic).
pub fn run_pj1(quick: bool) -> String {
    let reps = if quick { 2 } else { 5 };
    let spec = ExperimentSpec::new(
        "PJ-1 pilot startup overhead by infrastructure",
        vec![Factor::new("infra", &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0])],
        reps,
        0x9101,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let infra = trial.param_usize("infra");
        let mut sys = SimPilotSystem::new(trial.seed);
        sys.disable_trace();
        let (site, label, warmup_s) = match infra {
            0 => (
                sys.add_resource(common::quiet_hpc("hpc-idle", 256)),
                "hpc idle",
                0.0,
            ),
            1 => (
                sys.add_resource(common::busy_hpc("hpc-70", 256, 0.7, trial.seed)),
                "hpc util=0.70",
                20_000.0,
            ),
            2 => (
                sys.add_resource(common::busy_hpc("hpc-90", 256, 0.9, trial.seed)),
                "hpc util=0.90",
                20_000.0,
            ),
            3 => (
                sys.add_resource(common::htc_pool("htc", 256)),
                "htc pool",
                0.0,
            ),
            4 => (sys.add_resource(common::cloud("cloud", 512)), "cloud", 0.0),
            _ => (sys.add_resource(common::yarn("yarn", 256)), "yarn", 0.0),
        };
        let t0 = SimTime::from_secs_f64(warmup_s);
        sys.submit_pilot(
            t0,
            site,
            PilotDescription::new(64, SimDuration::from_hours(8)),
        );
        // One unit so the run has work, then measure the pilot timestamps.
        sys.submit_unit_fixed(t0, UnitDescription::new(1), 10.0);
        let report = sys.run(SimTime::from_hours(40));
        let startup = report.pilots[0]
            .times
            .startup_overhead()
            .unwrap_or(f64::NAN);
        let mut t2 = trial.clone();
        t2.config = vec![("infra".into(), infra as f64)];
        let _ = label;
        table.push(t2, vec![("startup_s".to_string(), startup)]);
    }
    let legend = "infra: 0=hpc idle, 1=hpc util 0.70, 2=hpc util 0.90, 3=htc, 4=cloud, 5=yarn\n";
    common::emit(format!("{legend}{}", table.to_markdown()))
}

/// PJ-2: task throughput through the *real* threaded middleware as task
/// granularity shrinks — the fine-grained, high-throughput regime.
pub fn run_pj2(quick: bool) -> String {
    let tasks = if quick { 100 } else { 400 };
    let spec = ExperimentSpec::new(
        "PJ-2 task throughput vs granularity (threaded backend)",
        vec![Factor::new("task_ms", &[0.0, 1.0, 5.0, 20.0])],
        if quick { 1 } else { 3 },
        0x9102,
    );
    let mut table = ResultTable::new(&spec.name);
    for trial in spec.trials() {
        let task_ms = trial.param("task_ms");
        let svc = common::thread_service(4, Box::new(pilot_core::scheduler::FirstFitScheduler));
        let t0 = WallClock::start();
        let units: Vec<_> = (0..tasks)
            .map(|_| {
                svc.submit_unit(
                    UnitDescription::new(1),
                    Arc::new(SyntheticKernel::new(task_ms / 1000.0)),
                )
            })
            .collect();
        for u in units {
            svc.wait_unit(u);
        }
        let elapsed = t0.elapsed_s();
        svc.shutdown();
        table.push(
            trial,
            vec![
                ("throughput_tasks_per_s".into(), tasks as f64 / elapsed),
                ("makespan_s".into(), elapsed),
            ],
        );
    }
    common::emit(table.to_markdown())
}

/// PJ-3: strong scaling of a replica-exchange ensemble (simulated phases,
/// so core counts beyond this host are measurable), overlaid with the
/// analytical model of \[72\].
pub fn run_pj3(quick: bool) -> String {
    let replicas = 32u32;
    let t_phase = 300.0;
    let phases = if quick { 2 } else { 8 };
    let t_exchange = 5.0;
    let mut out = String::from(
        "### PJ-3 replica-exchange strong scaling: measured (sim) vs analytical model\n\n\
         | cores | measured runtime (s) | model runtime (s) | error % | speedup | efficiency |\n\
         |---|---|---|---|---|---|\n",
    );
    let mut serial_measured = None;
    for cores in [1u32, 2, 4, 8, 16, 32, 64] {
        // Measure one phase as a bag of `replicas` fixed-duration units on a
        // `cores`-wide pilot, then compose E phases + exchange cost (phases
        // are identical and barrier-separated).
        let mut sys = SimPilotSystem::new(0x9103 + cores as u64);
        sys.disable_trace();
        let site = sys.add_resource(common::quiet_hpc("hpc", 256));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(cores, SimDuration::from_hours(200)),
        );
        for _ in 0..replicas {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), t_phase);
        }
        let report = sys.run(SimTime::from_hours(400));
        assert_eq!(report.count(UnitState::Done), replicas as usize);
        // Phase makespan excludes pilot startup (paid once).
        let startup = report.pilots[0].times.startup_overhead().unwrap_or(0.0);
        let phase_s = report.makespan() - startup;
        let measured = phases as f64 * (phase_s + t_exchange) + startup;
        let model = ReplicaExchangeModel {
            replicas,
            cores,
            cores_per_replica: 1,
            t_phase,
            t_exchange,
            phases: phases as u32,
            t_overhead: startup,
        };
        let predicted = model.runtime();
        let err = 100.0 * (measured - predicted).abs() / predicted;
        let serial = *serial_measured.get_or_insert(measured);
        let speedup = serial / measured;
        out.push_str(&format!(
            "| {cores} | {measured:.1} | {predicted:.1} | {err:.2} | {speedup:.2}x | {:.2} |\n",
            speedup / cores as f64
        ));
    }
    out.push_str("\n(model: E x (ceil(R/slots) x t_phase + t_exchange) + overhead)\n");
    common::emit(out)
}

/// PJ-4: late binding vs direct submission on a congested batch queue. The
/// pilot pays the queue once; direct submission pays it per task. Direct
/// jobs carry the walltime over-request real users make (4x), which is what
/// ruins their backfillability.
pub fn run_pj4(quick: bool) -> String {
    // Fine-grained tasks are where late binding is decisive: a batch system
    // imposes a scheduling-cycle latency (~30 s here, as in production
    // schedulers) and a minimum walltime on *every* job, while the pilot
    // pays them once. (With hour-long tasks both strategies are simply
    // capacity-bound and the difference shrinks — the paper's systems target
    // exactly this high-throughput, fine-grained regime, Section III-B.)
    let tasks = if quick { 300 } else { 2000 };
    let task_s = 3.0;
    let reps = if quick { 1 } else { 3 };
    let mut out = String::from(
        "### PJ-4 late binding: one pilot vs per-task batch jobs (hpc util 0.70, 2000 x 3 s tasks, 30 s scheduler cycle)\n\n\
         | strategy | makespan (s) | mean task wait (s) | p50 task wait (s) |\n|---|---|---|---|\n",
    );
    for (strategy, label) in [
        (0, "direct: one batch job per task"),
        (1, "pilot: 32 cores, late binding"),
    ] {
        let mut makespans = Vec::new();
        let mut waits = Vec::new();
        let mut medians = Vec::new();
        for rep in 0..reps {
            let seed = 0x9104 + rep as u64 * 977 + strategy as u64;
            let mut sys = SimPilotSystem::new(seed);
            sys.disable_trace();
            // Walltime-aware binding: never start work a placeholder cannot
            // finish (essential once placeholders have tight walltimes).
            sys.set_scheduler(Box::new(pilot_core::scheduler::BackfillScheduler::default()));
            // 256-core cluster, 70% utilized, 15-45 s scheduler cycles.
            let bg = pilot_infra::hpc::BackgroundLoad::at_utilization(
                0.7,
                256,
                pilot_sim::Dist::uniform(4.0, 32.0),
                pilot_sim::Dist::exponential(1800.0),
            );
            let mut cfg = pilot_infra::hpc::HpcConfig::quiet("hpc", 256).with_background(bg);
            cfg.dispatch_delay = pilot_sim::Dist::uniform(15.0, 45.0);
            cfg.seed = seed;
            let site = sys.add_resource(pilot_saga::ResourceAdaptor::hpc(
                pilot_infra::hpc::HpcCluster::new(cfg),
            ));
            let t0 = SimTime::from_secs(20_000); // queue warm-up
            if strategy == 0 {
                // Direct: every task is its own 1-core placeholder sized to
                // the task, entering the congested queue independently.
                for _ in 0..tasks {
                    sys.submit_pilot(
                        t0,
                        site,
                        // Batch minimum walltime: 60 s even for a 3 s task.
                        PilotDescription::new(
                            1,
                            SimDuration::from_secs_f64(f64::max(task_s * 4.0, 60.0)),
                        ),
                    );
                }
            } else {
                sys.submit_pilot(
                    t0,
                    site,
                    PilotDescription::new(32, SimDuration::from_hours(8)),
                );
            }
            for _ in 0..tasks {
                sys.submit_unit_fixed(t0, UnitDescription::new(1).with_estimate(task_s), task_s);
            }
            let report = sys.run(SimTime::from_hours(96));
            assert_eq!(
                report.count(UnitState::Done),
                tasks,
                "{label}: incomplete run"
            );
            makespans.push(report.makespan());
            let ws: Vec<f64> = report.units.iter().filter_map(|u| u.times.wait()).collect();
            waits.push(ws.iter().sum::<f64>() / ws.len() as f64);
            medians.push(pilot_sim::percentile(&ws, 50.0));
        }
        let mk = makespans.iter().sum::<f64>() / makespans.len() as f64;
        let w = waits.iter().sum::<f64>() / waits.len() as f64;
        let med = medians.iter().sum::<f64>() / medians.len() as f64;
        out.push_str(&format!("| {label} | {mk:.0} | {w:.0} | {med:.0} |\n"));
    }
    out.push_str(
        "\n(late binding amortizes the queue: once the pilot is up, the typical task\n\
         waits for a *slot turnover*, not for the batch queue — the p50 collapse)\n",
    );
    common::emit(out)
}
