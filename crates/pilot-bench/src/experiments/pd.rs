//! PD experiments: data-aware placement (PD-1) and replication (PD-2) —
//! the Table II "Pilot-Data" column.

use super::common;
use pilot_core::describe::{DataLocation, PilotDescription, UnitDescription};
use pilot_core::scheduler::{DataAwareScheduler, LoadBalanceScheduler, RandomScheduler, Scheduler};
use pilot_core::sim::SimPilotSystem;
use pilot_core::state::UnitState;
use pilot_data::{AffinityFirst, DataPilotDescription, DataService, DataUnitDescription};
use pilot_infra::network::NetworkModel;
use pilot_infra::types::SiteId;
use pilot_sim::{SimDuration, SimTime};

/// PD-1: the same data-intensive workload under three placement policies.
/// Inputs live on one of two sites; the data-aware scheduler avoids WAN
/// staging entirely.
pub fn run_pd1(quick: bool) -> String {
    let tasks = if quick { 40 } else { 200 };
    let input_mb = 500u64;
    let mut out = String::from(
        "### PD-1 data-aware vs data-oblivious placement (sim, 2 sites, 500 MB inputs)\n\n\
         | scheduler | makespan (s) | mean staging (s) | est. bytes moved (GB) |\n|---|---|---|---|\n",
    );
    let schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("random", Box::new(RandomScheduler::new(77))),
        ("load-balance", Box::new(LoadBalanceScheduler)),
        ("data-aware", Box::new(DataAwareScheduler::default())),
    ];
    for (name, sched) in schedulers {
        let mut sys = SimPilotSystem::new(0xAD1);
        sys.disable_trace();
        let a = sys.add_resource(common::quiet_hpc("site-a", 64));
        let b = sys.add_resource(common::quiet_hpc("site-b", 64));
        sys.set_scheduler(sched);
        for site in [a, b] {
            sys.submit_pilot(
                SimTime::ZERO,
                site,
                PilotDescription::new(16, SimDuration::from_hours(12)),
            );
        }
        // Half the datasets live at A, half at B.
        for i in 0..tasks {
            let home = if i % 2 == 0 { a } else { b };
            sys.submit_unit_fixed(
                SimTime::ZERO,
                UnitDescription::new(1)
                    .with_inputs(vec![DataLocation::new(input_mb * 1_000_000, vec![home])]),
                60.0,
            );
        }
        let report = sys.run(SimTime::from_hours(48));
        assert_eq!(report.count(UnitState::Done), tasks);
        let stagings: Vec<f64> = report
            .units
            .iter()
            .filter_map(|u| u.times.staging())
            .collect();
        let mean_staging = stagings.iter().sum::<f64>() / stagings.len() as f64;
        // Staging at 100 MB/s WAN ⇒ bytes ≈ staging x bandwidth.
        let moved_gb = stagings.iter().sum::<f64>() * 100e6 / 1e9;
        out.push_str(&format!(
            "| {name} | {:.0} | {mean_staging:.1} | {moved_gb:.1} |\n",
            report.makespan()
        ));
    }
    common::emit(out)
}

/// PD-2: replication factor vs read cost. Readers spread across four sites
/// fetch a dataset; each extra replica cuts remote reads.
pub fn run_pd2(quick: bool) -> String {
    let readers = if quick { 40 } else { 200 };
    let mb = 100usize;
    let mut out = String::from(
        "### PD-2 replication factor vs read cost (data service, 4 sites)\n\n\
         | replicas | remote reads | remote GB moved | virtual transfer s |\n|---|---|---|---|\n",
    );
    for replicas in 1u32..=4 {
        let net = NetworkModel::new(&["s0", "s1", "s2", "s3"]);
        let ds = DataService::new(net, Box::new(AffinityFirst));
        for s in 0..4u16 {
            ds.add_data_pilot(DataPilotDescription::new(SiteId(s), 10_000_000_000));
        }
        let du = ds
            .put(
                vec![0u8; mb * 1_000_000],
                DataUnitDescription::new()
                    .with_affinity(SiteId(0))
                    .with_replicas(replicas),
            )
            // lint: allow(panic, reason = "the experiment provisions stores sized for the dataset and its replicas two screens up")
            .expect("capacity available");
        let baseline = ds.ledger(); // replication traffic itself
        let replication_bytes = baseline.remote_bytes();
        for r in 0..readers {
            let site = SiteId((r % 4) as u16);
            // lint: allow(panic, reason = "the data-unit was put above and never evicted within this experiment")
            ds.fetch(du, site).expect("live dataset");
        }
        let ledger = ds.ledger();
        let read_bytes = ledger.remote_bytes() - replication_bytes;
        let remote_reads = read_bytes / (mb as u64 * 1_000_000);
        out.push_str(&format!(
            "| {replicas} | {remote_reads} | {:.1} | {:.1} |\n",
            read_bytes as f64 / 1e9,
            ledger.virtual_seconds()
        ));
    }
    out.push_str("\n(4 replicas ⇒ every reader site is local; remote reads drop to zero)\n");
    common::emit(out)
}
