//! # pilot-bench — the experiment harness
//!
//! One module per experiment family from DESIGN.md's per-experiment index;
//! the `experiments` binary dispatches to them. Every function takes a
//! `quick` flag (used by integration tests to downscale) and returns the
//! rendered report it also prints.
//!
//! | Module | Experiments | Backend |
//! |---|---|---|
//! | [`experiments::t1`] | T1 — five application scenarios | threaded |
//! | [`experiments::pj`] | PJ-1..4 — pilot overhead, throughput, scaling, late binding | both |
//! | [`experiments::pd`] | PD-1/2 — data-aware placement, replication | sim + data service |
//! | [`experiments::ph`] | PH-1/2 — MapReduce phases, combiner, alignment | threaded |
//! | [`experiments::pm`] | PM-1 — iterative caching | threaded |
//! | [`experiments::ks`] | KS-1 — intra-unit strong scaling | threaded |
//! | [`experiments::ps`] | PS-1/2 — streaming throughput/latency + statistical model | threaded |
//! | [`experiments::st`] | ST-1 — batched vs per-message data-plane throughput | threaded |
//! | [`experiments::io_dy`] | IO-1, DY-1 — interoperability, adaptivity | sim |
//! | [`experiments::ab`] | AB-1/2 — scheduler & algorithm ablations | sim + threaded |
//! | [`experiments::f5`] | F5 — automated build-assess-refine loop | threaded |

pub mod experiments;
