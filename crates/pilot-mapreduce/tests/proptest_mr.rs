//! Property test: the pilot-backed MapReduce equals the sequential reference
//! on arbitrary inputs, split counts, reducer counts, and combiner choice.

use pilot_core::describe::PilotDescription;
use pilot_core::thread::ThreadPilotService;
use pilot_mapreduce::MapReduceJob;
use pilot_sim::SimDuration;
use proptest::prelude::*;

fn svc() -> ThreadPilotService {
    let s = ThreadPilotService::new(Box::new(pilot_core::scheduler::FirstFitScheduler));
    let p = s.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
    assert!(s.wait_pilot_active(p));
    s
}

proptest! {
    // Each case spins up a real service; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_equals_sequential(
        values in prop::collection::vec(0u32..1000, 0..300),
        splits in 1usize..9,
        reducers in 1usize..6,
        use_combiner in proptest::bool::ANY,
    ) {
        // Job: histogram of v % 17, reduced as (count, sum).
        let build = || {
            let job = MapReduceJob::new(
                MapReduceJob::<u32, u32, u64, (u64, u64)>::split_input(values.clone(), splits),
                |v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(v % 17, u64::from(*v)),
                |_k, vs: Vec<u64>| (vs.len() as u64, vs.iter().sum::<u64>()),
                reducers,
            );
            if use_combiner {
                // Combiner over V=u64 must be a semigroup compatible with the
                // reduce; sum is, count is derived after. To keep reduce
                // correct under combining, combine by sum and emit counts via
                // a second key space is overkill — instead use a sum-only
                // reduce when combining.
                job
            } else {
                job
            }
        };
        let job = build();
        let s = svc();
        let report = job.run(&s);
        s.shutdown();
        prop_assert_eq!(report.failed_units, 0);
        let expected = job.run_sequential();
        prop_assert_eq!(report.output, expected);
        // split_input chunks by ceil(len/n); the resulting split count is
        // ceil(len/chunk), which can be below `splits` (e.g. 13 items into 6
        // splits gives 5 chunks of ≤3).
        let chunk = values.len().div_ceil(splits).max(1);
        let expected_splits = values.len().div_ceil(chunk).max(1);
        prop_assert_eq!(report.map_tasks, expected_splits);
        prop_assert_eq!(report.reduce_tasks, reducers);
    }

    #[test]
    fn parallel_shuffle_bit_identical_for_random_keys(
        values in prop::collection::vec((0u32..500, -1.0f64..1.0), 0..400),
        splits in 1usize..7,
        reducers in 1usize..9,
        threads in 1usize..9,
        block in 1usize..33,
    ) {
        // String keys from a skewed space, f64 values, and an
        // order-sensitive non-associative fold: any deviation from the
        // sequential grouping — wrong partition, unstable sort, reordered
        // merge — changes the output bits.
        let build = || MapReduceJob::new(
            MapReduceJob::<(u32, f64), String, f64, f64>::split_input(values.clone(), splits),
            |r: &(u32, f64), emit: &mut dyn FnMut(String, f64)| {
                emit(format!("k{:03}", r.0 % 53), r.1);
            },
            |_k, vs: Vec<f64>| vs.iter().fold(0.25f64, |acc, v| acc * 0.75 + v),
            reducers,
        );
        let job = build()
            .with_shuffle_threads(threads)
            .with_shuffle_block(block); // tiny blocks force real merges
        let s = svc();
        let report = job.run(&s);
        s.shutdown();
        prop_assert_eq!(report.failed_units, 0);
        let expected = build().run_sequential();
        prop_assert_eq!(report.output.len(), expected.len());
        for (got, want) in report.output.iter().zip(expected.iter()) {
            prop_assert_eq!(&got.0, &want.0);
            prop_assert_eq!(
                got.1.to_bits(),
                want.1.to_bits(),
                "key {} must reduce bit-identically",
                got.0
            );
        }
    }

    #[test]
    fn combiner_preserves_sum_semantics(
        values in prop::collection::vec(0u32..1000, 0..300),
        splits in 1usize..9,
    ) {
        let mk = |combine: bool| {
            let job = MapReduceJob::new(
                MapReduceJob::<u32, u32, u64, u64>::split_input(values.clone(), splits),
                |v: &u32, emit: &mut dyn FnMut(u32, u64)| emit(v % 5, u64::from(*v)),
                |_k, vs: Vec<u64>| vs.iter().sum::<u64>(),
                3,
            );
            if combine {
                job.with_combiner(|_k, vs| vs.iter().sum::<u64>())
            } else {
                job
            }
        };
        let s = svc();
        let plain = mk(false).run(&s);
        let combined = mk(true).run(&s);
        s.shutdown();
        prop_assert_eq!(&plain.output, &combined.output);
        prop_assert_eq!(plain.output, mk(false).run_sequential());
        // The combiner can only shrink the shuffle.
        prop_assert!(combined.shuffled_pairs <= plain.shuffled_pairs);
    }
}
