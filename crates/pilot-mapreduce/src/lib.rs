//! # pilot-mapreduce — an extensible MapReduce on the pilot-abstraction
//!
//! Implements Pilot-MapReduce (\[54\] in the paper): the data-parallel pattern
//! of Table I expressed as pilot compute units, so the *same* resource
//! placeholder that runs simulations also runs map and reduce tasks — no
//! separate Hadoop deployment. Phases:
//!
//! 1. **Map** — one compute unit per input split; the user's map function
//!    emits `(key, value)` pairs, hash-partitioned for the reducers, with an
//!    optional combiner applied map-side to cut shuffle volume.
//! 2. **Shuffle** — the driver regroups map outputs by reducer partition
//!    (in-memory; the ledger-accounted distributed variant goes through
//!    `pilot-data`).
//! 3. **Reduce** — one compute unit per partition; values are grouped per
//!    key in sorted order and folded by the user's reduce function.
//!
//! Determinism: output pairs are sorted by key, and the phase structure adds
//! no ordering dependence, so any run equals the sequential reference — the
//! property the proptest suite pins down.

pub mod job;

pub use job::{MapReduceJob, MapReduceReport, PhaseTimes};
