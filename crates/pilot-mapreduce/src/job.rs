//! The MapReduce job driver.

use pilot_core::describe::UnitDescription;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskError, TaskOutput, ThreadPilotService};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock seconds spent in each phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Map phase (submit → last map unit done).
    pub map_s: f64,
    /// Driver-side shuffle regrouping.
    pub shuffle_s: f64,
    /// Reduce phase.
    pub reduce_s: f64,
}

impl PhaseTimes {
    /// Total job time.
    pub fn total_s(&self) -> f64 {
        self.map_s + self.shuffle_s + self.reduce_s
    }
}

/// Result and measurements of one job run.
#[derive(Debug)]
pub struct MapReduceReport<K, O> {
    /// `(key, reduced value)` pairs, sorted by key.
    pub output: Vec<(K, O)>,
    /// Phase timings.
    pub times: PhaseTimes,
    /// Map tasks run.
    pub map_tasks: usize,
    /// Reduce tasks run.
    pub reduce_tasks: usize,
    /// Intermediate pairs after the (optional) combiner.
    pub shuffled_pairs: u64,
    /// Map or reduce units that failed (job still completes best-effort).
    pub failed_units: usize,
}

type MapFn<I, K, V> = Arc<dyn Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync>;
type FoldFn<K, V, O> = Arc<dyn Fn(&K, Vec<V>) -> O + Send + Sync>;

/// A configured MapReduce job. See the [crate docs](crate).
pub struct MapReduceJob<I, K, V, O> {
    splits: Vec<Arc<Vec<I>>>,
    map_fn: MapFn<I, K, V>,
    combine_fn: Option<FoldFn<K, V, V>>,
    reduce_fn: FoldFn<K, V, O>,
    reducers: usize,
}

fn hash_key<K: Hash>(k: &K) -> u64 {
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

impl<I, K, V, O> MapReduceJob<I, K, V, O>
where
    I: Send + Sync + 'static,
    K: Ord + Hash + Clone + Send + 'static,
    V: Send + 'static,
    O: Send + 'static,
{
    /// Build a job over pre-partitioned input splits.
    pub fn new(
        splits: Vec<Arc<Vec<I>>>,
        map_fn: impl Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync + 'static,
        reduce_fn: impl Fn(&K, Vec<V>) -> O + Send + Sync + 'static,
        reducers: usize,
    ) -> Self {
        MapReduceJob {
            splits,
            map_fn: Arc::new(map_fn),
            combine_fn: None,
            reduce_fn: Arc::new(reduce_fn),
            reducers: reducers.max(1),
        }
    }

    /// Split a flat input into `n` near-equal splits.
    pub fn split_input(data: Vec<I>, n: usize) -> Vec<Arc<Vec<I>>>
    where
        I: Clone,
    {
        let n = n.max(1);
        let chunk = data.len().div_ceil(n).max(1);
        data.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect()
    }

    /// Install a map-side combiner (same signature as reduce over `V`).
    pub fn with_combiner(
        mut self,
        combine: impl Fn(&K, Vec<V>) -> V + Send + Sync + 'static,
    ) -> Self {
        self.combine_fn = Some(Arc::new(combine));
        self
    }

    /// Run on an active pilot service.
    pub fn run(&self, svc: &ThreadPilotService) -> MapReduceReport<K, O> {
        let reducers = self.reducers;
        let mut failed_units = 0usize;

        // ---- map phase -----------------------------------------------------
        let t_map = Instant::now();
        let map_units: Vec<_> = self
            .splits
            .iter()
            .map(|split| {
                let split = Arc::clone(split);
                let map_fn = Arc::clone(&self.map_fn);
                let combine = self.combine_fn.clone();
                svc.submit_unit(
                    UnitDescription::new(1).tagged("map"),
                    kernel_fn(move |_| {
                        let mut partitions: Vec<Vec<(K, V)>> =
                            (0..reducers).map(|_| Vec::new()).collect();
                        for record in split.iter() {
                            map_fn(record, &mut |k: K, v: V| {
                                let p = (hash_key(&k) % reducers as u64) as usize;
                                partitions[p].push((k, v));
                            });
                        }
                        if let Some(combine) = &combine {
                            for part in &mut partitions {
                                let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
                                for (k, v) in part.drain(..) {
                                    grouped.entry(k).or_default().push(v);
                                }
                                *part = grouped
                                    .into_iter()
                                    .map(|(k, vs)| {
                                        let c = combine(&k, vs);
                                        (k, c)
                                    })
                                    .collect();
                            }
                        }
                        Ok(TaskOutput::of(partitions))
                    }),
                )
            })
            .collect();
        let mut map_outputs: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(map_units.len());
        for u in map_units {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
            let out = svc.wait_unit(u).expect("unit issued by this service");
            match (out.state, out.output) {
                (UnitState::Done, Some(Ok(o))) => {
                    if let Ok(parts) = o.downcast::<Vec<Vec<(K, V)>>>() {
                        map_outputs.push(parts);
                    } else {
                        failed_units += 1;
                    }
                }
                _ => failed_units += 1,
            }
        }
        let map_s = t_map.elapsed().as_secs_f64();

        // ---- shuffle ---------------------------------------------------------
        let t_shuffle = Instant::now();
        let mut shuffled: Vec<Vec<(K, V)>> = (0..reducers).map(|_| Vec::new()).collect();
        let mut shuffled_pairs = 0u64;
        for mut parts in map_outputs {
            for (r, part) in parts.drain(..).enumerate() {
                shuffled_pairs += part.len() as u64;
                shuffled[r].extend(part);
            }
        }
        let shuffle_s = t_shuffle.elapsed().as_secs_f64();

        // ---- reduce phase ----------------------------------------------------
        let t_reduce = Instant::now();
        let reduce_units: Vec<_> = shuffled
            .into_iter()
            .map(|part| {
                let reduce_fn = Arc::clone(&self.reduce_fn);
                // Kernels are `Fn` but each reduce kernel runs exactly once;
                // a Mutex<Option<..>> lets it take ownership of its partition
                // without requiring `V: Clone`.
                let part = std::sync::Mutex::new(Some(part));
                svc.submit_unit(
                    UnitDescription::new(1).tagged("reduce"),
                    kernel_fn(move |_| {
                        let part = part
                            .lock()
                            // lint: allow(panic, reason = "the only other lock site is this same take(), which cannot panic while holding the guard")
                            .expect("no panics hold this lock")
                            .take()
                            .ok_or_else(|| TaskError("reduce partition consumed twice".into()))?;
                        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
                        for (k, v) in part {
                            grouped.entry(k).or_default().push(v);
                        }
                        let out: Vec<(K, O)> = grouped
                            .into_iter()
                            .map(|(k, vs)| {
                                let o = reduce_fn(&k, vs);
                                (k, o)
                            })
                            .collect();
                        Ok(TaskOutput::of(out))
                    }),
                )
            })
            .collect();
        let mut output: Vec<(K, O)> = Vec::new();
        for u in reduce_units {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
            let out = svc.wait_unit(u).expect("unit issued by this service");
            match (out.state, out.output) {
                (UnitState::Done, Some(Ok(o))) => {
                    if let Ok(mut pairs) = o.downcast::<Vec<(K, O)>>() {
                        output.append(&mut pairs);
                    } else {
                        failed_units += 1;
                    }
                }
                _ => failed_units += 1,
            }
        }
        output.sort_by(|a, b| a.0.cmp(&b.0));
        let reduce_s = t_reduce.elapsed().as_secs_f64();

        MapReduceReport {
            output,
            times: PhaseTimes {
                map_s,
                shuffle_s,
                reduce_s,
            },
            map_tasks: self.splits.len(),
            reduce_tasks: reducers,
            shuffled_pairs,
            failed_units,
        }
    }

    /// Sequential reference implementation (for verification).
    pub fn run_sequential(&self) -> Vec<(K, O)> {
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for split in &self.splits {
            for record in split.iter() {
                (self.map_fn)(record, &mut |k: K, v: V| {
                    grouped.entry(k).or_default().push(v);
                });
            }
        }
        grouped
            .into_iter()
            .map(|(k, vs)| {
                let o = (self.reduce_fn)(&k, vs);
                (k, o)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::describe::PilotDescription;
    use pilot_core::scheduler::FirstFitScheduler;
    use pilot_sim::SimDuration;

    fn svc(cores: u32) -> ThreadPilotService {
        let s = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
        assert!(s.wait_pilot_active(p));
        s
    }

    fn wordcount_job(
        text: Vec<String>,
        splits: usize,
        reducers: usize,
    ) -> MapReduceJob<String, String, u64, u64> {
        MapReduceJob::new(
            MapReduceJob::<String, String, u64, u64>::split_input(text, splits),
            |line: &String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |_k, vs| vs.iter().sum(),
            reducers,
        )
    }

    #[test]
    fn wordcount_matches_reference() {
        let text: Vec<String> = vec![
            "the quick brown fox".into(),
            "the lazy dog".into(),
            "the quick dog".into(),
        ];
        let job = wordcount_job(text, 2, 2);
        let s = svc(4);
        let report = job.run(&s);
        assert_eq!(report.failed_units, 0);
        assert_eq!(report.output, job.run_sequential());
        let the = report.output.iter().find(|(k, _)| k == "the").unwrap();
        assert_eq!(the.1, 3);
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.reduce_tasks, 2);
        s.shutdown();
    }

    #[test]
    fn combiner_cuts_shuffle_volume_not_results() {
        let text: Vec<String> = (0..50).map(|_| "a a a b".to_string()).collect();
        let plain = wordcount_job(text.clone(), 4, 2);
        let combined = wordcount_job(text, 4, 2).with_combiner(|_k, vs| vs.iter().sum());
        let s = svc(4);
        let r_plain = plain.run(&s);
        let r_comb = combined.run(&s);
        assert_eq!(r_plain.output, r_comb.output);
        // 200 'a' + 50 'b' pairs uncombined; ≤ 2 keys × 4 maps combined.
        assert_eq!(r_plain.shuffled_pairs, 200);
        assert!(r_comb.shuffled_pairs <= 8, "got {}", r_comb.shuffled_pairs);
        s.shutdown();
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let job = wordcount_job(vec![], 3, 2);
        let s = svc(2);
        let report = job.run(&s);
        assert!(report.output.is_empty());
        assert_eq!(report.failed_units, 0);
        s.shutdown();
    }

    #[test]
    fn single_reducer_and_many_reducers_agree() {
        let text: Vec<String> = (0..30)
            .map(|i| format!("w{} w{} shared", i % 7, i % 3))
            .collect();
        let s = svc(4);
        let one = wordcount_job(text.clone(), 3, 1).run(&s);
        let many = wordcount_job(text, 3, 8).run(&s);
        assert_eq!(one.output, many.output);
        s.shutdown();
    }

    #[test]
    fn numeric_keys_and_custom_reduce() {
        // Histogram of i mod 5, reduce = max of values.
        let data: Vec<u32> = (0..100).collect();
        let job = MapReduceJob::new(
            MapReduceJob::<u32, u32, u32, u32>::split_input(data, 4),
            |x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(x % 5, *x),
            |_k, vs| *vs.iter().max().expect("non-empty group"),
            3,
        );
        let s = svc(4);
        let report = job.run(&s);
        assert_eq!(report.output.len(), 5);
        // Max value with x % 5 == 0 in 0..100 is 95.
        assert_eq!(report.output[0], (0, 95));
        assert_eq!(report.output, job.run_sequential());
        s.shutdown();
    }

    #[test]
    fn phase_times_are_populated() {
        let text: Vec<String> = (0..20).map(|_| "x y z".to_string()).collect();
        let job = wordcount_job(text, 4, 2);
        let s = svc(4);
        let report = job.run(&s);
        assert!(report.times.map_s > 0.0);
        assert!(report.times.reduce_s > 0.0);
        assert!(report.times.total_s() >= report.times.map_s);
        s.shutdown();
    }
}
