//! The MapReduce job driver.

use pilot_core::describe::UnitDescription;
use pilot_core::par::Parallelism;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskError, TaskOutput, ThreadPilotService};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// One shuffled record: precomputed key hash (the partitioning/sort radix),
/// key, value. Mappers emit these so the hash is computed exactly once.
type Triple<K, V> = (u64, K, V);

/// One shuffle block awaiting its sort: the `Mutex<Option<..>>` hands
/// ownership to exactly one `Fn` sorter without `Clone` bounds.
type BlockSlot<K, V> = std::sync::Mutex<Option<Vec<Triple<K, V>>>>;

/// Wall-clock seconds spent in each phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Map phase (submit → last map unit done).
    pub map_s: f64,
    /// Driver-side shuffle regrouping.
    pub shuffle_s: f64,
    /// Reduce phase.
    pub reduce_s: f64,
}

impl PhaseTimes {
    /// Total job time.
    pub fn total_s(&self) -> f64 {
        self.map_s + self.shuffle_s + self.reduce_s
    }
}

/// Result and measurements of one job run.
#[derive(Debug)]
pub struct MapReduceReport<K, O> {
    /// `(key, reduced value)` pairs, sorted by key.
    pub output: Vec<(K, O)>,
    /// Phase timings.
    pub times: PhaseTimes,
    /// Map tasks run.
    pub map_tasks: usize,
    /// Reduce tasks run.
    pub reduce_tasks: usize,
    /// Intermediate pairs after the (optional) combiner.
    pub shuffled_pairs: u64,
    /// Map or reduce units that failed (job still completes best-effort).
    pub failed_units: usize,
}

type MapFn<I, K, V> = Arc<dyn Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync>;
type FoldFn<K, V, O> = Arc<dyn Fn(&K, Vec<V>) -> O + Send + Sync>;

/// A configured MapReduce job. See the [crate docs](crate).
pub struct MapReduceJob<I, K, V, O> {
    splits: Vec<Arc<Vec<I>>>,
    map_fn: MapFn<I, K, V>,
    combine_fn: Option<FoldFn<K, V, V>>,
    reduce_fn: FoldFn<K, V, O>,
    reducers: usize,
    shuffle_threads: usize,
    shuffle_block: usize,
}

fn hash_key<K: Hash>(k: &K) -> u64 {
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// `(hash, key)` ordering for the sort-based shuffle: hash first (cheap u64
/// radix), key as tie-break so hash collisions still group correctly.
fn triple_cmp<K: Ord, V>(a: &Triple<K, V>, b: &Triple<K, V>) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1))
}

/// Merge two sorted runs, preferring the left run on ties. Combined with
/// stable per-block sorts, a left fold of this merge in block order is a
/// *global stable sort* — per-key value order equals global input order,
/// independent of block boundaries or thread count.
fn merge_runs<K: Ord, V>(a: Vec<Triple<K, V>>, b: Vec<Triple<K, V>>) -> Vec<Triple<K, V>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter();
    let mut bi = b.into_iter();
    let mut na = ai.next();
    let mut nb = bi.next();
    loop {
        match (na.take(), nb.take()) {
            (Some(x), Some(y)) => {
                if triple_cmp(&x, &y) != std::cmp::Ordering::Greater {
                    out.push(x);
                    na = ai.next();
                    nb = Some(y);
                } else {
                    out.push(y);
                    nb = bi.next();
                    na = Some(x);
                }
            }
            (Some(x), None) => {
                out.push(x);
                out.extend(ai);
                break;
            }
            (None, Some(y)) => {
                out.push(y);
                out.extend(bi);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

impl<I, K, V, O> MapReduceJob<I, K, V, O>
where
    I: Send + Sync + 'static,
    K: Ord + Hash + Clone + Send + 'static,
    V: Send + 'static,
    O: Send + 'static,
{
    /// Build a job over pre-partitioned input splits.
    pub fn new(
        splits: Vec<Arc<Vec<I>>>,
        map_fn: impl Fn(&I, &mut dyn FnMut(K, V)) + Send + Sync + 'static,
        reduce_fn: impl Fn(&K, Vec<V>) -> O + Send + Sync + 'static,
        reducers: usize,
    ) -> Self {
        MapReduceJob {
            splits,
            map_fn: Arc::new(map_fn),
            combine_fn: None,
            reduce_fn: Arc::new(reduce_fn),
            reducers: reducers.max(1),
            shuffle_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            shuffle_block: 8192,
        }
    }

    /// Split a flat input into `n` near-equal splits.
    pub fn split_input(data: Vec<I>, n: usize) -> Vec<Arc<Vec<I>>>
    where
        I: Clone,
    {
        let n = n.max(1);
        let chunk = data.len().div_ceil(n).max(1);
        data.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect()
    }

    /// Install a map-side combiner (same signature as reduce over `V`).
    pub fn with_combiner(
        mut self,
        combine: impl Fn(&K, Vec<V>) -> V + Send + Sync + 'static,
    ) -> Self {
        self.combine_fn = Some(Arc::new(combine));
        self
    }

    /// Worker threads for the driver-side sort shuffle (default: available
    /// parallelism capped at 8). Output is bit-identical for any value.
    pub fn with_shuffle_threads(mut self, threads: usize) -> Self {
        self.shuffle_threads = threads.max(1);
        self
    }

    /// Records per shuffle sort block (default 8192). Smaller blocks mean
    /// more parallel sort work and more merge passes; output is
    /// bit-identical for any value — tests shrink it to force multi-block
    /// merges on small inputs.
    pub fn with_shuffle_block(mut self, block: usize) -> Self {
        self.shuffle_block = block.max(1);
        self
    }

    /// Run on an active pilot service.
    pub fn run(&self, svc: &ThreadPilotService) -> MapReduceReport<K, O> {
        let reducers = self.reducers;
        let mut failed_units = 0usize;

        // ---- map phase -----------------------------------------------------
        let t_map = Instant::now();
        let map_units: Vec<_> = self
            .splits
            .iter()
            .map(|split| {
                let split = Arc::clone(split);
                let map_fn = Arc::clone(&self.map_fn);
                let combine = self.combine_fn.clone();
                svc.submit_unit(
                    UnitDescription::new(1).tagged("map"),
                    kernel_fn(move |_| {
                        // Mappers emit (hash, key, value) so the shuffle's
                        // sort radix is computed exactly once, in parallel.
                        let mut partitions: Vec<Vec<Triple<K, V>>> =
                            (0..reducers).map(|_| Vec::new()).collect();
                        for record in split.iter() {
                            map_fn(record, &mut |k: K, v: V| {
                                let h = hash_key(&k);
                                let p = (h % reducers as u64) as usize;
                                partitions[p].push((h, k, v));
                            });
                        }
                        if let Some(combine) = &combine {
                            for part in &mut partitions {
                                let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
                                for (_h, k, v) in part.drain(..) {
                                    grouped.entry(k).or_default().push(v);
                                }
                                *part = grouped
                                    .into_iter()
                                    .map(|(k, vs)| {
                                        let c = combine(&k, vs);
                                        (hash_key(&k), k, c)
                                    })
                                    .collect();
                            }
                        }
                        Ok(TaskOutput::of(partitions))
                    }),
                )
            })
            .collect();
        let mut map_outputs: Vec<Vec<Vec<Triple<K, V>>>> = Vec::with_capacity(map_units.len());
        for u in map_units {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
            let out = svc.wait_unit(u).expect("unit issued by this service");
            match (out.state, out.output) {
                (UnitState::Done, Some(Ok(o))) => {
                    if let Ok(parts) = o.downcast::<Vec<Vec<Triple<K, V>>>>() {
                        map_outputs.push(parts);
                    } else {
                        failed_units += 1;
                    }
                }
                _ => failed_units += 1,
            }
        }
        let map_s = t_map.elapsed().as_secs_f64();

        // ---- shuffle: parallel sort-based regroup ----------------------------
        // Concatenate each reducer's pairs in map-task order (= global input
        // order), stable-sort fixed-size blocks over the worker pool, then
        // left-fold merge the sorted blocks in order. Stable block sorts +
        // a left-preferring merge compose to a global stable sort by
        // (hash, key), so per-key value order equals global input order and
        // the output is bit-identical to `run_sequential` for any thread
        // count or block size.
        let t_shuffle = Instant::now();
        let mut shuffled_pairs = 0u64;
        let mut per_reducer: Vec<Vec<Triple<K, V>>> = (0..reducers).map(|_| Vec::new()).collect();
        for mut parts in map_outputs {
            for (r, part) in parts.drain(..).enumerate() {
                shuffled_pairs += part.len() as u64;
                per_reducer[r].extend(part);
            }
        }
        let pool = Parallelism::new(self.shuffle_threads);
        let block = self.shuffle_block;
        let shuffled: Vec<Vec<Triple<K, V>>> = per_reducer
            .into_iter()
            .map(|mut part| {
                // Chop into blocks from the back (O(block) per split_off),
                // then restore front-to-back order. Kernels are `Fn`, so a
                // Mutex<Option<..>> hands each block to exactly one sorter
                // without `K: Clone`/`V: Clone`.
                let mut blocks: Vec<BlockSlot<K, V>> = Vec::new();
                while part.len() > block {
                    let tail = part.split_off(part.len() - block);
                    blocks.push(BlockSlot::new(Some(tail)));
                }
                blocks.push(BlockSlot::new(Some(part)));
                blocks.reverse();
                pool.par_map_reduce(
                    &blocks,
                    1,
                    |_, slot| {
                        let mut run = slot[0]
                            .lock()
                            // lint: allow(panic, reason = "sort_by on (u64, K, V) cannot unwind unless K::cmp panics, and each slot is locked by exactly one block job")
                            .expect("block sorter never poisons")
                            .take()
                            .unwrap_or_default();
                        run.sort_by(triple_cmp); // stable
                        run
                    },
                    merge_runs,
                )
                .unwrap_or_default()
            })
            .collect();
        let shuffle_s = t_shuffle.elapsed().as_secs_f64();

        // ---- reduce phase ----------------------------------------------------
        let t_reduce = Instant::now();
        let reduce_units: Vec<_> = shuffled
            .into_iter()
            .map(|part| {
                let reduce_fn = Arc::clone(&self.reduce_fn);
                // Kernels are `Fn` but each reduce kernel runs exactly once;
                // a Mutex<Option<..>> lets it take ownership of its partition
                // without requiring `V: Clone`.
                let part = std::sync::Mutex::new(Some(part));
                svc.submit_unit(
                    UnitDescription::new(1).tagged("reduce"),
                    kernel_fn(move |_| {
                        let part = part
                            .lock()
                            // lint: allow(panic, reason = "the only other lock site is this same take(), which cannot panic while holding the guard")
                            .expect("no panics hold this lock")
                            .take()
                            .ok_or_else(|| TaskError("reduce partition consumed twice".into()))?;
                        // The partition arrives sorted by (hash, key) with
                        // per-key values in global input order; a linear scan
                        // over consecutive equal keys replaces the old
                        // BTreeMap regroup.
                        let mut out: Vec<(K, O)> = Vec::new();
                        let mut cur_key: Option<K> = None;
                        let mut cur_vals: Vec<V> = Vec::new();
                        for (_h, k, v) in part {
                            match &cur_key {
                                Some(ck) if *ck == k => cur_vals.push(v),
                                _ => {
                                    if let Some(ck) = cur_key.take() {
                                        let o = reduce_fn(&ck, std::mem::take(&mut cur_vals));
                                        out.push((ck, o));
                                    }
                                    cur_key = Some(k);
                                    cur_vals.push(v);
                                }
                            }
                        }
                        if let Some(ck) = cur_key {
                            let o = reduce_fn(&ck, cur_vals);
                            out.push((ck, o));
                        }
                        Ok(TaskOutput::of(out))
                    }),
                )
            })
            .collect();
        let mut output: Vec<(K, O)> = Vec::new();
        for u in reduce_units {
            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
            let out = svc.wait_unit(u).expect("unit issued by this service");
            match (out.state, out.output) {
                (UnitState::Done, Some(Ok(o))) => {
                    if let Ok(mut pairs) = o.downcast::<Vec<(K, O)>>() {
                        output.append(&mut pairs);
                    } else {
                        failed_units += 1;
                    }
                }
                _ => failed_units += 1,
            }
        }
        output.sort_by(|a, b| a.0.cmp(&b.0));
        let reduce_s = t_reduce.elapsed().as_secs_f64();

        MapReduceReport {
            output,
            times: PhaseTimes {
                map_s,
                shuffle_s,
                reduce_s,
            },
            map_tasks: self.splits.len(),
            reduce_tasks: reducers,
            shuffled_pairs,
            failed_units,
        }
    }

    /// Sequential reference implementation (for verification).
    pub fn run_sequential(&self) -> Vec<(K, O)> {
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for split in &self.splits {
            for record in split.iter() {
                (self.map_fn)(record, &mut |k: K, v: V| {
                    grouped.entry(k).or_default().push(v);
                });
            }
        }
        grouped
            .into_iter()
            .map(|(k, vs)| {
                let o = (self.reduce_fn)(&k, vs);
                (k, o)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::describe::PilotDescription;
    use pilot_core::scheduler::FirstFitScheduler;
    use pilot_sim::SimDuration;

    fn svc(cores: u32) -> ThreadPilotService {
        let s = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
        assert!(s.wait_pilot_active(p));
        s
    }

    fn wordcount_job(
        text: Vec<String>,
        splits: usize,
        reducers: usize,
    ) -> MapReduceJob<String, String, u64, u64> {
        MapReduceJob::new(
            MapReduceJob::<String, String, u64, u64>::split_input(text, splits),
            |line: &String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |_k, vs| vs.iter().sum(),
            reducers,
        )
    }

    #[test]
    fn wordcount_matches_reference() {
        let text: Vec<String> = vec![
            "the quick brown fox".into(),
            "the lazy dog".into(),
            "the quick dog".into(),
        ];
        let job = wordcount_job(text, 2, 2);
        let s = svc(4);
        let report = job.run(&s);
        assert_eq!(report.failed_units, 0);
        assert_eq!(report.output, job.run_sequential());
        let the = report.output.iter().find(|(k, _)| k == "the").unwrap();
        assert_eq!(the.1, 3);
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.reduce_tasks, 2);
        s.shutdown();
    }

    #[test]
    fn combiner_cuts_shuffle_volume_not_results() {
        let text: Vec<String> = (0..50).map(|_| "a a a b".to_string()).collect();
        let plain = wordcount_job(text.clone(), 4, 2);
        let combined = wordcount_job(text, 4, 2).with_combiner(|_k, vs| vs.iter().sum());
        let s = svc(4);
        let r_plain = plain.run(&s);
        let r_comb = combined.run(&s);
        assert_eq!(r_plain.output, r_comb.output);
        // 200 'a' + 50 'b' pairs uncombined; ≤ 2 keys × 4 maps combined.
        assert_eq!(r_plain.shuffled_pairs, 200);
        assert!(r_comb.shuffled_pairs <= 8, "got {}", r_comb.shuffled_pairs);
        s.shutdown();
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let job = wordcount_job(vec![], 3, 2);
        let s = svc(2);
        let report = job.run(&s);
        assert!(report.output.is_empty());
        assert_eq!(report.failed_units, 0);
        s.shutdown();
    }

    #[test]
    fn single_reducer_and_many_reducers_agree() {
        let text: Vec<String> = (0..30)
            .map(|i| format!("w{} w{} shared", i % 7, i % 3))
            .collect();
        let s = svc(4);
        let one = wordcount_job(text.clone(), 3, 1).run(&s);
        let many = wordcount_job(text, 3, 8).run(&s);
        assert_eq!(one.output, many.output);
        s.shutdown();
    }

    #[test]
    fn numeric_keys_and_custom_reduce() {
        // Histogram of i mod 5, reduce = max of values.
        let data: Vec<u32> = (0..100).collect();
        let job = MapReduceJob::new(
            MapReduceJob::<u32, u32, u32, u32>::split_input(data, 4),
            |x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(x % 5, *x),
            |_k, vs| *vs.iter().max().expect("non-empty group"),
            3,
        );
        let s = svc(4);
        let report = job.run(&s);
        assert_eq!(report.output.len(), 5);
        // Max value with x % 5 == 0 in 0..100 is 95.
        assert_eq!(report.output[0], (0, 95));
        assert_eq!(report.output, job.run_sequential());
        s.shutdown();
    }

    #[test]
    fn parallel_shuffle_is_bit_identical_across_threads_and_blocks() {
        // Order-sensitive f64 fold: any reordering of per-key values changes
        // the bits of the result, so this catches instability, not just
        // wrong grouping.
        let data: Vec<u64> = (0..500).collect();
        let build = || {
            MapReduceJob::new(
                MapReduceJob::<u64, String, f64, f64>::split_input(data.clone(), 5),
                |x: &u64, emit: &mut dyn FnMut(String, f64)| {
                    emit(format!("k{:02}", x % 17), (*x as f64).sin());
                },
                |_k, vs| vs.iter().fold(0.0f64, |acc, v| (acc + v) * 1.0000001),
                4,
            )
        };
        let reference = build().run_sequential();
        let s = svc(4);
        for threads in [1usize, 2, 4, 8] {
            // block=7 forces many blocks (500 pairs) → real merges.
            let job = build().with_shuffle_threads(threads).with_shuffle_block(7);
            let report = job.run(&s);
            assert_eq!(report.failed_units, 0);
            assert_eq!(
                report.output, reference,
                "threads={threads} must be bit-identical to run_sequential"
            );
        }
        s.shutdown();
    }

    #[test]
    fn shuffle_preserves_per_key_input_order() {
        // Concatenating strings makes per-key value order observable.
        let data: Vec<(u8, char)> =
            vec![(1, 'a'), (2, 'x'), (1, 'b'), (1, 'c'), (2, 'y'), (1, 'd')];
        let job = MapReduceJob::new(
            MapReduceJob::<(u8, char), u8, char, String>::split_input(data, 3),
            |r: &(u8, char), emit: &mut dyn FnMut(u8, char)| emit(r.0, r.1),
            |_k, vs| vs.iter().collect::<String>(),
            2,
        )
        .with_shuffle_block(2)
        .with_shuffle_threads(4);
        let s = svc(4);
        let report = job.run(&s);
        assert_eq!(report.output, vec![(1, "abcd".into()), (2, "xy".into())]);
        s.shutdown();
    }

    #[test]
    fn phase_times_are_populated() {
        let text: Vec<String> = (0..20).map(|_| "x y z".to_string()).collect();
        let job = wordcount_job(text, 4, 2);
        let s = svc(4);
        let report = job.run(&s);
        assert!(report.times.map_s > 0.0);
        assert!(report.times.reduce_s > 0.0);
        assert!(report.times.total_s() >= report.times.map_s);
        s.shutdown();
    }
}
