//! Minimal JSON value model, parser, and pretty printer.
//!
//! The build container has no registry access, so result persistence is
//! hand-rolled instead of depending on serde_json. The model keeps unsigned
//! integers in a dedicated variant: trial seeds are full-range `u64` and must
//! not round-trip through `f64` (which has 53 bits of mantissa).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number carrying a fractional part, exponent, or sign.
    Num(f64),
    /// A plain non-negative integer ≤ `u64::MAX` (exact; used for seeds).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: both `Num` and `UInt` read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Exact unsigned view; `Num` qualifies only when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline-free
    /// final line, mirroring `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        if x.fract() == 0.0 && x.abs() < 1e15 {
            // Keep integral floats readable (serde_json prints `10.0` as
            // `10.0`; we print `10.0` too so floats stay floats on re-parse).
            let _ = write!(out, "{x:.1}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN/inf; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or shape error, with a byte offset where applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Shape error (wrong type / missing field) discovered after parsing.
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

/// Parse a JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    // lint: allow(panic, reason = "the surrounding loop only enters with bytes remaining; an empty rest is unreachable")
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // lint: allow(panic, reason = "the scanned range holds only ASCII digit/sign/dot/exponent bytes, always valid UTF-8")
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::UInt(42)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v);
            assert_eq!(parse(&v.pretty()).unwrap(), v);
        }
        assert_eq!(parse("-3.5").unwrap(), Value::Num(-3.5));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 12345;
        let v = Value::UInt(seed);
        let back = parse(&v.pretty()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("x \"quoted\"\n".into())),
            (
                "items".into(),
                Value::Arr(vec![Value::UInt(1), Value::Num(2.5), Value::Null]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::Num(10.0);
        let back = parse(&v.pretty()).unwrap();
        assert_eq!(back, Value::Num(10.0));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        let e = parse("[1] x").unwrap_err();
        assert_eq!(e.message, "trailing characters");
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": [1, 2], \"b\": \"s\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::UInt(3).as_f64(), Some(3.0));
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
    }
}
