//! Synthetic workload generation: task mixes and arrival processes.

use pilot_sim::{Dist, SimRng};

/// One sampled task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskSample {
    /// Execution time, seconds.
    pub duration_s: f64,
    /// Cores occupied.
    pub cores: u32,
    /// Input bytes to stage.
    pub input_bytes: u64,
}

/// Distributional description of a task population.
#[derive(Clone, Debug)]
pub struct TaskMix {
    /// Task duration, seconds.
    pub duration_s: Dist,
    /// Cores per task (rounded, clamped ≥ 1).
    pub cores: Dist,
    /// Input megabytes per task.
    pub input_mb: Dist,
}

impl TaskMix {
    /// Uniform short tasks: the high-throughput, fine-grained regime.
    pub fn short_uniform(mean_s: f64) -> Self {
        TaskMix {
            duration_s: Dist::uniform(0.5 * mean_s, 1.5 * mean_s),
            cores: Dist::constant(1.0),
            input_mb: Dist::constant(0.0),
        }
    }

    /// The paper's heterogeneous regime: long simulation tasks mixed with
    /// short analysis tasks (Section III-B), log-normal spread.
    pub fn heterogeneous(long_s: f64, short_s: f64, long_fraction: f64) -> Self {
        TaskMix {
            duration_s: Dist::Bimodal {
                a: long_s,
                b: short_s,
                p: long_fraction,
            },
            cores: Dist::constant(1.0),
            input_mb: Dist::lognormal_median(10.0, 1.0),
        }
    }

    /// Draw one task.
    pub fn sample(&self, rng: &mut SimRng) -> TaskSample {
        TaskSample {
            duration_s: self.duration_s.sample(rng).max(0.0),
            cores: (self.cores.sample(rng).round() as u32).max(1),
            input_bytes: (self.input_mb.sample(rng).max(0.0) * 1_000_000.0) as u64,
        }
    }

    /// Draw `n` tasks.
    pub fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<TaskSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// When tasks arrive at the unit manager.
#[derive(Clone, Debug, PartialEq)]
pub enum Arrival {
    /// Everything submitted at t = 0 (bag-of-tasks).
    AllAtOnce,
    /// Poisson process with the given rate.
    Poisson {
        /// Arrivals per second.
        rate_per_s: f64,
    },
    /// Bursts of `size` tasks separated by `gap_s` seconds.
    Burst {
        /// Tasks per burst.
        size: usize,
        /// Seconds between bursts.
        gap_s: f64,
    },
}

impl Arrival {
    /// Arrival times (seconds) for `n` tasks, non-decreasing.
    pub fn times(&self, n: usize, rng: &mut SimRng) -> Vec<f64> {
        match self {
            Arrival::AllAtOnce => vec![0.0; n],
            Arrival::Poisson { rate_per_s } => {
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        t += rng.exponential(1.0 / rate_per_s.max(1e-12));
                        t
                    })
                    .collect()
            }
            Arrival::Burst { size, gap_s } => {
                let size = (*size).max(1);
                (0..n).map(|i| (i / size) as f64 * gap_s).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_uniform_bounds() {
        let mix = TaskMix::short_uniform(10.0);
        let mut rng = SimRng::new(1);
        for t in mix.sample_n(&mut rng, 1000) {
            assert!((5.0..15.0).contains(&t.duration_s));
            assert_eq!(t.cores, 1);
            assert_eq!(t.input_bytes, 0);
        }
    }

    #[test]
    fn heterogeneous_mix_is_bimodal() {
        let mix = TaskMix::heterogeneous(600.0, 5.0, 0.3);
        let mut rng = SimRng::new(2);
        let samples = mix.sample_n(&mut rng, 2000);
        let long = samples.iter().filter(|t| t.duration_s == 600.0).count();
        let frac = long as f64 / 2000.0;
        assert!((frac - 0.3).abs() < 0.05, "long fraction {frac}");
        assert!(samples.iter().all(|t| t.input_bytes > 0));
    }

    #[test]
    fn sampling_is_deterministic() {
        let mix = TaskMix::heterogeneous(100.0, 1.0, 0.5);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        assert_eq!(mix.sample_n(&mut a, 50), mix.sample_n(&mut b, 50));
    }

    #[test]
    fn arrivals_all_at_once() {
        let mut rng = SimRng::new(3);
        assert_eq!(Arrival::AllAtOnce.times(3, &mut rng), vec![0.0; 3]);
    }

    #[test]
    fn poisson_arrivals_increase_with_mean_gap() {
        let mut rng = SimRng::new(4);
        let times = Arrival::Poisson { rate_per_s: 2.0 }.times(4000, &mut rng);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // 4000 arrivals at 2/s ⇒ last around 2000 s.
        let last = *times.last().unwrap();
        assert!((1800.0..2200.0).contains(&last), "last {last}");
    }

    #[test]
    fn burst_arrivals_step() {
        let mut rng = SimRng::new(5);
        let times = Arrival::Burst {
            size: 3,
            gap_s: 10.0,
        }
        .times(7, &mut rng);
        assert_eq!(times, vec![0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 20.0]);
    }
}
