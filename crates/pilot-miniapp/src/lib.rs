//! # pilot-miniapp — the Mini-App experiment framework
//!
//! The paper's instrument for rigorous evaluation (Section V-C, \[32\]):
//! benchmarks misrepresent scientific workloads, so experiments are built
//! from *controlled synthetic workloads* swept over *designed factor spaces*
//! with automated collection — Gray's benchmarking criteria (simplicity,
//! relevance, scalability, portability, reproducibility) as code:
//!
//! - [`workload`] — parameterized task mixes (duration/cores/data
//!   distributions) and arrival processes, seed-deterministic.
//! - [`experiment`] — factors × levels → full-factorial trial lists with
//!   per-trial derived seeds and repetitions.
//! - [`report`] — result tables with grouping/aggregation, CSV and Markdown
//!   renderers, and JSON persistence via the self-contained [`json`] module.
//!
//! Every table in EXPERIMENTS.md is produced by driving a system under test
//! through this crate.

pub mod experiment;
pub mod json;
pub mod report;
pub mod workload;

pub use experiment::{ExperimentSpec, Factor, Trial};
pub use report::{ResultTable, Row};
pub use workload::{Arrival, TaskMix, TaskSample};
