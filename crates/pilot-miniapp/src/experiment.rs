//! Experimental design: factors × levels → full-factorial trial lists.

/// One experimental factor and its levels.
#[derive(Clone, Debug, PartialEq)]
pub struct Factor {
    /// Factor name (e.g. `"workers"`, `"partitions"`).
    pub name: String,
    /// Levels to sweep.
    pub levels: Vec<f64>,
}

impl Factor {
    /// Build a factor.
    pub fn new(name: &str, levels: &[f64]) -> Self {
        Factor {
            name: name.to_string(),
            levels: levels.to_vec(),
        }
    }

    /// Power-of-two sweep `[1, 2, 4, ..., 2^(n-1)]`.
    pub fn pow2(name: &str, n: u32) -> Self {
        Factor {
            name: name.to_string(),
            levels: (0..n).map(|i| (1u64 << i) as f64).collect(),
        }
    }
}

/// One scheduled run: a configuration, a repetition index, and the seed
/// derived for it.
#[derive(Clone, Debug, PartialEq)]
pub struct Trial {
    /// `(factor name, level)` pairs in factor order.
    pub config: Vec<(String, f64)>,
    /// Repetition index.
    pub rep: u32,
    /// Deterministic seed for this trial.
    pub seed: u64,
}

impl Trial {
    /// Level of a named factor.
    pub fn get(&self, factor: &str) -> Option<f64> {
        self.config
            .iter()
            .find(|(n, _)| n == factor)
            .map(|(_, v)| *v)
    }

    /// Level of a named factor as an integer (rounded).
    pub fn get_usize(&self, factor: &str) -> Option<usize> {
        self.get(factor).map(|v| v.round() as usize)
    }

    /// Level of a factor the experiment itself declared. Experiments read
    /// back factors from their own design grid, so a miss is a typo in the
    /// experiment source, not a runtime condition — fail loudly with the
    /// factor name instead of threading `Option` through every kernel.
    pub fn param(&self, factor: &str) -> f64 {
        self.get(factor)
            // lint: allow(panic, reason = "factor names are static strings matched against the experiment's own design grid; a miss is a typo caught by the experiment's smoke test")
            .unwrap_or_else(|| panic!("trial has no factor named {factor:?}"))
    }

    /// [`param`](Self::param) rounded to an integer level.
    pub fn param_usize(&self, factor: &str) -> usize {
        self.param(factor).round() as usize
    }

    /// Compact `k=v` key identifying the configuration (without rep).
    pub fn config_key(&self) -> String {
        self.config
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A designed experiment.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Experiment name (used in reports and seed derivation).
    pub name: String,
    /// Factors to cross.
    pub factors: Vec<Factor>,
    /// Repetitions per configuration.
    pub repetitions: u32,
    /// Base seed; trial seeds derive deterministically from it.
    pub base_seed: u64,
}

impl ExperimentSpec {
    /// Build a spec.
    pub fn new(name: &str, factors: Vec<Factor>, repetitions: u32, base_seed: u64) -> Self {
        ExperimentSpec {
            name: name.to_string(),
            factors,
            repetitions: repetitions.max(1),
            base_seed,
        }
    }

    /// Total trials = Π levels × repetitions.
    pub fn trial_count(&self) -> usize {
        self.factors
            .iter()
            .map(|f| f.levels.len().max(1))
            .product::<usize>()
            * self.repetitions as usize
    }

    /// Full-factorial trial list with derived seeds: deterministic, and
    /// stable under adding repetitions (earlier trials keep their seeds).
    pub fn trials(&self) -> Vec<Trial> {
        let mut configs: Vec<Vec<(String, f64)>> = vec![Vec::new()];
        for f in &self.factors {
            let mut next = Vec::with_capacity(configs.len() * f.levels.len());
            for c in &configs {
                for &level in &f.levels {
                    let mut c2 = c.clone();
                    c2.push((f.name.clone(), level));
                    next.push(c2);
                }
            }
            configs = next;
        }
        let mut trials = Vec::with_capacity(configs.len() * self.repetitions as usize);
        for (ci, config) in configs.into_iter().enumerate() {
            for rep in 0..self.repetitions {
                let seed = derive_seed(self.base_seed, ci as u64, rep);
                trials.push(Trial {
                    config: config.clone(),
                    rep,
                    seed,
                });
            }
        }
        trials
    }
}

fn derive_seed(base: u64, config_index: u64, rep: u32) -> u64 {
    // SplitMix64 over a mixed key: distinct trials get distinct streams.
    let mut z = base
        ^ config_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (rep as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new(
            "throughput",
            vec![
                Factor::new("workers", &[1.0, 2.0, 4.0]),
                Factor::new("size", &[10.0, 20.0]),
            ],
            2,
            42,
        )
    }

    #[test]
    fn full_factorial_counts() {
        let s = spec();
        assert_eq!(s.trial_count(), 12);
        let trials = s.trials();
        assert_eq!(trials.len(), 12);
        // Each (workers, size) pair appears exactly `repetitions` times.
        let mut keys: Vec<String> = trials.iter().map(|t| t.config_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn seeds_are_unique_and_deterministic() {
        let s = spec();
        let t1 = s.trials();
        let t2 = s.trials();
        assert_eq!(t1, t2);
        let mut seeds: Vec<u64> = t1.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "no seed collisions");
    }

    #[test]
    fn trial_accessors() {
        let s = spec();
        let t = &s.trials()[0];
        assert_eq!(t.get("workers"), Some(1.0));
        assert_eq!(t.get_usize("size"), Some(10));
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.config_key(), "workers=1,size=10");
    }

    #[test]
    fn pow2_factor() {
        let f = Factor::pow2("cores", 5);
        assert_eq!(f.levels, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn zero_factors_single_config() {
        let s = ExperimentSpec::new("empty", vec![], 3, 1);
        let trials = s.trials();
        assert_eq!(trials.len(), 3);
        assert!(trials.iter().all(|t| t.config.is_empty()));
    }

    #[test]
    fn different_base_seeds_differ() {
        let a = ExperimentSpec::new("x", vec![Factor::new("f", &[1.0])], 1, 1).trials();
        let b = ExperimentSpec::new("x", vec![Factor::new("f", &[1.0])], 1, 2).trials();
        assert_ne!(a[0].seed, b[0].seed);
    }
}
