//! Result collection, aggregation, and rendering.

use crate::experiment::Trial;
use crate::json::{self, JsonError, Value};
use pilot_sim::{summarize, Summary};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finished trial with its measured metrics.
#[derive(Clone, Debug)]
pub struct Row {
    /// The trial that produced these metrics.
    pub trial: Trial,
    /// `(metric name, value)` pairs.
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Value of a named metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a metric the experiment itself recorded. Like
    /// [`Trial::param`], a miss is a typo in the experiment source, not a
    /// runtime condition, so fail loudly with the metric name.
    pub fn measured(&self, name: &str) -> f64 {
        self.metric(name)
            // lint: allow(panic, reason = "metric names are static strings the experiment wrote into the same row; a miss is a typo caught by the experiment's smoke test")
            .unwrap_or_else(|| panic!("row has no metric named {name:?}"))
    }
}

/// All rows of one experiment.
#[derive(Clone, Debug, Default)]
pub struct ResultTable {
    /// Experiment name.
    pub experiment: String,
    /// Rows in completion order.
    pub rows: Vec<Row>,
}

impl ResultTable {
    /// Empty table for an experiment.
    pub fn new(experiment: &str) -> Self {
        ResultTable {
            experiment: experiment.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a finished trial.
    pub fn push(&mut self, trial: Trial, metrics: Vec<(String, f64)>) {
        self.rows.push(Row { trial, metrics });
    }

    /// Aggregate a metric per configuration (across repetitions), keyed by
    /// the configuration string, in first-seen order.
    pub fn aggregate(&self, metric: &str) -> Vec<(String, Summary)> {
        let mut order: Vec<String> = Vec::new();
        let mut groups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for row in &self.rows {
            if let Some(v) = row.metric(metric) {
                let key = row.trial.config_key();
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(v);
            }
        }
        order
            .into_iter()
            .map(|k| {
                let s = summarize(&groups[&k]);
                (k, s)
            })
            .collect()
    }

    /// Metric names present (first-seen order).
    pub fn metric_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for row in &self.rows {
            for (n, _) in &row.metrics {
                if !names.contains(n) {
                    names.push(n.clone());
                }
            }
        }
        names
    }

    /// Render as CSV: factor columns, rep, seed, then metric columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let factors: Vec<String> = self
            .rows
            .first()
            .map(|r| r.trial.config.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        let metrics = self.metric_names();
        let mut header: Vec<String> = factors.clone();
        header.push("rep".into());
        header.push("seed".into());
        header.extend(metrics.iter().cloned());
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let mut cells: Vec<String> = factors
                .iter()
                .map(|f| row.trial.get(f).map(|v| format!("{v}")).unwrap_or_default())
                .collect();
            cells.push(row.trial.rep.to_string());
            cells.push(row.trial.seed.to_string());
            for m in &metrics {
                cells.push(row.metric(m).map(|v| format!("{v}")).unwrap_or_default());
            }
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Render an aggregated Markdown table: one row per configuration, one
    /// column group (mean ± std) per metric.
    pub fn to_markdown(&self) -> String {
        let metrics = self.metric_names();
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.experiment);
        let mut header = vec!["configuration".to_string(), "n".to_string()];
        for m in &metrics {
            header.push(format!("{m} (mean ± std)"));
        }
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        // Use the first metric's grouping to drive row order.
        let key_order: Vec<String> = {
            let mut seen = Vec::new();
            for r in &self.rows {
                let k = r.trial.config_key();
                if !seen.contains(&k) {
                    seen.push(k);
                }
            }
            seen
        };
        let per_metric: Vec<BTreeMap<String, Summary>> = metrics
            .iter()
            .map(|m| self.aggregate(m).into_iter().collect())
            .collect();
        for key in key_order {
            let n = per_metric
                .first()
                .and_then(|m| m.get(&key))
                .map(|s| s.n)
                .unwrap_or(0);
            let mut cells = vec![key.clone(), n.to_string()];
            for m in &per_metric {
                match m.get(&key) {
                    Some(s) => cells.push(format!("{:.4} ± {:.4}", s.mean, s.std_dev)),
                    None => cells.push(String::new()),
                }
            }
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Value::Obj(vec![
                    (
                        "trial".into(),
                        Value::Obj(vec![
                            ("config".into(), pairs_to_json(&row.trial.config)),
                            ("rep".into(), Value::UInt(u64::from(row.trial.rep))),
                            ("seed".into(), Value::UInt(row.trial.seed)),
                        ]),
                    ),
                    ("metrics".into(), pairs_to_json(&row.metrics)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("experiment".into(), Value::Str(self.experiment.clone())),
            ("rows".into(), Value::Arr(rows)),
        ])
        .pretty()
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = json::parse(text)?;
        let experiment = v
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::shape("missing string field 'experiment'"))?
            .to_string();
        let mut rows = Vec::new();
        for rv in v
            .get("rows")
            .and_then(Value::as_arr)
            .ok_or_else(|| JsonError::shape("missing array field 'rows'"))?
        {
            let trial = rv
                .get("trial")
                .ok_or_else(|| JsonError::shape("row missing 'trial'"))?;
            let rep = trial
                .get("rep")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::shape("trial missing 'rep'"))?;
            let seed = trial
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::shape("trial missing 'seed'"))?;
            rows.push(Row {
                trial: Trial {
                    config: pairs_from_json(trial.get("config"), "trial.config")?,
                    rep: u32::try_from(rep).map_err(|_| JsonError::shape("'rep' exceeds u32"))?,
                    seed,
                },
                metrics: pairs_from_json(rv.get("metrics"), "row.metrics")?,
            });
        }
        Ok(ResultTable { experiment, rows })
    }
}

/// `(name, value)` pairs as a JSON array of two-element arrays, matching the
/// shape serde would give `Vec<(String, f64)>`.
fn pairs_to_json(pairs: &[(String, f64)]) -> Value {
    Value::Arr(
        pairs
            .iter()
            .map(|(n, v)| Value::Arr(vec![Value::Str(n.clone()), Value::Num(*v)]))
            .collect(),
    )
}

fn pairs_from_json(v: Option<&Value>, what: &str) -> Result<Vec<(String, f64)>, JsonError> {
    let items = v
        .and_then(Value::as_arr)
        .ok_or_else(|| JsonError::shape(format!("missing array field '{what}'")))?;
    items
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| JsonError::shape(format!("'{what}' entry is not a pair")))?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| JsonError::shape(format!("'{what}' name is not a string")))?;
            let value = pair[1]
                .as_f64()
                .ok_or_else(|| JsonError::shape(format!("'{what}' value is not a number")))?;
            Ok((name.to_string(), value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentSpec, Factor};

    fn table() -> ResultTable {
        let spec = ExperimentSpec::new("demo", vec![Factor::new("workers", &[1.0, 2.0])], 2, 7);
        let mut t = ResultTable::new("demo");
        for trial in spec.trials() {
            let w = trial.get("workers").unwrap();
            // Synthetic: throughput = 10 × workers (+rep to vary), runtime inverse.
            let rep = trial.rep as f64;
            t.push(
                trial,
                vec![
                    ("throughput".into(), 10.0 * w + rep),
                    ("runtime".into(), 100.0 / w),
                ],
            );
        }
        t
    }

    #[test]
    fn aggregate_groups_reps() {
        let t = table();
        let agg = t.aggregate("throughput");
        assert_eq!(agg.len(), 2);
        let (k1, s1) = &agg[0];
        assert_eq!(k1, "workers=1");
        assert_eq!(s1.n, 2);
        assert!((s1.mean - 10.5).abs() < 1e-12); // (10 + 11)/2
        let (_, s2) = &agg[1];
        assert!((s2.mean - 20.5).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = table();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "workers,rep,seed,throughput,runtime");
        assert!(lines[1].starts_with("1,0,"));
        assert!(lines[1].ends_with(",10,100"));
    }

    #[test]
    fn markdown_renders_aggregates() {
        let t = table();
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("workers=1"));
        assert!(md.contains("workers=2"));
        assert!(md.contains("throughput (mean ± std)"));
        assert!(md.contains("10.5000"));
    }

    #[test]
    fn json_round_trips() {
        let t = table();
        let json = t.to_json();
        let back = ResultTable::from_json(&json).unwrap();
        assert_eq!(back.rows.len(), t.rows.len());
        assert_eq!(back.experiment, "demo");
        assert_eq!(
            back.rows[0].metric("throughput"),
            t.rows[0].metric("throughput")
        );
    }

    #[test]
    fn metric_lookup_and_missing() {
        let t = table();
        assert_eq!(t.rows[0].metric("nope"), None);
        assert_eq!(t.metric_names(), vec!["throughput", "runtime"]);
        let empty = ResultTable::new("e");
        assert!(empty.aggregate("x").is_empty());
        assert_eq!(empty.to_csv().lines().count(), 1);
    }
}
