//! Serverless (FaaS) platform model: cold/warm starts, per-tenant concurrency
//! limits, and lazily-expiring warm containers.
//!
//! Needed for the Pilot-Streaming serverless experiments (\[73\] in the paper):
//! serverless trades provisioning latency (none visible beyond cold start)
//! against strict concurrency ceilings and invocation-grained costs.

use crate::component::{Component, Effects};
use pilot_sim::{Dist, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Platform configuration.
#[derive(Clone, Debug)]
pub struct ServerlessConfig {
    /// Platform name.
    pub name: String,
    /// Cold-start latency distribution, seconds.
    pub cold_start: Dist,
    /// Warm-start latency distribution, seconds.
    pub warm_start: Dist,
    /// Maximum concurrent executions for this tenant.
    pub max_concurrency: u32,
    /// Idle warm container lifetime before reclamation.
    pub warm_lifetime: SimDuration,
    /// Cost per GB-second (billing granularity abstracted to seconds).
    pub cost_per_gb_s: f64,
    /// Assumed memory size per function instance, GB.
    pub memory_gb: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ServerlessConfig {
    /// Lambda-like defaults: ~1 s cold start, ~10 ms warm, 10-minute warm pool.
    pub fn lambda_like(name: &str, max_concurrency: u32) -> Self {
        ServerlessConfig {
            name: name.to_string(),
            cold_start: Dist::uniform(0.6, 1.8),
            warm_start: Dist::uniform(0.005, 0.02),
            max_concurrency,
            warm_lifetime: SimDuration::from_mins(10),
            cost_per_gb_s: 0.0000166667,
            memory_gb: 1.769,
            seed: 0xFAA5,
        }
    }
}

/// Input alphabet.
#[derive(Clone, Debug)]
pub enum ServerlessIn {
    /// Invoke the function; `duration` is the handler's execution time.
    Invoke { id: u64, duration: SimDuration },
    /// Internal: an invocation finishes.
    ExecDone {
        id: u64,
        started: SimTime,
        cold: bool,
    },
}

/// Output notifications.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerlessOut {
    /// Invocation finished; `latency` includes start overhead.
    Completed {
        id: u64,
        latency: SimDuration,
        cold: bool,
    },
    /// Throttled: the concurrency ceiling was hit.
    Throttled { id: u64 },
}

/// The platform simulation component.
pub struct ServerlessPlatform {
    cfg: ServerlessConfig,
    rng: SimRng,
    active: u32,
    /// Warm containers as their reclamation deadlines (front = oldest).
    warm_pool: VecDeque<SimTime>,
    invocations: u64,
    cold_starts: u64,
    throttles: u64,
    billed_gb_s: f64,
}

impl ServerlessPlatform {
    /// Build a platform.
    pub fn new(cfg: ServerlessConfig) -> Self {
        let rng = SimRng::new(cfg.seed).stream(0xFA_A5);
        ServerlessPlatform {
            cfg,
            rng,
            active: 0,
            warm_pool: VecDeque::new(),
            invocations: 0,
            cold_starts: 0,
            throttles: 0,
            billed_gb_s: 0.0,
        }
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Currently executing invocations.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// (total invocations, cold starts, throttles)
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.invocations, self.cold_starts, self.throttles)
    }

    /// Accumulated charges.
    pub fn cost_total(&self) -> f64 {
        self.billed_gb_s * self.cfg.cost_per_gb_s
    }

    /// Drop warm containers whose lifetime lapsed (lazy expiry).
    fn expire_warm(&mut self, now: SimTime) {
        while let Some(&deadline) = self.warm_pool.front() {
            if deadline <= now {
                self.warm_pool.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of live warm containers at `now`.
    pub fn warm_count(&mut self, now: SimTime) -> usize {
        self.expire_warm(now);
        self.warm_pool.len()
    }
}

impl Component for ServerlessPlatform {
    type In = ServerlessIn;
    type Out = ServerlessOut;

    fn handle(
        &mut self,
        now: SimTime,
        input: ServerlessIn,
        fx: &mut Effects<ServerlessIn, ServerlessOut>,
    ) {
        match input {
            ServerlessIn::Invoke { id, duration } => {
                self.expire_warm(now);
                if self.active >= self.cfg.max_concurrency {
                    self.throttles += 1;
                    fx.emit(ServerlessOut::Throttled { id });
                    return;
                }
                self.active += 1;
                self.invocations += 1;
                let cold = if self.warm_pool.pop_front().is_some() {
                    false
                } else {
                    self.cold_starts += 1;
                    true
                };
                let start = if cold {
                    self.cfg.cold_start.sample(&mut self.rng)
                } else {
                    self.cfg.warm_start.sample(&mut self.rng)
                }
                .max(0.0);
                self.billed_gb_s += duration.as_secs_f64() * self.cfg.memory_gb;
                fx.after(
                    SimDuration::from_secs_f64(start) + duration,
                    ServerlessIn::ExecDone {
                        id,
                        started: now,
                        cold,
                    },
                );
            }
            ServerlessIn::ExecDone { id, started, cold } => {
                self.active -= 1;
                // The container returns to the warm pool.
                self.warm_pool.push_back(now + self.cfg.warm_lifetime);
                fx.emit(ServerlessOut::Completed {
                    id,
                    latency: now.since(started),
                    cold,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::drive;

    fn invoke(t_ms: u64, id: u64, dur_ms: u64) -> (SimTime, ServerlessIn) {
        (
            SimTime::from_nanos(t_ms * 1_000_000),
            ServerlessIn::Invoke {
                id,
                duration: SimDuration::from_millis(dur_ms),
            },
        )
    }

    #[test]
    fn first_call_cold_second_warm() {
        let mut p = ServerlessPlatform::new(ServerlessConfig::lambda_like("f", 10));
        let outs = drive(&mut p, vec![invoke(0, 1, 100), invoke(5000, 2, 100)]);
        let lat = |id: u64| {
            outs.iter()
                .find_map(|(_, o)| match o {
                    ServerlessOut::Completed {
                        id: oid,
                        latency,
                        cold,
                    } if *oid == id => Some((*latency, *cold)),
                    _ => None,
                })
                .unwrap()
        };
        let (l1, c1) = lat(1);
        let (l2, c2) = lat(2);
        assert!(c1 && !c2);
        assert!(l1 > l2, "cold {l1} should exceed warm {l2}");
        assert!(l1.as_secs_f64() >= 0.7); // >= 0.6 cold + 0.1 exec
        assert!(l2.as_secs_f64() < 0.2);
        assert_eq!(p.counts(), (2, 1, 0));
    }

    #[test]
    fn warm_container_expires() {
        let mut cfg = ServerlessConfig::lambda_like("f", 10);
        cfg.warm_lifetime = SimDuration::from_secs(60);
        let mut p = ServerlessPlatform::new(cfg);
        // Second invocation 2 minutes later: warm container is gone.
        let outs = drive(&mut p, vec![invoke(0, 1, 100), invoke(180_000, 2, 100)]);
        let colds = outs
            .iter()
            .filter(|(_, o)| matches!(o, ServerlessOut::Completed { cold: true, .. }))
            .count();
        assert_eq!(colds, 2);
    }

    #[test]
    fn concurrency_ceiling_throttles() {
        let mut p = ServerlessPlatform::new(ServerlessConfig::lambda_like("f", 2));
        let outs = drive(
            &mut p,
            vec![invoke(0, 1, 5000), invoke(0, 2, 5000), invoke(0, 3, 5000)],
        );
        assert!(outs
            .iter()
            .any(|(_, o)| matches!(o, ServerlessOut::Throttled { id: 3 })));
        let completed = outs
            .iter()
            .filter(|(_, o)| matches!(o, ServerlessOut::Completed { .. }))
            .count();
        assert_eq!(completed, 2);
        assert_eq!(p.counts().2, 1);
    }

    #[test]
    fn cost_scales_with_duration() {
        let mut p = ServerlessPlatform::new(ServerlessConfig::lambda_like("f", 10));
        drive(&mut p, vec![invoke(0, 1, 1000)]);
        let expected = 1.0 * 1.769 * 0.0000166667;
        assert!((p.cost_total() - expected).abs() < 1e-9);
    }

    #[test]
    fn warm_pool_grows_with_parallel_invocations() {
        let mut p = ServerlessPlatform::new(ServerlessConfig::lambda_like("f", 100));
        let inputs = (0..10).map(|i| invoke(0, i, 500)).collect();
        drive(&mut p, inputs);
        assert_eq!(p.warm_count(SimTime::from_secs(5)), 10);
        assert_eq!(p.warm_count(SimTime::from_secs(3600)), 0);
    }
}
