//! Inter-site network model for data staging: per-pair bandwidth and latency
//! with a deterministic congestion approximation.
//!
//! Pilot-Data experiments (EXP PD-1/PD-2) compare data-aware against
//! data-oblivious placement; what matters is the *relative* cost of moving
//! bytes between sites versus reading them locally. The model therefore
//! exposes a simple, auditable formula:
//!
//! `transfer_time = latency + bytes / (bandwidth / max(1, concurrent_on_link))`
//!
//! Congestion is evaluated at transfer start (completion times are fixed when
//! a transfer begins), a standard DES approximation that keeps the model
//! deterministic and composable.

use crate::types::SiteId;
use pilot_sim::SimDuration;
use std::collections::HashMap;

/// One directed link's capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Sustained bandwidth, bytes per second.
    pub bandwidth_bps: f64,
    /// One-way latency, seconds.
    pub latency_s: f64,
}

/// The multi-site network.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    sites: Vec<String>,
    /// Default for intra-site movement (node-local or parallel FS).
    local: LinkSpec,
    /// Default for any pair without an explicit override.
    wan_default: LinkSpec,
    /// Directed overrides.
    links: HashMap<(SiteId, SiteId), LinkSpec>,
    /// Active transfer count per directed pair (congestion bookkeeping).
    active: HashMap<(SiteId, SiteId), u32>,
}

impl NetworkModel {
    /// Build a network over named sites with typical defaults:
    /// 10 GB/s local, 100 MB/s + 50 ms WAN.
    pub fn new(site_names: &[&str]) -> Self {
        NetworkModel {
            sites: site_names.iter().map(|s| s.to_string()).collect(),
            local: LinkSpec {
                bandwidth_bps: 10e9,
                latency_s: 0.0001,
            },
            wan_default: LinkSpec {
                bandwidth_bps: 100e6,
                latency_s: 0.05,
            },
            links: HashMap::new(),
            active: HashMap::new(),
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Resolve a site id by name.
    pub fn site(&self, name: &str) -> Option<SiteId> {
        self.sites
            .iter()
            .position(|s| s == name)
            .map(|i| SiteId(i as u16))
    }

    /// Name of a site.
    pub fn site_name(&self, id: SiteId) -> &str {
        &self.sites[id.0 as usize]
    }

    /// Override the intra-site link.
    pub fn set_local(&mut self, spec: LinkSpec) {
        self.local = spec;
    }

    /// Override the WAN default.
    pub fn set_wan_default(&mut self, spec: LinkSpec) {
        self.wan_default = spec;
    }

    /// Override one directed pair.
    pub fn set_link(&mut self, src: SiteId, dst: SiteId, spec: LinkSpec) {
        self.links.insert((src, dst), spec);
    }

    /// The effective spec for a pair.
    pub fn link(&self, src: SiteId, dst: SiteId) -> LinkSpec {
        if src == dst {
            return self.local;
        }
        *self.links.get(&(src, dst)).unwrap_or(&self.wan_default)
    }

    /// Uncongested transfer time for `bytes` from `src` to `dst`.
    pub fn base_transfer_time(&self, bytes: u64, src: SiteId, dst: SiteId) -> SimDuration {
        let spec = self.link(src, dst);
        SimDuration::from_secs_f64(spec.latency_s + bytes as f64 / spec.bandwidth_bps)
    }

    /// Start a transfer: registers it on the link and returns its duration
    /// under the congestion observed *now* (including itself).
    pub fn begin_transfer(&mut self, bytes: u64, src: SiteId, dst: SiteId) -> SimDuration {
        let n = self.active.entry((src, dst)).or_insert(0);
        *n += 1;
        let share = *n as f64;
        let spec = self.link(src, dst);
        SimDuration::from_secs_f64(spec.latency_s + bytes as f64 * share / spec.bandwidth_bps)
    }

    /// Finish a transfer started with [`begin_transfer`](Self::begin_transfer).
    pub fn end_transfer(&mut self, src: SiteId, dst: SiteId) {
        if let Some(n) = self.active.get_mut(&(src, dst)) {
            *n = n.saturating_sub(1);
        }
    }

    /// Transfers currently registered on a directed pair.
    pub fn active_on(&self, src: SiteId, dst: SiteId) -> u32 {
        *self.active.get(&(src, dst)).unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::new(&["hpc", "cloud", "htc"])
    }

    #[test]
    fn site_lookup() {
        let n = net();
        assert_eq!(n.site("hpc"), Some(SiteId(0)));
        assert_eq!(n.site("cloud"), Some(SiteId(1)));
        assert_eq!(n.site("nope"), None);
        assert_eq!(n.site_name(SiteId(2)), "htc");
        assert_eq!(n.site_count(), 3);
    }

    #[test]
    fn local_is_much_faster_than_wan() {
        let n = net();
        let local = n.base_transfer_time(1_000_000_000, SiteId(0), SiteId(0));
        let wan = n.base_transfer_time(1_000_000_000, SiteId(0), SiteId(1));
        assert!(local.as_secs_f64() < 1.0);
        assert!(wan.as_secs_f64() > 9.0, "1 GB over 100 MB/s ~ 10 s");
        assert!(wan.as_secs_f64() > 50.0 * local.as_secs_f64());
    }

    #[test]
    fn link_override_applies_directionally() {
        let mut n = net();
        n.set_link(
            SiteId(0),
            SiteId(1),
            LinkSpec {
                bandwidth_bps: 1e9,
                latency_s: 0.01,
            },
        );
        let fwd = n.base_transfer_time(1_000_000_000, SiteId(0), SiteId(1));
        let rev = n.base_transfer_time(1_000_000_000, SiteId(1), SiteId(0));
        assert!(fwd.as_secs_f64() < 1.1);
        assert!(rev.as_secs_f64() > 9.0, "reverse keeps WAN default");
    }

    #[test]
    fn congestion_slows_concurrent_transfers() {
        let mut n = net();
        let (a, b) = (SiteId(0), SiteId(1));
        let t1 = n.begin_transfer(100_000_000, a, b);
        let t2 = n.begin_transfer(100_000_000, a, b);
        assert!(t2.as_secs_f64() > 1.9 * t1.as_secs_f64());
        assert_eq!(n.active_on(a, b), 2);
        n.end_transfer(a, b);
        n.end_transfer(a, b);
        assert_eq!(n.active_on(a, b), 0);
        // Fresh transfer sees no congestion again.
        let t3 = n.begin_transfer(100_000_000, a, b);
        assert_eq!(t3, t1);
    }

    #[test]
    fn end_without_begin_is_harmless() {
        let mut n = net();
        n.end_transfer(SiteId(0), SiteId(1));
        assert_eq!(n.active_on(SiteId(0), SiteId(1)), 0);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let n = net();
        let t = n.base_transfer_time(0, SiteId(0), SiteId(1));
        assert!((t.as_secs_f64() - 0.05).abs() < 1e-9);
    }
}
