//! Identifiers and shared vocabulary across infrastructure models.

use std::fmt;

/// Identifier of a job within one infrastructure component.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Identifier of a site (cluster, cloud region, pool) in a multi-site setup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site-{}", self.0)
    }
}

/// Terminal state of a job on any infrastructure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobOutcome {
    /// Ran to completion within its walltime.
    Completed,
    /// Killed by the resource manager at its walltime limit.
    WalltimeExceeded,
    /// Canceled by the submitter (queued or running).
    Canceled,
    /// Lost to an infrastructure failure (node crash, preemption).
    Failed,
    /// Rejected at submission (over capacity / invalid request).
    Rejected,
}

impl JobOutcome {
    /// Whether the outcome counts as successful for the workload.
    pub fn is_success(self) -> bool {
        matches!(self, JobOutcome::Completed)
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobOutcome::Completed => "completed",
            JobOutcome::WalltimeExceeded => "walltime-exceeded",
            JobOutcome::Canceled => "canceled",
            JobOutcome::Failed => "failed",
            JobOutcome::Rejected => "rejected",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_success() {
        assert_eq!(JobId(3).to_string(), "job-3");
        assert_eq!(SiteId(1).to_string(), "site-1");
        assert!(JobOutcome::Completed.is_success());
        for o in [
            JobOutcome::WalltimeExceeded,
            JobOutcome::Canceled,
            JobOutcome::Failed,
            JobOutcome::Rejected,
        ] {
            assert!(!o.is_success());
        }
        assert_eq!(
            JobOutcome::WalltimeExceeded.to_string(),
            "walltime-exceeded"
        );
    }
}
