//! # pilot-infra — simulated heterogeneous infrastructures
//!
//! The paper's pilot systems ran on production HPC machines (XSEDE), HTCondor
//! pools, IaaS clouds, serverless platforms, and Hadoop/YARN clusters. This
//! crate provides deterministic discrete-event models of those substrates —
//! the substitution documented in DESIGN.md. Each model captures the
//! *behavioural* properties resource management research cares about:
//!
//! - **HPC batch** ([`hpc`]): space-shared cores, FCFS + EASY backfill,
//!   walltime limits, queue waits that *emerge* from competing background load.
//! - **HTC pool** ([`htc`]): single-slot matchmaking on a cycle, per-job
//!   startup overhead, unreliable nodes.
//! - **Cloud** ([`cloud`]): on-demand instances with boot latency, capacity
//!   limits, per-second cost accounting — elasticity with a price.
//! - **Serverless** ([`serverless`]): cold/warm starts, concurrency limits,
//!   warm-container expiry.
//! - **YARN-like RM** ([`yarn`]): containerized allocation with negotiation
//!   latency, used by the Pilot-Hadoop integration.
//! - **Network** ([`network`]): inter-site bandwidth/latency for data staging.
//!
//! All models implement the [`Component`] protocol: a Mealy machine with a
//! typed input alphabet (`In`), self-scheduled future inputs, and immediate
//! output notifications (`Out`). A composite simulation (the pilot runtime's
//! simulated backend in `pilot-core`) wraps several components and routes
//! their alphabets through one `pilot_sim::Executor`.

pub mod cloud;
pub mod component;
pub mod hpc;
pub mod htc;
pub mod network;
pub mod serverless;
pub mod types;
pub mod yarn;

pub use component::{drive, drive_until, Component, Effects};
pub use types::{JobId, JobOutcome, SiteId};
