//! High-throughput computing pool (HTCondor-like): single-slot jobs matched
//! to heterogeneous slots on a periodic negotiation cycle, with per-job
//! startup overhead and unreliable nodes.
//!
//! HTC's character versus HPC batch: no gang allocation (each slot is
//! independent), matchmaking latency on the order of a cycle, higher per-job
//! overhead, and non-trivial failure rates — the properties that make pilots
//! (glide-ins) attractive on such pools.

use crate::component::{Component, Effects};
use crate::types::{JobId, JobOutcome};
use pilot_sim::{Dist, SimDuration, SimRng, SimTime};
use std::collections::HashMap;

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct HtcConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of single-core execution slots.
    pub slots: u32,
    /// Seconds between matchmaking (negotiation) cycles.
    pub match_cycle: f64,
    /// Per-job startup overhead (file transfer, sandbox setup), seconds.
    pub startup_overhead: Dist,
    /// Mean time between failures per busy slot, seconds (None = reliable).
    pub slot_mtbf: Option<f64>,
    /// Requeue jobs lost to slot failures.
    pub requeue_on_failure: bool,
    /// RNG seed.
    pub seed: u64,
}

impl HtcConfig {
    /// A reliable pool with a 30-second negotiation cycle and ~5 s overhead.
    pub fn reliable(name: &str, slots: u32) -> Self {
        HtcConfig {
            name: name.to_string(),
            slots,
            match_cycle: 30.0,
            startup_overhead: Dist::uniform(2.0, 8.0),
            slot_mtbf: None,
            requeue_on_failure: true,
            seed: 0x147C,
        }
    }

    /// Add slot failures with the given per-slot MTBF in seconds.
    pub fn with_failures(mut self, mtbf: f64) -> Self {
        self.slot_mtbf = Some(mtbf);
        self
    }
}

/// A single-slot job submission.
#[derive(Clone, Debug)]
pub struct HtcRequest {
    /// Submitter-chosen id.
    pub job: JobId,
    /// Actual runtime; `SimDuration::MAX` for run-until-canceled (glide-ins).
    pub runtime: SimDuration,
}

/// Input alphabet.
#[derive(Clone, Debug)]
pub enum HtcIn {
    /// Submit a job to the pool queue.
    Submit(HtcRequest),
    /// Cancel a queued or running job.
    Cancel(JobId),
    /// Internal: negotiation cycle.
    MatchCycle,
    /// Internal: running job completes (generation-guarded).
    FinishDue(JobId, u64),
    /// Internal: failure strikes a slot (generation-guarded per slot).
    SlotFailure(u32, u64),
}

/// Output notifications.
#[derive(Clone, Debug, PartialEq)]
pub enum HtcOut {
    /// Job accepted into the queue.
    Queued { job: JobId },
    /// Job matched to a slot and finished its startup overhead.
    Started { job: JobId, slot: u32 },
    /// Job reached a terminal state (or was requeued after a failure —
    /// then `Requeued` is emitted instead of `Finished`).
    Finished { job: JobId, outcome: JobOutcome },
    /// Job lost to a failure and placed back in the queue.
    Requeued { job: JobId },
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum St {
    Queued,
    Running(u32),
    Terminal,
}

struct Job {
    runtime: SimDuration,
    state: St,
    generation: u64,
}

/// The pool simulation component.
pub struct HtcPool {
    cfg: HtcConfig,
    rng: SimRng,
    jobs: HashMap<JobId, Job>,
    queue: Vec<JobId>,
    /// `slot_busy[s]` = job occupying slot s.
    slot_busy: Vec<Option<JobId>>,
    /// Per-slot failure-timer generation (bumped when a slot frees).
    slot_gen: Vec<u64>,
    started: u64,
    failed: u64,
}

impl HtcPool {
    /// Build a pool.
    pub fn new(cfg: HtcConfig) -> Self {
        let rng = SimRng::new(cfg.seed).stream(0x48_54_43);
        let slots = cfg.slots as usize;
        HtcPool {
            cfg,
            rng,
            jobs: HashMap::new(),
            queue: Vec::new(),
            slot_busy: vec![None; slots],
            slot_gen: vec![0; slots],
            started: 0,
            failed: 0,
        }
    }

    /// Events to prime the negotiation cycle.
    pub fn initial_inputs(&self) -> Vec<(SimTime, HtcIn)> {
        vec![(
            SimTime::from_secs_f64(self.cfg.match_cycle),
            HtcIn::MatchCycle,
        )]
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Free slots right now.
    pub fn free_slots(&self) -> u32 {
        self.slot_busy.iter().filter(|s| s.is_none()).count() as u32
    }

    /// Jobs waiting for a match.
    pub fn queue_length(&self) -> usize {
        self.queue.len()
    }

    /// (jobs started, jobs lost to failures)
    pub fn counts(&self) -> (u64, u64) {
        (self.started, self.failed)
    }

    fn arm_failure(&mut self, slot: u32, fx: &mut Effects<HtcIn, HtcOut>) {
        if let Some(mtbf) = self.cfg.slot_mtbf {
            let dt = self.rng.exponential(mtbf);
            let gen = self.slot_gen[slot as usize];
            fx.after(
                SimDuration::from_secs_f64(dt),
                HtcIn::SlotFailure(slot, gen),
            );
        }
    }

    fn free_slot(&mut self, slot: u32) {
        self.slot_busy[slot as usize] = None;
        self.slot_gen[slot as usize] += 1; // invalidate pending failure timers
    }
}

impl Component for HtcPool {
    type In = HtcIn;
    type Out = HtcOut;

    fn handle(&mut self, _now: SimTime, input: HtcIn, fx: &mut Effects<HtcIn, HtcOut>) {
        match input {
            HtcIn::Submit(req) => {
                self.jobs.insert(
                    req.job,
                    Job {
                        runtime: req.runtime,
                        state: St::Queued,
                        generation: 0,
                    },
                );
                self.queue.push(req.job);
                fx.emit(HtcOut::Queued { job: req.job });
            }
            HtcIn::Cancel(id) => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    return;
                };
                match job.state {
                    St::Queued => {
                        job.state = St::Terminal;
                        job.generation += 1;
                        self.queue.retain(|&q| q != id);
                        fx.emit(HtcOut::Finished {
                            job: id,
                            outcome: JobOutcome::Canceled,
                        });
                    }
                    St::Running(slot) => {
                        job.state = St::Terminal;
                        job.generation += 1;
                        self.free_slot(slot);
                        fx.emit(HtcOut::Finished {
                            job: id,
                            outcome: JobOutcome::Canceled,
                        });
                    }
                    St::Terminal => {}
                }
            }
            HtcIn::MatchCycle => {
                // Match FCFS queue onto free slots.
                let mut free: Vec<u32> = (0..self.cfg.slots)
                    .filter(|&s| self.slot_busy[s as usize].is_none())
                    .collect();
                while !free.is_empty() && !self.queue.is_empty() {
                    let id = self.queue.remove(0);
                    let slot = free.remove(0);
                    let overhead = self.cfg.startup_overhead.sample(&mut self.rng).max(0.0);
                    // lint: allow(panic, reason = "ids in self.queue are minted by submit and jobs are never removed from the map")
                    let job = self.jobs.get_mut(&id).expect("queued job exists");
                    job.state = St::Running(slot);
                    self.slot_busy[slot as usize] = Some(id);
                    self.started += 1;
                    let gen = job.generation;
                    let runtime = job.runtime;
                    fx.emit(HtcOut::Started { job: id, slot });
                    fx.after(
                        SimDuration::from_secs_f64(overhead) + runtime,
                        HtcIn::FinishDue(id, gen),
                    );
                    self.arm_failure(slot, fx);
                }
                // Self-perpetuating cycle.
                fx.after(
                    SimDuration::from_secs_f64(self.cfg.match_cycle),
                    HtcIn::MatchCycle,
                );
            }
            HtcIn::FinishDue(id, gen) => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    return;
                };
                let St::Running(slot) = job.state else {
                    return;
                };
                if job.generation != gen {
                    return;
                }
                job.state = St::Terminal;
                job.generation += 1;
                self.free_slot(slot);
                fx.emit(HtcOut::Finished {
                    job: id,
                    outcome: JobOutcome::Completed,
                });
            }
            HtcIn::SlotFailure(slot, gen) => {
                if self.slot_gen[slot as usize] != gen {
                    return; // slot was re-assigned since the timer was armed
                }
                let Some(id) = self.slot_busy[slot as usize] else {
                    return;
                };
                self.failed += 1;
                let requeue = self.cfg.requeue_on_failure;
                self.free_slot(slot);
                // lint: allow(panic, reason = "slot_busy only ever holds ids minted by submit, and jobs are never removed from the map")
                let job = self.jobs.get_mut(&id).expect("busy slot has job");
                job.generation += 1;
                if requeue {
                    job.state = St::Queued;
                    self.queue.push(id);
                    fx.emit(HtcOut::Requeued { job: id });
                } else {
                    job.state = St::Terminal;
                    fx.emit(HtcOut::Finished {
                        job: id,
                        outcome: JobOutcome::Failed,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::drive_until;

    fn submit(t: u64, id: u64, runtime_s: u64) -> (SimTime, HtcIn) {
        (
            SimTime::from_secs(t),
            HtcIn::Submit(HtcRequest {
                job: JobId(id),
                runtime: SimDuration::from_secs(runtime_s),
            }),
        )
    }

    fn run(
        pool: &mut HtcPool,
        mut inputs: Vec<(SimTime, HtcIn)>,
        until: u64,
    ) -> Vec<(SimTime, HtcOut)> {
        let mut all = pool.initial_inputs();
        all.append(&mut inputs);
        drive_until(pool, all, SimTime::from_secs(until))
    }

    #[test]
    fn job_waits_for_match_cycle() {
        let mut pool = HtcPool::new(HtcConfig::reliable("osg", 4));
        let outs = run(&mut pool, vec![submit(5, 1, 60)], 1000);
        let started = outs
            .iter()
            .find(|(_, o)| matches!(o, HtcOut::Started { job, .. } if *job == JobId(1)))
            .unwrap();
        // The first cycle after submission is at t=30.
        assert_eq!(started.0, SimTime::from_secs(30));
        let finished = outs
            .iter()
            .find(|(_, o)| matches!(o, HtcOut::Finished { job, .. } if *job == JobId(1)))
            .unwrap();
        // Startup overhead (2..8s) + 60s runtime.
        let elapsed = finished.0.since(started.0).as_secs_f64();
        assert!((62.0..=68.0).contains(&elapsed), "elapsed {elapsed}");
    }

    #[test]
    fn more_jobs_than_slots_queue_up() {
        let mut pool = HtcPool::new(HtcConfig::reliable("small", 2));
        let inputs = (0..5).map(|i| submit(0, i, 100)).collect();
        let outs = run(&mut pool, inputs, 10_000);
        let finishes = outs
            .iter()
            .filter(|(_, o)| {
                matches!(
                    o,
                    HtcOut::Finished {
                        outcome: JobOutcome::Completed,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(finishes, 5);
        // Only 2 can start in the first cycle.
        let first_cycle_starts = outs
            .iter()
            .filter(|(t, o)| matches!(o, HtcOut::Started { .. }) && *t == SimTime::from_secs(30))
            .count();
        assert_eq!(first_cycle_starts, 2);
        assert_eq!(pool.counts().0, 5);
        assert_eq!(pool.free_slots(), 2);
    }

    #[test]
    fn cancel_queued_and_running() {
        let mut pool = HtcPool::new(HtcConfig::reliable("c", 1));
        let outs = run(
            &mut pool,
            vec![
                submit(0, 1, 1000),
                submit(0, 2, 1000),
                (SimTime::from_secs(40), HtcIn::Cancel(JobId(1))), // running
                (SimTime::from_secs(41), HtcIn::Cancel(JobId(2))), // queued
            ],
            200,
        );
        let canceled: Vec<u64> = outs
            .iter()
            .filter_map(|(_, o)| match o {
                HtcOut::Finished {
                    job,
                    outcome: JobOutcome::Canceled,
                } => Some(job.0),
                _ => None,
            })
            .collect();
        assert_eq!(canceled, vec![1, 2]);
        assert_eq!(pool.queue_length(), 0);
        assert_eq!(pool.free_slots(), 1);
    }

    #[test]
    fn failures_requeue_and_eventually_complete() {
        let cfg = HtcConfig::reliable("flaky", 2).with_failures(120.0);
        let mut pool = HtcPool::new(cfg);
        let outs = run(
            &mut pool,
            vec![submit(0, 1, 300), submit(0, 2, 300)],
            100_000,
        );
        let completed = outs
            .iter()
            .filter(|(_, o)| {
                matches!(
                    o,
                    HtcOut::Finished {
                        outcome: JobOutcome::Completed,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(completed, 2, "{outs:?}");
        let requeues = outs
            .iter()
            .filter(|(_, o)| matches!(o, HtcOut::Requeued { .. }))
            .count();
        assert!(requeues > 0, "MTBF 120s vs 300s jobs should fail sometimes");
        assert_eq!(pool.counts().1 as usize, requeues);
    }

    #[test]
    fn failures_without_requeue_report_failed() {
        let mut cfg = HtcConfig::reliable("flaky", 1).with_failures(50.0);
        cfg.requeue_on_failure = false;
        let mut pool = HtcPool::new(cfg);
        let outs = run(&mut pool, vec![submit(0, 1, 10_000)], 200_000);
        let last = outs
            .iter()
            .rfind(|(_, o)| matches!(o, HtcOut::Finished { .. }))
            .unwrap();
        assert_eq!(
            last.1,
            HtcOut::Finished {
                job: JobId(1),
                outcome: JobOutcome::Failed
            }
        );
    }

    #[test]
    fn stale_failure_timer_does_not_kill_next_job() {
        // Job 1 finishes; its slot's failure timer (armed while 1 ran) must
        // not fire on job 2.
        let cfg = HtcConfig::reliable("gen", 1).with_failures(1e9); // effectively never
        let mut pool = HtcPool::new(cfg);
        let outs = run(&mut pool, vec![submit(0, 1, 10), submit(0, 2, 10)], 10_000);
        let completed = outs
            .iter()
            .filter(|(_, o)| {
                matches!(
                    o,
                    HtcOut::Finished {
                        outcome: JobOutcome::Completed,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(completed, 2);
    }

    #[test]
    fn determinism() {
        let run_once = || {
            let cfg = HtcConfig::reliable("d", 4).with_failures(500.0);
            let mut pool = HtcPool::new(cfg);
            let inputs = (0..10).map(|i| submit(i, i, 200)).collect();
            run(&mut pool, inputs, 50_000)
                .iter()
                .map(|(t, o)| format!("{t:?}{o:?}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }
}
