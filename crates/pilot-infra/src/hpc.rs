//! HPC batch cluster model: space-shared cores, FCFS + EASY backfill,
//! walltime enforcement, and optional competing background load.
//!
//! Queue waits are not sampled from a distribution — they *emerge* from
//! contention between submitted jobs and a configurable background arrival
//! process, which is what makes late-binding experiments (EXP PJ-4) honest:
//! a pilot that holds resources avoids re-entering a congested queue.
//!
//! Scheduling happens on *scheduler cycles*: any state change arms a cycle
//! after `dispatch_delay`; the cycle performs FCFS starts plus EASY backfill
//! (jobs behind the queue head may start early only if they cannot delay the
//! head's earliest-possible reservation).

use crate::component::{Component, Effects};
use crate::types::{JobId, JobOutcome};
use pilot_sim::{Dist, SimDuration, SimRng, SimTime, TimeWeighted};
use std::collections::HashMap;

/// Static description of a cluster.
#[derive(Clone, Debug)]
pub struct HpcConfig {
    /// Human-readable name (shows up in traces).
    pub name: String,
    /// Total schedulable cores.
    pub total_cores: u32,
    /// Delay between a state change and the next scheduler cycle, seconds.
    pub dispatch_delay: Dist,
    /// Competing load, if any.
    pub background: Option<BackgroundLoad>,
    /// RNG seed for this cluster's private stream.
    pub seed: u64,
}

impl HpcConfig {
    /// A quiet cluster with a fixed one-second scheduler cycle.
    pub fn quiet(name: &str, total_cores: u32) -> Self {
        HpcConfig {
            name: name.to_string(),
            total_cores,
            dispatch_delay: Dist::constant(1.0),
            background: None,
            seed: 0x5EED,
        }
    }

    /// Attach a background load.
    pub fn with_background(mut self, bg: BackgroundLoad) -> Self {
        self.background = Some(bg);
        self
    }
}

/// Poisson-ish background arrival process of competing batch jobs.
#[derive(Clone, Debug)]
pub struct BackgroundLoad {
    /// Inter-arrival time distribution, seconds.
    pub interarrival: Dist,
    /// Cores requested per background job.
    pub cores: Dist,
    /// Actual runtime distribution, seconds.
    pub runtime: Dist,
    /// Requested walltime = runtime × this factor (users over-request).
    pub walltime_factor: f64,
}

impl BackgroundLoad {
    /// A load calibrated to roughly the given utilization of `total_cores`.
    ///
    /// Mean offered load = cores.mean() × runtime.mean() / interarrival.mean();
    /// this helper solves for the inter-arrival mean.
    pub fn at_utilization(target: f64, total_cores: u32, cores: Dist, runtime: Dist) -> Self {
        let offered = cores.mean() * runtime.mean();
        let mean_ia = offered / (target.max(1e-6) * total_cores as f64);
        BackgroundLoad {
            interarrival: Dist::exponential(mean_ia),
            cores,
            runtime,
            walltime_factor: 1.5,
        }
    }
}

/// External commands and internal timer events.
#[derive(Clone, Debug)]
pub enum HpcIn {
    /// Submit a batch job.
    Submit(BatchRequest),
    /// Cancel a queued or running job.
    Cancel(JobId),
    /// Internal: a scheduler cycle fires.
    SchedTick,
    /// Internal: a running job reaches its end (generation-guarded).
    FinishDue(JobId, u64),
    /// Internal: background arrival process.
    BackgroundArrival,
}

/// Notifications to the embedding simulation. Only jobs submitted externally
/// produce notifications; background jobs stay internal.
#[derive(Clone, Debug, PartialEq)]
pub enum HpcOut {
    /// The job was accepted into the queue.
    Queued { job: JobId },
    /// The job began running on allocated cores.
    Started { job: JobId },
    /// The job reached a terminal state.
    Finished { job: JobId, outcome: JobOutcome },
}

/// A batch submission.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// Externally meaningful id, chosen by the submitter.
    pub job: JobId,
    /// Cores requested.
    pub cores: u32,
    /// Requested walltime limit.
    pub walltime: SimDuration,
    /// Actual runtime; `SimDuration::MAX` for run-until-canceled (pilots).
    pub runtime: SimDuration,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum JobState {
    Queued,
    Running,
    Terminal,
}

#[derive(Clone, Debug)]
struct Job {
    id: JobId,
    cores: u32,
    walltime: SimDuration,
    runtime: SimDuration,
    external: bool,
    state: JobState,
    generation: u64,
    submit_time: SimTime,
    start_time: Option<SimTime>,
    /// Scheduled termination (walltime-capped), for backfill shadow math.
    expected_end: Option<SimTime>,
}

/// The cluster simulation component.
pub struct HpcCluster {
    cfg: HpcConfig,
    rng: SimRng,
    jobs: HashMap<JobId, Job>,
    /// FCFS queue of job ids (front = head).
    queue: Vec<JobId>,
    free_cores: u32,
    tick_armed: bool,
    next_internal_id: u64,
    /// Metrics.
    busy: TimeWeighted,
    waits: Vec<f64>,
    started_external: u64,
    finished_external: u64,
}

/// Internal job ids live in the top half of the id space so they can never
/// collide with externally chosen ids.
const INTERNAL_ID_BASE: u64 = 1 << 62;

impl HpcCluster {
    /// Build a cluster from its config.
    pub fn new(cfg: HpcConfig) -> Self {
        let rng = SimRng::new(cfg.seed).stream(0x48_50_43); // "HPC"
        HpcCluster {
            free_cores: cfg.total_cores,
            cfg,
            rng,
            jobs: HashMap::new(),
            queue: Vec::new(),
            tick_armed: false,
            next_internal_id: INTERNAL_ID_BASE,
            busy: TimeWeighted::new(),
            waits: Vec::new(),
            started_external: 0,
            finished_external: 0,
        }
    }

    /// Events that must be scheduled at simulation start (arrival process).
    pub fn initial_inputs(&self) -> Vec<(SimTime, HpcIn)> {
        if self.cfg.background.is_some() {
            vec![(SimTime::ZERO, HpcIn::BackgroundArrival)]
        } else {
            vec![]
        }
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Total cores.
    pub fn total_cores(&self) -> u32 {
        self.cfg.total_cores
    }

    /// Currently unallocated cores.
    pub fn free_cores(&self) -> u32 {
        self.free_cores
    }

    /// Number of queued jobs (including background).
    pub fn queue_length(&self) -> usize {
        self.queue.len()
    }

    /// Mean wait of jobs that started, seconds (external + background).
    pub fn mean_wait(&self) -> f64 {
        if self.waits.is_empty() {
            0.0
        } else {
            self.waits.iter().sum::<f64>() / self.waits.len() as f64
        }
    }

    /// Waits (seconds) of all started jobs, in start order.
    pub fn waits(&self) -> &[f64] {
        &self.waits
    }

    /// Time-weighted mean core utilization over `[0, t_end]`.
    pub fn utilization(&self, t_end: SimTime) -> f64 {
        self.busy.mean_until(t_end.as_secs_f64()) / self.cfg.total_cores as f64
    }

    /// (external jobs started, external jobs finished)
    pub fn external_counts(&self) -> (u64, u64) {
        (self.started_external, self.finished_external)
    }

    /// Estimate the wait a new `(cores, walltime)` request would incur if
    /// appended to the current queue, assuming running jobs exhaust their
    /// walltimes and FCFS order (no backfill; a conservative bound).
    pub fn estimated_wait(&self, now: SimTime, cores: u32) -> SimDuration {
        let mut free = self.free_cores;
        // Collect (end_time, cores) for running jobs.
        let mut releases: Vec<(SimTime, u32)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| (j.expected_end.unwrap_or(SimTime::MAX), j.cores))
            .collect();
        releases.sort();
        let mut release_idx = 0;
        let mut t = now;
        // Serve queued jobs FCFS, then the hypothetical request.
        let mut pending: Vec<u32> = self.queue.iter().map(|id| self.jobs[id].cores).collect();
        pending.push(cores);
        for need in pending {
            while free < need && release_idx < releases.len() {
                let (end, c) = releases[release_idx];
                t = t.max(end);
                free += c;
                release_idx += 1;
            }
            if free < need {
                return SimDuration::MAX; // can never fit
            }
            free -= need;
            // The hypothetical job is last; earlier queued jobs keep cores
            // until unknown ends — conservatively never release them.
        }
        t.since(now)
    }

    fn submit_internal(&mut self, now: SimTime, req: BatchRequest, external: bool) {
        let job = Job {
            id: req.job,
            cores: req.cores.min(self.cfg.total_cores).max(1),
            walltime: req.walltime,
            runtime: req.runtime,
            external,
            state: JobState::Queued,
            generation: 0,
            submit_time: now,
            start_time: None,
            expected_end: None,
        };
        self.queue.push(job.id);
        self.jobs.insert(job.id, job);
    }

    fn arm_tick(&mut self, fx: &mut Effects<HpcIn, HpcOut>) {
        if !self.tick_armed {
            self.tick_armed = true;
            let d = self.cfg.dispatch_delay.sample(&mut self.rng).max(0.0);
            fx.after(SimDuration::from_secs_f64(d), HpcIn::SchedTick);
        }
    }

    fn start_job(&mut self, now: SimTime, id: JobId, fx: &mut Effects<HpcIn, HpcOut>) {
        // lint: allow(panic, reason = "start_job is only called with ids drained from the queue, and jobs are never removed from the map")
        let job = self.jobs.get_mut(&id).expect("job exists");
        debug_assert_eq!(job.state, JobState::Queued);
        job.state = JobState::Running;
        job.start_time = Some(now);
        let effective = job.runtime.min(job.walltime);
        job.expected_end = Some(now + job.walltime);
        self.free_cores -= job.cores;
        self.waits.push(now.since(job.submit_time).as_secs_f64());
        let gen = job.generation;
        let external = job.external;
        fx.after(effective, HpcIn::FinishDue(id, gen));
        if external {
            self.started_external += 1;
            fx.emit(HpcOut::Started { job: id });
        }
        self.busy.set(
            now.as_secs_f64(),
            (self.cfg.total_cores - self.free_cores) as f64,
        );
    }

    /// FCFS + EASY backfill over the current queue.
    fn schedule_cycle(&mut self, now: SimTime, fx: &mut Effects<HpcIn, HpcOut>) {
        // Phase 1: start jobs from the head while they fit.
        while let Some(&head) = self.queue.first() {
            if self.jobs[&head].cores <= self.free_cores {
                self.queue.remove(0);
                self.start_job(now, head, fx);
            } else {
                break;
            }
        }
        let Some(&head) = self.queue.first() else {
            return;
        };
        // Phase 2: EASY backfill. Compute the head job's shadow time: the
        // earliest instant enough cores free up (running jobs release at
        // their walltime-capped expected end).
        let head_cores = self.jobs[&head].cores;
        let mut releases: Vec<(SimTime, u32)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| (j.expected_end.unwrap_or(SimTime::MAX), j.cores))
            .collect();
        releases.sort();
        let mut free_at_shadow = self.free_cores;
        let mut shadow = SimTime::MAX;
        for (end, c) in &releases {
            free_at_shadow += c;
            if free_at_shadow >= head_cores {
                shadow = *end;
                break;
            }
        }
        // Cores left over at the shadow instant after the head starts.
        let extra = free_at_shadow.saturating_sub(head_cores);
        // Candidates: queued jobs behind the head.
        let candidates: Vec<JobId> = self.queue[1..].to_vec();
        for id in candidates {
            let (cores, walltime) = {
                let j = &self.jobs[&id];
                (j.cores, j.walltime)
            };
            if cores > self.free_cores {
                continue;
            }
            let ends_by = now + walltime;
            // EASY rule: must not delay the head's reservation.
            if ends_by <= shadow || cores <= extra {
                if let Some(pos) = self.queue.iter().position(|&q| q == id) {
                    self.queue.remove(pos);
                }
                self.start_job(now, id, fx);
            }
        }
    }

    fn finish_job(
        &mut self,
        now: SimTime,
        id: JobId,
        outcome: JobOutcome,
        fx: &mut Effects<HpcIn, HpcOut>,
    ) {
        // lint: allow(panic, reason = "finish events carry ids minted by submit, and jobs are never removed from the map")
        let job = self.jobs.get_mut(&id).expect("job exists");
        debug_assert_eq!(job.state, JobState::Running);
        job.state = JobState::Terminal;
        job.generation += 1;
        self.free_cores += job.cores;
        let external = job.external;
        self.busy.set(
            now.as_secs_f64(),
            (self.cfg.total_cores - self.free_cores) as f64,
        );
        if external {
            self.finished_external += 1;
            fx.emit(HpcOut::Finished { job: id, outcome });
        } else {
            self.jobs.remove(&id); // background jobs need no post-mortem
        }
        self.arm_tick(fx);
    }
}

impl Component for HpcCluster {
    type In = HpcIn;
    type Out = HpcOut;

    fn handle(&mut self, now: SimTime, input: HpcIn, fx: &mut Effects<HpcIn, HpcOut>) {
        match input {
            HpcIn::Submit(req) => {
                if req.cores > self.cfg.total_cores {
                    fx.emit(HpcOut::Finished {
                        job: req.job,
                        outcome: JobOutcome::Rejected,
                    });
                    return;
                }
                let id = req.job;
                self.submit_internal(now, req, true);
                fx.emit(HpcOut::Queued { job: id });
                self.arm_tick(fx);
            }
            HpcIn::Cancel(id) => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    return;
                };
                match job.state {
                    JobState::Queued => {
                        job.state = JobState::Terminal;
                        job.generation += 1;
                        let external = job.external;
                        self.queue.retain(|&q| q != id);
                        if external {
                            self.finished_external += 1;
                            fx.emit(HpcOut::Finished {
                                job: id,
                                outcome: JobOutcome::Canceled,
                            });
                        }
                    }
                    JobState::Running => {
                        self.finish_job(now, id, JobOutcome::Canceled, fx);
                    }
                    JobState::Terminal => {}
                }
            }
            HpcIn::SchedTick => {
                self.tick_armed = false;
                self.schedule_cycle(now, fx);
            }
            HpcIn::FinishDue(id, gen) => {
                let Some(job) = self.jobs.get(&id) else {
                    return;
                };
                if job.state != JobState::Running || job.generation != gen {
                    return; // stale timer from a canceled incarnation
                }
                let outcome = if job.runtime <= job.walltime {
                    JobOutcome::Completed
                } else {
                    JobOutcome::WalltimeExceeded
                };
                self.finish_job(now, id, outcome, fx);
            }
            HpcIn::BackgroundArrival => {
                let Some(bg) = self.cfg.background.clone() else {
                    return;
                };
                let cores =
                    (bg.cores.sample(&mut self.rng).round() as u32).clamp(1, self.cfg.total_cores);
                let runtime = SimDuration::from_secs_f64(bg.runtime.sample(&mut self.rng).max(1.0));
                let walltime = runtime * bg.walltime_factor;
                let id = JobId(self.next_internal_id);
                self.next_internal_id += 1;
                self.submit_internal(
                    now,
                    BatchRequest {
                        job: id,
                        cores,
                        walltime,
                        runtime,
                    },
                    false,
                );
                self.arm_tick(fx);
                let next = bg.interarrival.sample(&mut self.rng).max(0.001);
                fx.after(SimDuration::from_secs_f64(next), HpcIn::BackgroundArrival);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{drive, drive_until};

    fn req(id: u64, cores: u32, runtime_s: u64, walltime_s: u64) -> BatchRequest {
        BatchRequest {
            job: JobId(id),
            cores,
            walltime: SimDuration::from_secs(walltime_s),
            runtime: SimDuration::from_secs(runtime_s),
        }
    }

    fn submit_at(t: u64, r: BatchRequest) -> (SimTime, HpcIn) {
        (SimTime::from_secs(t), HpcIn::Submit(r))
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 16));
        let outs = drive(&mut c, vec![submit_at(0, req(1, 8, 100, 200))]);
        assert_eq!(
            outs.iter().map(|(_, o)| o.clone()).collect::<Vec<_>>(),
            vec![
                HpcOut::Queued { job: JobId(1) },
                HpcOut::Started { job: JobId(1) },
                HpcOut::Finished {
                    job: JobId(1),
                    outcome: JobOutcome::Completed
                },
            ]
        );
        // Start after one dispatch cycle (1s), finish 100s later.
        assert_eq!(outs[1].0, SimTime::from_secs(1));
        assert_eq!(outs[2].0, SimTime::from_secs(101));
        assert_eq!(c.free_cores(), 16);
    }

    #[test]
    fn walltime_exceeded_is_enforced() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 4));
        let outs = drive(&mut c, vec![submit_at(0, req(1, 2, 500, 100))]);
        let (t, last) = outs.last().unwrap();
        assert_eq!(
            *last,
            HpcOut::Finished {
                job: JobId(1),
                outcome: JobOutcome::WalltimeExceeded
            }
        );
        assert_eq!(*t, SimTime::from_secs(101)); // 1s dispatch + 100s walltime
    }

    #[test]
    fn oversized_request_rejected() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 4));
        let outs = drive(&mut c, vec![submit_at(0, req(1, 8, 10, 10))]);
        assert_eq!(
            outs[0].1,
            HpcOut::Finished {
                job: JobId(1),
                outcome: JobOutcome::Rejected
            }
        );
    }

    #[test]
    fn fcfs_queueing_when_full() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 4));
        let outs = drive(
            &mut c,
            vec![
                submit_at(0, req(1, 4, 100, 100)),
                submit_at(0, req(2, 4, 50, 100)),
            ],
        );
        let start2 = outs
            .iter()
            .find(|(_, o)| matches!(o, HpcOut::Started { job } if *job == JobId(2)))
            .unwrap();
        // Job 2 cannot start until job 1 finishes at t=101 (+1s cycle).
        assert_eq!(start2.0, SimTime::from_secs(102));
    }

    #[test]
    fn easy_backfill_starts_small_short_job_early() {
        // 8 cores. J1 takes 6 for 100s. J2 (head of queue after J1) wants
        // 8 cores -> waits. J3 wants 2 cores for 10s: fits now and ends
        // before J2's shadow (t=101) -> backfilled.
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 8));
        let outs = drive(
            &mut c,
            vec![
                submit_at(0, req(1, 6, 100, 100)),
                submit_at(2, req(2, 8, 50, 100)),
                submit_at(3, req(3, 2, 10, 10)),
            ],
        );
        let start = |id: u64| {
            outs.iter()
                .find(|(_, o)| matches!(o, HpcOut::Started { job } if *job == JobId(id)))
                .map(|(t, _)| *t)
                .unwrap()
        };
        assert!(start(3) < start(2), "J3 should backfill ahead of J2");
        assert!(start(3) < SimTime::from_secs(100));
    }

    #[test]
    fn backfill_never_delays_head_job() {
        // 8 cores. J1: 6 cores 100s. J2 (head): 8 cores. J3: 2 cores for
        // 500s — would run past the shadow (101) and extra cores are 0, so
        // it must NOT backfill.
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 8));
        let outs = drive(
            &mut c,
            vec![
                submit_at(0, req(1, 6, 100, 100)),
                submit_at(2, req(2, 8, 50, 100)),
                submit_at(3, req(3, 2, 500, 500)),
            ],
        );
        let start = |id: u64| {
            outs.iter()
                .find(|(_, o)| matches!(o, HpcOut::Started { job } if *job == JobId(id)))
                .map(|(t, _)| *t)
                .unwrap()
        };
        assert!(
            start(2) <= SimTime::from_secs(102),
            "head job delayed to {:?}",
            start(2)
        );
        assert!(start(3) >= start(2));
    }

    #[test]
    fn cancel_queued_job() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 4));
        let outs = drive(
            &mut c,
            vec![
                submit_at(0, req(1, 4, 100, 100)),
                submit_at(0, req(2, 4, 100, 100)),
                (SimTime::from_secs(5), HpcIn::Cancel(JobId(2))),
            ],
        );
        let fin2 = outs
            .iter()
            .find(|(_, o)| matches!(o, HpcOut::Finished { job, .. } if *job == JobId(2)))
            .unwrap();
        assert_eq!(
            fin2.1,
            HpcOut::Finished {
                job: JobId(2),
                outcome: JobOutcome::Canceled
            }
        );
        assert_eq!(fin2.0, SimTime::from_secs(5));
    }

    #[test]
    fn cancel_running_job_frees_cores_and_suppresses_stale_finish() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 4));
        let outs = drive(
            &mut c,
            vec![
                submit_at(0, req(1, 4, 100, 100)),
                (SimTime::from_secs(50), HpcIn::Cancel(JobId(1))),
                submit_at(60, req(2, 4, 10, 20)),
            ],
        );
        let finished: Vec<_> = outs
            .iter()
            .filter(|(_, o)| matches!(o, HpcOut::Finished { .. }))
            .collect();
        assert_eq!(finished.len(), 2, "exactly one Finished per job: {outs:?}");
        assert_eq!(
            finished[0].1,
            HpcOut::Finished {
                job: JobId(1),
                outcome: JobOutcome::Canceled
            }
        );
        // Job 2 starts promptly because cores were freed.
        let start2 = outs
            .iter()
            .find(|(_, o)| matches!(o, HpcOut::Started { job } if *job == JobId(2)))
            .unwrap();
        assert_eq!(start2.0, SimTime::from_secs(61));
    }

    #[test]
    fn pilot_style_job_runs_until_cancel() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 8));
        let pilot = BatchRequest {
            job: JobId(9),
            cores: 8,
            walltime: SimDuration::from_hours(2),
            runtime: SimDuration::MAX,
        };
        let outs = drive(
            &mut c,
            vec![
                (SimTime::ZERO, HpcIn::Submit(pilot)),
                (SimTime::from_secs(500), HpcIn::Cancel(JobId(9))),
            ],
        );
        let fin = outs.last().unwrap();
        assert_eq!(fin.0, SimTime::from_secs(500));
        assert_eq!(
            fin.1,
            HpcOut::Finished {
                job: JobId(9),
                outcome: JobOutcome::Canceled
            }
        );
    }

    #[test]
    fn pilot_walltime_expiry_without_cancel() {
        let mut c = HpcCluster::new(HpcConfig::quiet("test", 8));
        let pilot = BatchRequest {
            job: JobId(9),
            cores: 8,
            walltime: SimDuration::from_secs(300),
            runtime: SimDuration::MAX,
        };
        let outs = drive(&mut c, vec![(SimTime::ZERO, HpcIn::Submit(pilot))]);
        let fin = outs.last().unwrap();
        assert_eq!(fin.0, SimTime::from_secs(301));
        assert_eq!(
            fin.1,
            HpcOut::Finished {
                job: JobId(9),
                outcome: JobOutcome::WalltimeExceeded
            }
        );
    }

    #[test]
    fn background_load_creates_queue_waits() {
        let cores = 32;
        let bg = BackgroundLoad::at_utilization(
            0.9,
            cores,
            Dist::constant(8.0),
            Dist::exponential(600.0),
        );
        let cfg = HpcConfig::quiet("busy", cores).with_background(bg);
        let mut c = HpcCluster::new(cfg);
        let mut inputs = c.initial_inputs();
        // Submit an external job into the storm after warm-up.
        inputs.push((SimTime::from_secs(4000), HpcIn::Submit(req(1, 16, 60, 120))));
        let outs = drive_until(&mut c, inputs, SimTime::from_secs(40_000));
        let started = outs
            .iter()
            .find(|(_, o)| matches!(o, HpcOut::Started { job } if *job == JobId(1)));
        assert!(started.is_some(), "external job starved: {outs:?}");
        let wait = started.unwrap().0.since(SimTime::from_secs(4000));
        assert!(
            wait > SimDuration::from_secs(1),
            "expected contention-induced wait, got {wait}"
        );
        let util = c.utilization(SimTime::from_secs(40_000));
        assert!(util > 0.5, "utilization only {util}");
    }

    #[test]
    fn determinism_same_seed_same_outputs() {
        let run = || {
            let bg = BackgroundLoad::at_utilization(
                0.7,
                16,
                Dist::uniform(1.0, 8.0),
                Dist::exponential(300.0),
            );
            let mut c = HpcCluster::new(HpcConfig::quiet("d", 16).with_background(bg));
            let mut inputs = c.initial_inputs();
            inputs.push((SimTime::from_secs(1000), HpcIn::Submit(req(1, 8, 50, 100))));
            drive_until(&mut c, inputs, SimTime::from_secs(5000))
                .iter()
                .map(|(t, o)| format!("{t:?}{o:?}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn estimated_wait_zero_on_idle_cluster() {
        let c = HpcCluster::new(HpcConfig::quiet("idle", 8));
        assert_eq!(c.estimated_wait(SimTime::ZERO, 4), SimDuration::ZERO);
        assert_eq!(c.estimated_wait(SimTime::ZERO, 9), SimDuration::MAX);
    }

    #[test]
    fn metrics_track_started_and_finished() {
        let mut c = HpcCluster::new(HpcConfig::quiet("m", 8));
        drive(
            &mut c,
            vec![
                submit_at(0, req(1, 4, 10, 20)),
                submit_at(0, req(2, 4, 10, 20)),
            ],
        );
        assert_eq!(c.external_counts(), (2, 2));
        assert_eq!(c.queue_length(), 0);
        assert!(c.mean_wait() >= 1.0); // at least the dispatch cycle
        assert_eq!(c.waits().len(), 2);
    }
}
