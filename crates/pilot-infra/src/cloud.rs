//! On-demand cloud provider model: instance types, boot latency, capacity
//! limits, and per-second cost accounting.
//!
//! Captures what matters for pilot elasticity experiments (EXP DY-1, IO-1):
//! no queue — resources appear after a boot delay — but capacity costs money
//! for every second it is held, and regions have finite headroom.

use crate::component::{Component, Effects};
use pilot_sim::{Dist, SimDuration, SimRng, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a virtual machine, chosen by the requester.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VmId(pub u64);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// A purchasable instance shape.
#[derive(Clone, Debug)]
pub struct InstanceType {
    /// Catalog name, e.g. `"c5.4xlarge"`.
    pub name: String,
    /// vCPU cores.
    pub cores: u32,
    /// Price per hour of runtime.
    pub hourly_cost: f64,
}

/// Provider/region configuration.
#[derive(Clone, Debug)]
pub struct CloudConfig {
    /// Region name.
    pub name: String,
    /// Catalog of instance types.
    pub types: Vec<InstanceType>,
    /// Total cores the region will lease to this tenant.
    pub capacity_cores: u32,
    /// Boot (provisioning) latency distribution, seconds.
    pub boot_delay: Dist,
    /// RNG seed.
    pub seed: u64,
}

impl CloudConfig {
    /// A generic region: 4/16/64-core shapes, ~45-90 s boots.
    pub fn generic(name: &str, capacity_cores: u32) -> Self {
        CloudConfig {
            name: name.to_string(),
            types: vec![
                InstanceType {
                    name: "small.4".into(),
                    cores: 4,
                    hourly_cost: 0.17,
                },
                InstanceType {
                    name: "medium.16".into(),
                    cores: 16,
                    hourly_cost: 0.68,
                },
                InstanceType {
                    name: "large.64".into(),
                    cores: 64,
                    hourly_cost: 2.72,
                },
            ],
            capacity_cores,
            boot_delay: Dist::uniform(45.0, 90.0),
            seed: 0xC10D,
        }
    }
}

/// Input alphabet.
#[derive(Clone, Debug)]
pub enum CloudIn {
    /// Provision one instance of the type at `type_index` in the catalog.
    Request { vm: VmId, type_index: usize },
    /// Terminate a booting or active instance.
    Terminate(VmId),
    /// Internal: boot completes (generation-guarded).
    BootDone(VmId, u64),
}

/// Output notifications.
#[derive(Clone, Debug, PartialEq)]
pub enum CloudOut {
    /// Instance is booted and usable.
    Active { vm: VmId, cores: u32 },
    /// Instance released; `cost` is the accrued charge for its lifetime.
    Terminated { vm: VmId, cost: f64 },
    /// Request refused (capacity or unknown type).
    Rejected { vm: VmId },
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum VmState {
    Booting,
    Active,
    Gone,
}

struct Vm {
    type_index: usize,
    state: VmState,
    generation: u64,
    /// Billing starts at request time (clouds charge from launch).
    launched: SimTime,
}

/// The provider simulation component.
pub struct CloudProvider {
    cfg: CloudConfig,
    rng: SimRng,
    vms: HashMap<VmId, Vm>,
    used_cores: u32,
    /// Charges from already-terminated instances.
    settled_cost: f64,
}

impl CloudProvider {
    /// Build a provider.
    pub fn new(cfg: CloudConfig) -> Self {
        let rng = SimRng::new(cfg.seed).stream(0xC1_0D);
        CloudProvider {
            cfg,
            rng,
            vms: HashMap::new(),
            used_cores: 0,
            settled_cost: 0.0,
        }
    }

    /// Region name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Catalog of instance types.
    pub fn types(&self) -> &[InstanceType] {
        &self.cfg.types
    }

    /// Find a type index by name.
    pub fn type_index(&self, name: &str) -> Option<usize> {
        self.cfg.types.iter().position(|t| t.name == name)
    }

    /// Cores currently leased (booting + active).
    pub fn used_cores(&self) -> u32 {
        self.used_cores
    }

    /// Remaining leasable cores.
    pub fn free_cores(&self) -> u32 {
        self.cfg.capacity_cores - self.used_cores
    }

    /// Total charges through `now`: settled + accruing instances.
    pub fn cost_total(&self, now: SimTime) -> f64 {
        let accruing: f64 = self
            .vms
            .values()
            .filter(|vm| vm.state != VmState::Gone)
            .map(|vm| self.accrued(vm, now))
            .sum();
        self.settled_cost + accruing
    }

    fn accrued(&self, vm: &Vm, now: SimTime) -> f64 {
        let hours = now.since(vm.launched).as_secs_f64() / 3600.0;
        self.cfg.types[vm.type_index].hourly_cost * hours
    }
}

impl Component for CloudProvider {
    type In = CloudIn;
    type Out = CloudOut;

    fn handle(&mut self, now: SimTime, input: CloudIn, fx: &mut Effects<CloudIn, CloudOut>) {
        match input {
            CloudIn::Request { vm, type_index } => {
                let Some(itype) = self.cfg.types.get(type_index) else {
                    fx.emit(CloudOut::Rejected { vm });
                    return;
                };
                if itype.cores > self.free_cores() || self.vms.contains_key(&vm) {
                    fx.emit(CloudOut::Rejected { vm });
                    return;
                }
                self.used_cores += itype.cores;
                self.vms.insert(
                    vm,
                    Vm {
                        type_index,
                        state: VmState::Booting,
                        generation: 0,
                        launched: now,
                    },
                );
                let boot = self.cfg.boot_delay.sample(&mut self.rng).max(0.0);
                fx.after(SimDuration::from_secs_f64(boot), CloudIn::BootDone(vm, 0));
            }
            CloudIn::Terminate(vm_id) => {
                let Some(vm) = self.vms.get_mut(&vm_id) else {
                    return;
                };
                if vm.state == VmState::Gone {
                    return;
                }
                vm.state = VmState::Gone;
                vm.generation += 1;
                let cores = self.cfg.types[vm.type_index].cores;
                self.used_cores -= cores;
                // lint: allow(panic, reason = "vm_id was fetched mutably from self.vms at the top of this handler and nothing removes it in between")
                let vm_snapshot = self.vms.get(&vm_id).expect("just updated");
                let cost = self.accrued(vm_snapshot, now);
                self.settled_cost += cost;
                fx.emit(CloudOut::Terminated { vm: vm_id, cost });
            }
            CloudIn::BootDone(vm_id, gen) => {
                let Some(vm) = self.vms.get_mut(&vm_id) else {
                    return;
                };
                if vm.state != VmState::Booting || vm.generation != gen {
                    return; // terminated mid-boot
                }
                vm.state = VmState::Active;
                let cores = self.cfg.types[vm.type_index].cores;
                fx.emit(CloudOut::Active { vm: vm_id, cores });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::drive;

    fn request(t: u64, vm: u64, type_index: usize) -> (SimTime, CloudIn) {
        (
            SimTime::from_secs(t),
            CloudIn::Request {
                vm: VmId(vm),
                type_index,
            },
        )
    }

    #[test]
    fn request_boot_terminate_lifecycle() {
        let mut cloud = CloudProvider::new(CloudConfig::generic("us-east", 128));
        let outs = drive(
            &mut cloud,
            vec![
                request(0, 1, 1), // medium.16
                (SimTime::from_secs(3600), CloudIn::Terminate(VmId(1))),
            ],
        );
        let active = outs
            .iter()
            .find(|(_, o)| matches!(o, CloudOut::Active { .. }))
            .unwrap();
        assert!(
            active.0 >= SimTime::from_secs(45) && active.0 <= SimTime::from_secs(90),
            "boot at {:?}",
            active.0
        );
        assert_eq!(
            active.1,
            CloudOut::Active {
                vm: VmId(1),
                cores: 16
            }
        );
        let term = outs
            .iter()
            .find(|(_, o)| matches!(o, CloudOut::Terminated { .. }))
            .unwrap();
        // One hour of medium.16 at 0.68/h.
        if let CloudOut::Terminated { cost, .. } = term.1 {
            assert!((cost - 0.68).abs() < 0.01, "cost {cost}");
        }
        assert_eq!(cloud.used_cores(), 0);
    }

    #[test]
    fn capacity_limit_rejects() {
        let mut cloud = CloudProvider::new(CloudConfig::generic("tiny", 20));
        let outs = drive(
            &mut cloud,
            vec![request(0, 1, 1), request(0, 2, 1)], // 16 + 16 > 20
        );
        let rejected = outs
            .iter()
            .filter(|(_, o)| matches!(o, CloudOut::Rejected { .. }))
            .count();
        assert_eq!(rejected, 1);
        assert_eq!(cloud.used_cores(), 16);
    }

    #[test]
    fn unknown_type_and_duplicate_id_reject() {
        let mut cloud = CloudProvider::new(CloudConfig::generic("r", 256));
        let outs = drive(
            &mut cloud,
            vec![request(0, 1, 99), request(0, 2, 0), request(1, 2, 0)],
        );
        let rejected: Vec<u64> = outs
            .iter()
            .filter_map(|(_, o)| match o {
                CloudOut::Rejected { vm } => Some(vm.0),
                _ => None,
            })
            .collect();
        assert_eq!(rejected, vec![1, 2]);
    }

    #[test]
    fn terminate_mid_boot_suppresses_activation() {
        let mut cloud = CloudProvider::new(CloudConfig::generic("r", 256));
        let outs = drive(
            &mut cloud,
            vec![
                request(0, 1, 0),
                (SimTime::from_secs(10), CloudIn::Terminate(VmId(1))), // before min boot 45s
            ],
        );
        assert!(
            !outs
                .iter()
                .any(|(_, o)| matches!(o, CloudOut::Active { .. })),
            "{outs:?}"
        );
        assert_eq!(cloud.free_cores(), 256);
    }

    #[test]
    fn cost_accrues_while_running() {
        let mut cloud = CloudProvider::new(CloudConfig::generic("r", 256));
        drive(&mut cloud, vec![request(0, 1, 2)]); // large.64, 2.72/h
        let t = SimTime::from_secs(7200);
        assert!((cloud.cost_total(t) - 5.44).abs() < 0.01);
    }

    #[test]
    fn type_index_lookup() {
        let cloud = CloudProvider::new(CloudConfig::generic("r", 256));
        assert_eq!(cloud.type_index("small.4"), Some(0));
        assert_eq!(cloud.type_index("nope"), None);
        assert_eq!(cloud.types().len(), 3);
    }
}
