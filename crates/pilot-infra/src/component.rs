//! The component protocol: Mealy machines with self-scheduled future inputs
//! and immediate output notifications.
//!
//! A composite simulation embeds several components, wraps each component's
//! `In` alphabet in its master event enum, and reacts to `Out` notifications
//! synchronously. [`drive`] is a minimal standalone loop for unit-testing one
//! component in isolation.

use pilot_sim::{SimDuration, SimTime};

/// A simulated infrastructure component.
pub trait Component {
    /// Input alphabet: external commands and self-scheduled timer events.
    type In;
    /// Output alphabet: notifications for the embedding simulation.
    type Out;

    /// Handle one input at virtual time `now`.
    fn handle(&mut self, now: SimTime, input: Self::In, fx: &mut Effects<Self::In, Self::Out>);
}

/// Effects produced while handling an input: future self-inputs and
/// immediate notifications.
pub struct Effects<I, O> {
    now: SimTime,
    /// Future inputs to be routed back to this component.
    pub later: Vec<(SimTime, I)>,
    /// Notifications for the embedding simulation, effective "now".
    pub out: Vec<O>,
}

impl<I, O> Effects<I, O> {
    /// Empty effect set at the given time.
    pub fn new(now: SimTime) -> Self {
        Effects {
            now,
            later: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a future input for this component.
    pub fn after(&mut self, delay: SimDuration, input: I) {
        self.later.push((self.now + delay, input));
    }

    /// Schedule a future input at an absolute time (clamped to now).
    pub fn at(&mut self, at: SimTime, input: I) {
        self.later.push((at.max(self.now), input));
    }

    /// Emit an immediate notification.
    pub fn emit(&mut self, out: O) {
        self.out.push(out);
    }
}

/// Drive a single component to quiescence, returning all timestamped outputs.
///
/// Inputs are processed in `(time, insertion order)` — the same discipline as
/// `pilot_sim::Executor`. Intended for unit tests; composites embed components
/// in a real executor instead.
pub fn drive<C: Component>(
    component: &mut C,
    initial: Vec<(SimTime, C::In)>,
) -> Vec<(SimTime, C::Out)> {
    drive_until(component, initial, SimTime::MAX)
}

/// Like [`drive`], but stops once the next input would fire after `deadline`.
/// Needed for components with self-sustaining processes (background load,
/// failure injectors) that never quiesce.
pub fn drive_until<C: Component>(
    component: &mut C,
    initial: Vec<(SimTime, C::In)>,
    deadline: SimTime,
) -> Vec<(SimTime, C::Out)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    struct Keyed<T>(SimTime, u64, T);
    impl<T> PartialEq for Keyed<T> {
        fn eq(&self, o: &Self) -> bool {
            self.0 == o.0 && self.1 == o.1
        }
    }
    impl<T> Eq for Keyed<T> {}
    impl<T> PartialOrd for Keyed<T> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl<T> Ord for Keyed<T> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            (self.0, self.1).cmp(&(o.0, o.1))
        }
    }

    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    for (t, ev) in initial {
        heap.push(Reverse(Keyed(t, seq, ev)));
        seq += 1;
    }
    let mut outputs = Vec::new();
    let mut clock = SimTime::ZERO;
    let mut guard = 0u64;
    while let Some(Reverse(Keyed(t, _, ev))) = heap.pop() {
        if t > deadline {
            break;
        }
        guard += 1;
        assert!(guard < 10_000_000, "component did not quiesce");
        clock = clock.max(t);
        let mut fx = Effects::new(clock);
        component.handle(clock, ev, &mut fx);
        for (at, input) in fx.later {
            heap.push(Reverse(Keyed(at.max(clock), seq, input)));
            seq += 1;
        }
        for o in fx.out {
            outputs.push((clock, o));
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong test component: each Ping(n) emits Pong(n) and schedules
    /// Ping(n-1) one second later.
    struct PingPong;
    impl Component for PingPong {
        type In = u32;
        type Out = u32;
        fn handle(&mut self, _now: SimTime, n: u32, fx: &mut Effects<u32, u32>) {
            fx.emit(n);
            if n > 0 {
                fx.after(SimDuration::from_secs(1), n - 1);
            }
        }
    }

    #[test]
    fn drive_runs_to_quiescence_in_order() {
        let mut c = PingPong;
        let outs = drive(&mut c, vec![(SimTime::ZERO, 3)]);
        let expected: Vec<(SimTime, u32)> = vec![
            (SimTime::from_secs(0), 3),
            (SimTime::from_secs(1), 2),
            (SimTime::from_secs(2), 1),
            (SimTime::from_secs(3), 0),
        ];
        assert_eq!(outs, expected);
    }

    #[test]
    fn same_time_inputs_preserve_insertion_order() {
        struct Echo;
        impl Component for Echo {
            type In = u32;
            type Out = u32;
            fn handle(&mut self, _now: SimTime, n: u32, fx: &mut Effects<u32, u32>) {
                fx.emit(n);
            }
        }
        let inputs: Vec<(SimTime, u32)> = (0..8).map(|i| (SimTime::from_secs(1), i)).collect();
        let outs = drive(&mut Echo, inputs);
        assert_eq!(
            outs.iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn effects_at_clamps_past_times() {
        let mut fx: Effects<u32, u32> = Effects::new(SimTime::from_secs(5));
        fx.at(SimTime::from_secs(1), 9);
        assert_eq!(fx.later[0].0, SimTime::from_secs(5));
        assert_eq!(fx.now(), SimTime::from_secs(5));
    }
}
