//! YARN-like container resource manager: FIFO allocation of vcore-sized
//! containers with a negotiation latency, no walltime limits.
//!
//! This is the substrate the Pilot-Hadoop integration targets: big-data
//! frameworks lease long-lived containers and run their own tasks inside
//! them — exactly the placeholder pattern pilots generalize.

use crate::component::{Component, Effects};
use pilot_sim::{Dist, SimDuration, SimRng, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an allocated container, chosen by the requester.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "container-{}", self.0)
    }
}

/// Resource-manager configuration.
#[derive(Clone, Debug)]
pub struct YarnConfig {
    /// Cluster name.
    pub name: String,
    /// Total vcores managed.
    pub total_vcores: u32,
    /// Allocation round-trip latency (AM heartbeat + scheduling), seconds.
    pub alloc_latency: Dist,
    /// RNG seed.
    pub seed: u64,
}

impl YarnConfig {
    /// A cluster with ~2 s heartbeat-bound allocation latency.
    pub fn new(name: &str, total_vcores: u32) -> Self {
        YarnConfig {
            name: name.to_string(),
            total_vcores,
            alloc_latency: Dist::uniform(1.0, 3.0),
            seed: 0x9A84,
        }
    }
}

/// Input alphabet.
#[derive(Clone, Debug)]
pub enum YarnIn {
    /// Request one container of `vcores`.
    Request { container: ContainerId, vcores: u32 },
    /// Release an allocated (or pending) container.
    Release(ContainerId),
    /// Internal: the allocation round-trip completes for the queue head(s).
    AllocRound,
}

/// Output notifications.
#[derive(Clone, Debug, PartialEq)]
pub enum YarnOut {
    /// Container granted and running.
    Allocated { container: ContainerId, vcores: u32 },
    /// Container released (or canceled while pending).
    Released { container: ContainerId },
    /// Request can never be satisfied (exceeds cluster size).
    Rejected { container: ContainerId },
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum St {
    Pending,
    Allocated,
    Gone,
}

/// The resource-manager simulation component.
pub struct YarnCluster {
    cfg: YarnConfig,
    rng: SimRng,
    state: HashMap<ContainerId, (u32, St)>,
    /// FIFO of pending requests.
    pending: Vec<ContainerId>,
    used_vcores: u32,
    round_armed: bool,
}

impl YarnCluster {
    /// Build a resource manager.
    pub fn new(cfg: YarnConfig) -> Self {
        let rng = SimRng::new(cfg.seed).stream(0x9A_84);
        YarnCluster {
            cfg,
            rng,
            state: HashMap::new(),
            pending: Vec::new(),
            used_vcores: 0,
            round_armed: false,
        }
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Currently allocated vcores.
    pub fn used_vcores(&self) -> u32 {
        self.used_vcores
    }

    /// Unallocated vcores.
    pub fn free_vcores(&self) -> u32 {
        self.cfg.total_vcores - self.used_vcores
    }

    /// Requests waiting for allocation.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn arm_round(&mut self, fx: &mut Effects<YarnIn, YarnOut>) {
        if !self.round_armed && !self.pending.is_empty() {
            self.round_armed = true;
            let d = self.cfg.alloc_latency.sample(&mut self.rng).max(0.0);
            fx.after(SimDuration::from_secs_f64(d), YarnIn::AllocRound);
        }
    }
}

impl Component for YarnCluster {
    type In = YarnIn;
    type Out = YarnOut;

    fn handle(&mut self, _now: SimTime, input: YarnIn, fx: &mut Effects<YarnIn, YarnOut>) {
        match input {
            YarnIn::Request { container, vcores } => {
                if vcores > self.cfg.total_vcores || vcores == 0 {
                    fx.emit(YarnOut::Rejected { container });
                    return;
                }
                self.state.insert(container, (vcores, St::Pending));
                self.pending.push(container);
                self.arm_round(fx);
            }
            YarnIn::Release(container) => {
                let Some((vcores, st)) = self.state.get_mut(&container) else {
                    return;
                };
                match *st {
                    St::Allocated => {
                        self.used_vcores -= *vcores;
                        *st = St::Gone;
                        fx.emit(YarnOut::Released { container });
                        self.arm_round(fx);
                    }
                    St::Pending => {
                        *st = St::Gone;
                        self.pending.retain(|&c| c != container);
                        fx.emit(YarnOut::Released { container });
                    }
                    St::Gone => {}
                }
            }
            YarnIn::AllocRound => {
                self.round_armed = false;
                // FIFO head-of-line: allocate while the head fits.
                while let Some(&head) = self.pending.first() {
                    let (vcores, _) = self.state[&head];
                    if vcores <= self.free_vcores() {
                        self.pending.remove(0);
                        self.used_vcores += vcores;
                        self.state.insert(head, (vcores, St::Allocated));
                        fx.emit(YarnOut::Allocated {
                            container: head,
                            vcores,
                        });
                    } else {
                        break;
                    }
                }
                self.arm_round(fx); // re-arm if requests remain blocked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{drive, drive_until};

    fn request(t: u64, id: u64, vcores: u32) -> (SimTime, YarnIn) {
        (
            SimTime::from_secs(t),
            YarnIn::Request {
                container: ContainerId(id),
                vcores,
            },
        )
    }

    #[test]
    fn allocate_after_latency() {
        let mut y = YarnCluster::new(YarnConfig::new("emr", 64));
        let outs = drive(&mut y, vec![request(0, 1, 16)]);
        let (t, o) = &outs[0];
        assert_eq!(
            *o,
            YarnOut::Allocated {
                container: ContainerId(1),
                vcores: 16
            }
        );
        let secs = t.as_secs_f64();
        assert!((1.0..=3.0).contains(&secs), "latency {secs}");
        assert_eq!(y.used_vcores(), 16);
    }

    #[test]
    fn fifo_blocks_behind_big_head() {
        let mut y = YarnCluster::new(YarnConfig::new("emr", 32));
        // Head wants 32 (fits), then 32 (blocked), then 8 (blocked behind head).
        let outs = drive_until(
            &mut y,
            vec![request(0, 1, 32), request(0, 2, 32), request(0, 3, 8)],
            SimTime::from_secs(100),
        );
        let allocated: Vec<u64> = outs
            .iter()
            .filter_map(|(_, o)| match o {
                YarnOut::Allocated { container, .. } => Some(container.0),
                _ => None,
            })
            .collect();
        assert_eq!(allocated, vec![1]);
        assert_eq!(y.pending_len(), 2);
    }

    #[test]
    fn release_unblocks_pending() {
        let mut y = YarnCluster::new(YarnConfig::new("emr", 32));
        let outs = drive(
            &mut y,
            vec![
                request(0, 1, 32),
                request(0, 2, 16),
                (SimTime::from_secs(100), YarnIn::Release(ContainerId(1))),
            ],
        );
        let alloc2 = outs
            .iter()
            .find(|(_, o)| matches!(o, YarnOut::Allocated { container, .. } if container.0 == 2))
            .unwrap();
        assert!(alloc2.0 >= SimTime::from_secs(100));
        assert_eq!(y.used_vcores(), 16);
    }

    #[test]
    fn cancel_pending_request() {
        let mut y = YarnCluster::new(YarnConfig::new("emr", 8));
        let outs = drive(
            &mut y,
            vec![
                request(0, 1, 8),
                request(0, 2, 8),
                (SimTime::from_secs(50), YarnIn::Release(ContainerId(2))),
            ],
        );
        assert!(outs
            .iter()
            .any(|(_, o)| matches!(o, YarnOut::Released { container } if container.0 == 2)));
        assert_eq!(y.pending_len(), 0);
    }

    #[test]
    fn oversized_and_zero_requests_rejected() {
        let mut y = YarnCluster::new(YarnConfig::new("emr", 8));
        let outs = drive(&mut y, vec![request(0, 1, 9), request(0, 2, 0)]);
        assert_eq!(
            outs.iter()
                .filter(|(_, o)| matches!(o, YarnOut::Rejected { .. }))
                .count(),
            2
        );
    }
}
