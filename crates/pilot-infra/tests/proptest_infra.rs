//! Property-based tests over the infrastructure models: conservation and
//! safety invariants under arbitrary job streams.

use pilot_infra::component::{drive, drive_until, Component, Effects};
use pilot_infra::hpc::{BatchRequest, HpcCluster, HpcConfig, HpcIn, HpcOut};
use pilot_infra::htc::{HtcConfig, HtcIn, HtcOut, HtcPool, HtcRequest};
use pilot_infra::types::{JobId, JobOutcome};
use pilot_infra::yarn::{ContainerId, YarnCluster, YarnConfig, YarnIn, YarnOut};
use pilot_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Instrumented wrapper: replays HPC outputs while tracking allocated cores,
/// asserting the allocation never exceeds the machine and never goes
/// negative.
struct CoreLedger {
    cluster: HpcCluster,
    total: u32,
    jobs: std::collections::HashMap<JobId, u32>,
    running: std::collections::HashSet<JobId>,
    allocated: i64,
    peak: i64,
}

impl Component for CoreLedger {
    type In = HpcIn;
    type Out = HpcOut;
    fn handle(&mut self, now: SimTime, input: HpcIn, fx: &mut Effects<HpcIn, HpcOut>) {
        self.cluster.handle(now, input, fx);
        for o in &fx.out {
            match o {
                HpcOut::Queued { .. } => {}
                HpcOut::Started { job } => {
                    self.running.insert(*job);
                    self.allocated += i64::from(self.jobs[job]);
                    self.peak = self.peak.max(self.allocated);
                    assert!(
                        self.allocated <= i64::from(self.total),
                        "over-allocated: {} of {}",
                        self.allocated,
                        self.total
                    );
                }
                HpcOut::Finished { job, outcome } => {
                    let _ = outcome;
                    // Only jobs that actually started held cores; a job
                    // canceled while queued terminates without running.
                    if self.running.remove(job) {
                        self.allocated -= i64::from(self.jobs[job]);
                    }
                    assert!(self.allocated >= 0, "negative allocation");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary mixes of jobs (sizes, runtimes, walltimes, cancels) never
    /// over-allocate the cluster and always terminate every external job
    /// exactly once.
    #[test]
    fn hpc_conserves_cores_and_terminates_every_job(
        jobs in prop::collection::vec(
            (1u32..40, 1u64..500, 1u64..600, 0u64..100, proptest::bool::ANY),
            1..40
        )
    ) {
        let total = 32u32;
        let cluster = HpcCluster::new(HpcConfig::quiet("prop", total));
        let mut ledger = CoreLedger {
            cluster,
            total,
            jobs: Default::default(),
            running: Default::default(),
            allocated: 0,
            peak: 0,
        };
        let mut inputs = Vec::new();
        let mut external = 0usize;
        for (i, &(cores, runtime, walltime, submit_at, cancel)) in jobs.iter().enumerate() {
            let id = JobId(i as u64);
            ledger.jobs.insert(id, cores.min(total));
            external += 1;
            inputs.push((
                SimTime::from_secs(submit_at),
                HpcIn::Submit(BatchRequest {
                    job: id,
                    cores,
                    walltime: SimDuration::from_secs(walltime),
                    runtime: SimDuration::from_secs(runtime),
                }),
            ));
            if cancel {
                inputs.push((SimTime::from_secs(submit_at + runtime / 2), HpcIn::Cancel(id)));
            }
        }
        let outs = drive(&mut ledger, inputs);
        // Exactly one terminal event per external job.
        let mut finished = std::collections::HashMap::new();
        for (_, o) in &outs {
            if let HpcOut::Finished { job, .. } = o {
                *finished.entry(*job).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(finished.len(), external, "every job terminates");
        prop_assert!(finished.values().all(|&c| c == 1), "exactly once");
        // All cores returned at quiescence.
        prop_assert_eq!(ledger.allocated, 0);
        prop_assert_eq!(ledger.cluster.free_cores(), total);
    }

    /// HTC pools never double-book a slot and conserve jobs.
    #[test]
    fn htc_slots_are_exclusive(
        jobs in prop::collection::vec((1u64..400, 0u64..120), 1..30),
        slots in 1u32..8,
    ) {
        let mut pool = HtcPool::new(HtcConfig::reliable("prop", slots));
        let mut inputs = pool.initial_inputs();
        for (i, &(runtime, submit_at)) in jobs.iter().enumerate() {
            inputs.push((
                SimTime::from_secs(submit_at),
                HtcIn::Submit(HtcRequest {
                    job: JobId(i as u64),
                    runtime: SimDuration::from_secs(runtime),
                }),
            ));
        }
        let outs = drive_until(&mut pool, inputs, SimTime::from_hours(400));
        // Slot exclusivity: between Started(slot) and its Finished, the slot
        // must not be handed out again.
        let mut busy: std::collections::HashMap<u32, JobId> = Default::default();
        let mut owner: std::collections::HashMap<JobId, u32> = Default::default();
        let mut completed = 0usize;
        for (_, o) in &outs {
            match o {
                HtcOut::Started { job, slot } => {
                    prop_assert!(
                        !busy.contains_key(slot),
                        "slot {} double-booked", slot
                    );
                    busy.insert(*slot, *job);
                    owner.insert(*job, *slot);
                }
                HtcOut::Finished { job, outcome } => {
                    if let Some(slot) = owner.remove(job) {
                        busy.remove(&slot);
                    }
                    if *outcome == JobOutcome::Completed {
                        completed += 1;
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(completed, jobs.len(), "all jobs complete on a reliable pool");
        prop_assert_eq!(pool.free_slots(), slots);
    }

    /// YARN conserves vcores across arbitrary request/release interleavings.
    #[test]
    fn yarn_conserves_vcores(
        reqs in prop::collection::vec((1u32..20, 0u64..50, proptest::bool::ANY), 1..25)
    ) {
        let total = 48u32;
        let mut y = YarnCluster::new(YarnConfig::new("prop", total));
        let mut inputs = Vec::new();
        for (i, &(vcores, at, release)) in reqs.iter().enumerate() {
            let c = ContainerId(i as u64);
            inputs.push((
                SimTime::from_secs(at),
                YarnIn::Request { container: c, vcores },
            ));
            if release {
                inputs.push((SimTime::from_secs(at + 100), YarnIn::Release(c)));
            }
        }
        let outs = drive_until(&mut y, inputs, SimTime::from_hours(10));
        let mut live: i64 = 0;
        let mut holding: std::collections::HashMap<ContainerId, u32> = Default::default();
        for (_, o) in &outs {
            match o {
                YarnOut::Allocated { container, vcores } => {
                    live += i64::from(*vcores);
                    holding.insert(*container, *vcores);
                    prop_assert!(live <= i64::from(total));
                }
                YarnOut::Released { container } => {
                    // Only containers that were actually allocated held
                    // vcores; releasing a pending request frees nothing.
                    if let Some(v) = holding.remove(container) {
                        live -= i64::from(v);
                    }
                    prop_assert!(live >= 0);
                }
                YarnOut::Rejected { .. } => {}
            }
        }
        prop_assert!(y.used_vcores() <= total);
        prop_assert_eq!(
            y.used_vcores() as i64,
            i64::from(total - y.free_vcores())
        );
    }
}
