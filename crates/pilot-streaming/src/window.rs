//! Event-time tumbling-window aggregation: the stateful operator of the
//! streaming application scenario (Table I), used by the light-source
//! pipeline to aggregate detector statistics per time slice.

use std::collections::HashMap;

/// Assigns event times to fixed-width windows.
#[derive(Clone, Copy, Debug)]
pub struct TumblingWindow {
    width_s: f64,
}

impl TumblingWindow {
    /// Windows of `width_s` seconds: `[0,w), [w,2w), ...`.
    pub fn new(width_s: f64) -> Self {
        assert!(width_s > 0.0, "window width must be positive");
        TumblingWindow { width_s }
    }

    /// Window index containing `event_time_s`.
    pub fn index_of(&self, event_time_s: f64) -> u64 {
        (event_time_s.max(0.0) / self.width_s) as u64
    }

    /// `[start, end)` bounds of window `index`.
    pub fn bounds(&self, index: u64) -> (f64, f64) {
        (
            index as f64 * self.width_s,
            (index + 1) as f64 * self.width_s,
        )
    }
}

/// Aggregate of one (key, window) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cell {
    /// Events observed.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value.
    pub max: f64,
}

/// A closed window's result.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosedWindow {
    /// Window index.
    pub window: u64,
    /// Key.
    pub key: u64,
    /// Aggregate.
    pub cell: Cell,
}

/// Keyed tumbling-window aggregator with watermark-driven emission.
#[derive(Clone, Debug)]
pub struct WindowAggregate {
    windows: TumblingWindow,
    state: HashMap<(u64, u64), Cell>,
}

impl WindowAggregate {
    /// Aggregator over windows of `width_s` seconds.
    pub fn new(width_s: f64) -> Self {
        WindowAggregate {
            windows: TumblingWindow::new(width_s),
            state: HashMap::new(),
        }
    }

    /// Fold one event into its (key, window) cell.
    pub fn observe(&mut self, key: u64, event_time_s: f64, value: f64) {
        let w = self.windows.index_of(event_time_s);
        let cell = self.state.entry((key, w)).or_default();
        cell.count += 1;
        cell.sum += value;
        cell.max = if cell.count == 1 {
            value
        } else {
            cell.max.max(value)
        };
    }

    /// Close and drain every window that ends at or before `watermark_s`.
    /// Results are sorted by (window, key) for deterministic output.
    pub fn close_until(&mut self, watermark_s: f64) -> Vec<ClosedWindow> {
        let mut closed: Vec<ClosedWindow> = Vec::new();
        self.state.retain(|&(key, window), cell| {
            let (_, end) = self.windows.bounds(window);
            if end <= watermark_s {
                closed.push(ClosedWindow {
                    window,
                    key,
                    cell: *cell,
                });
                false
            } else {
                true
            }
        });
        closed.sort_by_key(|c| (c.window, c.key));
        closed
    }

    /// Open (not yet closed) cells.
    pub fn open_cells(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_indexing_and_bounds() {
        let w = TumblingWindow::new(10.0);
        assert_eq!(w.index_of(0.0), 0);
        assert_eq!(w.index_of(9.999), 0);
        assert_eq!(w.index_of(10.0), 1);
        assert_eq!(w.index_of(-5.0), 0, "pre-epoch clamps to window 0");
        assert_eq!(w.bounds(2), (20.0, 30.0));
    }

    #[test]
    fn aggregation_per_key_and_window() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 1.0, 5.0);
        agg.observe(1, 2.0, 7.0);
        agg.observe(2, 3.0, 1.0);
        agg.observe(1, 12.0, 100.0); // next window
        assert_eq!(agg.open_cells(), 3);
        let closed = agg.close_until(10.0);
        assert_eq!(
            closed,
            vec![
                ClosedWindow {
                    window: 0,
                    key: 1,
                    cell: Cell {
                        count: 2,
                        sum: 12.0,
                        max: 7.0
                    }
                },
                ClosedWindow {
                    window: 0,
                    key: 2,
                    cell: Cell {
                        count: 1,
                        sum: 1.0,
                        max: 1.0
                    }
                },
            ]
        );
        assert_eq!(agg.open_cells(), 1, "window 1 still open");
        let rest = agg.close_until(f64::INFINITY);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].cell.sum, 100.0);
    }

    #[test]
    fn watermark_short_of_window_end_closes_nothing() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 5.0, 1.0);
        assert!(agg.close_until(9.9).is_empty());
        assert_eq!(agg.close_until(10.0).len(), 1);
    }

    #[test]
    fn max_tracks_negative_values() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 0.0, -5.0);
        agg.observe(1, 1.0, -2.0);
        let closed = agg.close_until(10.0);
        assert_eq!(closed[0].cell.max, -2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_window_panics() {
        let _ = TumblingWindow::new(0.0);
    }
}
