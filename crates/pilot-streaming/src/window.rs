//! Event-time window aggregation: the stateful operators of the streaming
//! application scenario (Table I), used by the light-source pipeline to
//! aggregate detector statistics per time slice. Tumbling windows partition
//! time into disjoint slices; sliding windows overlap (one event lands in
//! `ceil(width / slide)` windows) for smoother trend lines.

use std::collections::HashMap;

/// Assigns event times to fixed-width windows.
#[derive(Clone, Copy, Debug)]
pub struct TumblingWindow {
    width_s: f64,
}

impl TumblingWindow {
    /// Windows of `width_s` seconds: `[0,w), [w,2w), ...`.
    pub fn new(width_s: f64) -> Self {
        assert!(width_s > 0.0, "window width must be positive");
        TumblingWindow { width_s }
    }

    /// Window index containing `event_time_s`.
    pub fn index_of(&self, event_time_s: f64) -> u64 {
        (event_time_s.max(0.0) / self.width_s) as u64
    }

    /// `[start, end)` bounds of window `index`.
    pub fn bounds(&self, index: u64) -> (f64, f64) {
        (
            index as f64 * self.width_s,
            (index + 1) as f64 * self.width_s,
        )
    }
}

/// Assigns event times to overlapping fixed-width windows: window `k` covers
/// `[k*slide, k*slide + width)`. With `slide == width` this degenerates to
/// [`TumblingWindow`]; with `slide > width` time has gaps no window covers
/// (sampling).
#[derive(Clone, Copy, Debug)]
pub struct SlidingWindow {
    width_s: f64,
    slide_s: f64,
}

impl SlidingWindow {
    /// Windows of `width_s` seconds advancing every `slide_s` seconds.
    pub fn new(width_s: f64, slide_s: f64) -> Self {
        assert!(width_s > 0.0, "window width must be positive");
        assert!(slide_s > 0.0, "window slide must be positive");
        SlidingWindow { width_s, slide_s }
    }

    /// Indices of every window containing `event_time_s` (empty iff
    /// `slide > width` left the instant uncovered). Pre-epoch times clamp
    /// into window 0's range like [`TumblingWindow::index_of`].
    pub fn indices_of(&self, event_time_s: f64) -> std::ops::Range<u64> {
        let t = event_time_s.max(0.0);
        // Window k contains t  ⇔  k*slide <= t < k*slide + width
        //                     ⇔  (t - width)/slide < k <= t/slide.
        let last = (t / self.slide_s) as u64;
        let lo = (t - self.width_s) / self.slide_s;
        let first = if lo < 0.0 {
            0
        } else {
            // Strict lower bound: an exact integer means window `lo` ends
            // exactly at t (half-open: t excluded), so start one past it.
            lo as u64 + 1
        };
        first..last.saturating_add(1)
    }

    /// `[start, end)` bounds of window `index`.
    pub fn bounds(&self, index: u64) -> (f64, f64) {
        let start = index as f64 * self.slide_s;
        (start, start + self.width_s)
    }
}

/// Keyed sliding-window aggregator with watermark-driven emission: each
/// event folds into every overlapping window's cell.
#[derive(Clone, Debug)]
pub struct SlidingAggregate {
    windows: SlidingWindow,
    state: HashMap<(u64, u64), Cell>,
}

impl SlidingAggregate {
    /// Aggregator over `width_s`-second windows advancing every `slide_s`.
    pub fn new(width_s: f64, slide_s: f64) -> Self {
        SlidingAggregate {
            windows: SlidingWindow::new(width_s, slide_s),
            state: HashMap::new(),
        }
    }

    /// Fold one event into every (key, window) cell it overlaps.
    pub fn observe(&mut self, key: u64, event_time_s: f64, value: f64) {
        for w in self.windows.indices_of(event_time_s) {
            let cell = self.state.entry((key, w)).or_default();
            cell.count += 1;
            cell.sum += value;
            cell.max = if cell.count == 1 {
                value
            } else {
                cell.max.max(value)
            };
        }
    }

    /// Close and drain every window that ends at or before `watermark_s`,
    /// sorted by (window, key).
    pub fn close_until(&mut self, watermark_s: f64) -> Vec<ClosedWindow> {
        let mut closed: Vec<ClosedWindow> = Vec::new();
        self.state.retain(|&(key, window), cell| {
            let (_, end) = self.windows.bounds(window);
            if end <= watermark_s {
                closed.push(ClosedWindow {
                    window,
                    key,
                    cell: *cell,
                });
                false
            } else {
                true
            }
        });
        closed.sort_by_key(|c| (c.window, c.key));
        closed
    }

    /// Open (not yet closed) cells.
    pub fn open_cells(&self) -> usize {
        self.state.len()
    }
}

/// Aggregate of one (key, window) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cell {
    /// Events observed.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value.
    pub max: f64,
}

/// A closed window's result.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosedWindow {
    /// Window index.
    pub window: u64,
    /// Key.
    pub key: u64,
    /// Aggregate.
    pub cell: Cell,
}

/// Keyed tumbling-window aggregator with watermark-driven emission.
#[derive(Clone, Debug)]
pub struct WindowAggregate {
    windows: TumblingWindow,
    state: HashMap<(u64, u64), Cell>,
}

impl WindowAggregate {
    /// Aggregator over windows of `width_s` seconds.
    pub fn new(width_s: f64) -> Self {
        WindowAggregate {
            windows: TumblingWindow::new(width_s),
            state: HashMap::new(),
        }
    }

    /// Fold one event into its (key, window) cell.
    pub fn observe(&mut self, key: u64, event_time_s: f64, value: f64) {
        let w = self.windows.index_of(event_time_s);
        let cell = self.state.entry((key, w)).or_default();
        cell.count += 1;
        cell.sum += value;
        cell.max = if cell.count == 1 {
            value
        } else {
            cell.max.max(value)
        };
    }

    /// Close and drain every window that ends at or before `watermark_s`.
    /// Results are sorted by (window, key) for deterministic output.
    pub fn close_until(&mut self, watermark_s: f64) -> Vec<ClosedWindow> {
        let mut closed: Vec<ClosedWindow> = Vec::new();
        self.state.retain(|&(key, window), cell| {
            let (_, end) = self.windows.bounds(window);
            if end <= watermark_s {
                closed.push(ClosedWindow {
                    window,
                    key,
                    cell: *cell,
                });
                false
            } else {
                true
            }
        });
        closed.sort_by_key(|c| (c.window, c.key));
        closed
    }

    /// Open (not yet closed) cells.
    pub fn open_cells(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_indexing_and_bounds() {
        let w = TumblingWindow::new(10.0);
        assert_eq!(w.index_of(0.0), 0);
        assert_eq!(w.index_of(9.999), 0);
        assert_eq!(w.index_of(10.0), 1);
        assert_eq!(w.index_of(-5.0), 0, "pre-epoch clamps to window 0");
        assert_eq!(w.bounds(2), (20.0, 30.0));
    }

    #[test]
    fn aggregation_per_key_and_window() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 1.0, 5.0);
        agg.observe(1, 2.0, 7.0);
        agg.observe(2, 3.0, 1.0);
        agg.observe(1, 12.0, 100.0); // next window
        assert_eq!(agg.open_cells(), 3);
        let closed = agg.close_until(10.0);
        assert_eq!(
            closed,
            vec![
                ClosedWindow {
                    window: 0,
                    key: 1,
                    cell: Cell {
                        count: 2,
                        sum: 12.0,
                        max: 7.0
                    }
                },
                ClosedWindow {
                    window: 0,
                    key: 2,
                    cell: Cell {
                        count: 1,
                        sum: 1.0,
                        max: 1.0
                    }
                },
            ]
        );
        assert_eq!(agg.open_cells(), 1, "window 1 still open");
        let rest = agg.close_until(f64::INFINITY);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].cell.sum, 100.0);
    }

    #[test]
    fn watermark_short_of_window_end_closes_nothing() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 5.0, 1.0);
        assert!(agg.close_until(9.9).is_empty());
        assert_eq!(agg.close_until(10.0).len(), 1);
    }

    #[test]
    fn max_tracks_negative_values() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 0.0, -5.0);
        agg.observe(1, 1.0, -2.0);
        let closed = agg.close_until(10.0);
        assert_eq!(closed[0].cell.max, -2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_window_panics() {
        let _ = TumblingWindow::new(0.0);
    }

    #[test]
    fn tumbling_exact_boundary_lands_in_upper_window() {
        let w = TumblingWindow::new(2.5);
        // Every multiple of the width starts a new window (half-open ranges).
        for k in 0..50u64 {
            let t = k as f64 * 2.5;
            assert_eq!(w.index_of(t), k, "t={t}");
            assert_eq!(w.index_of(t + 2.4999), k, "just inside window {k}");
        }
        let (s, e) = w.bounds(3);
        assert_eq!(w.index_of(s), 3);
        assert_eq!(w.index_of(e), 4, "end is exclusive");
    }

    #[test]
    fn out_of_order_events_fold_into_their_event_time_window() {
        let mut agg = WindowAggregate::new(10.0);
        // Arrival order scrambled across three windows; event time decides.
        for &(t, v) in &[
            (25.0, 1.0),
            (3.0, 2.0),
            (14.0, 3.0),
            (1.0, 4.0),
            (29.9, 5.0),
        ] {
            agg.observe(0, t, v);
        }
        let closed = agg.close_until(30.0);
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].window, 0);
        assert_eq!(
            closed[0].cell,
            Cell {
                count: 2,
                sum: 6.0,
                max: 4.0
            }
        );
        assert_eq!(closed[1].window, 1);
        assert_eq!(
            closed[1].cell,
            Cell {
                count: 1,
                sum: 3.0,
                max: 3.0
            }
        );
        assert_eq!(closed[2].window, 2);
        assert_eq!(
            closed[2].cell,
            Cell {
                count: 2,
                sum: 6.0,
                max: 5.0
            }
        );
    }

    #[test]
    fn late_event_before_watermark_still_counts_after_never_merges() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(7, 15.0, 1.0);
        // Late (out-of-order) but the watermark has not passed window 0 yet.
        agg.observe(7, 5.0, 2.0);
        let closed = agg.close_until(10.0);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].cell.sum, 2.0);
        // An event later than an already-emitted window opens a fresh cell —
        // it is never silently dropped, and never merged into emitted output.
        agg.observe(7, 5.5, 9.0);
        let reclosed = agg.close_until(10.0);
        assert_eq!(reclosed.len(), 1);
        assert_eq!(
            reclosed[0].cell,
            Cell {
                count: 1,
                sum: 9.0,
                max: 9.0
            }
        );
    }

    #[test]
    fn empty_windows_emit_nothing() {
        let mut agg = WindowAggregate::new(10.0);
        agg.observe(1, 5.0, 1.0);
        agg.observe(1, 95.0, 1.0);
        // Windows 1..9 saw no events: closing past them yields only the two
        // populated cells, not zero-filled rows.
        let closed = agg.close_until(1000.0);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].window, 0);
        assert_eq!(closed[1].window, 9);
        assert!(agg.close_until(f64::INFINITY).is_empty());
        assert_eq!(agg.open_cells(), 0);
    }

    #[test]
    fn sliding_indices_cover_overlap() {
        // width 10, slide 5: every instant is in exactly two windows except
        // the first half-slide of time.
        let w = SlidingWindow::new(10.0, 5.0);
        assert_eq!(w.indices_of(2.0), 0..1, "start-up: only window 0");
        assert_eq!(w.indices_of(7.0), 0..2);
        assert_eq!(w.indices_of(12.0), 1..3);
        assert_eq!(w.bounds(1), (5.0, 15.0));
    }

    #[test]
    fn sliding_boundaries_are_half_open() {
        let w = SlidingWindow::new(10.0, 5.0);
        // t = 10 is the exclusive end of window 0 and the inclusive start of
        // window 2.
        assert_eq!(w.indices_of(10.0), 1..3);
        // t = 5 starts window 1 exactly.
        assert_eq!(w.indices_of(5.0), 0..2);
        // Negative times clamp like the tumbling assigner.
        assert_eq!(w.indices_of(-3.0), 0..1);
    }

    #[test]
    fn sliding_with_slide_equal_width_matches_tumbling() {
        let s = SlidingWindow::new(10.0, 10.0);
        let t = TumblingWindow::new(10.0);
        for i in 0..200 {
            let time = i as f64 * 0.77;
            let idx: Vec<u64> = s.indices_of(time).collect();
            assert_eq!(idx, vec![t.index_of(time)], "t={time}");
        }
    }

    #[test]
    fn sliding_with_slide_beyond_width_leaves_gaps() {
        // width 1, slide 2: [0,1), [2,3), ... — odd seconds are uncovered.
        let w = SlidingWindow::new(1.0, 2.0);
        assert_eq!(w.indices_of(0.5), 0..1);
        assert!(w.indices_of(1.5).is_empty(), "gap between windows");
        assert_eq!(w.indices_of(2.0), 1..2);
    }

    #[test]
    fn sliding_aggregate_counts_events_once_per_overlapping_window() {
        let mut agg = SlidingAggregate::new(10.0, 5.0);
        agg.observe(1, 7.0, 3.0); // windows 0 and 1
        agg.observe(1, 12.0, 5.0); // windows 1 and 2
        assert_eq!(agg.open_cells(), 3);
        // Window 0 ends at 10: only it closes.
        let closed = agg.close_until(10.0);
        assert_eq!(closed.len(), 1);
        assert_eq!(
            closed[0].cell,
            Cell {
                count: 1,
                sum: 3.0,
                max: 3.0
            }
        );
        // Window 1 ([5,15)) saw both events.
        let closed = agg.close_until(15.0);
        assert_eq!(closed.len(), 1);
        assert_eq!(
            closed[0].cell,
            Cell {
                count: 2,
                sum: 8.0,
                max: 5.0
            }
        );
        let rest = agg.close_until(f64::INFINITY);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].cell.sum, 5.0);
    }

    #[test]
    fn sliding_out_of_order_and_empty_windows() {
        let mut agg = SlidingAggregate::new(4.0, 2.0);
        // Reverse arrival order; a long quiet gap before t=40.
        agg.observe(2, 41.0, 1.0);
        agg.observe(2, 1.0, 2.0);
        let closed = agg.close_until(f64::INFINITY);
        // t=1 → window 0 only; t=41 → windows 19 and 20. Nothing in between.
        let windows: Vec<u64> = closed.iter().map(|c| c.window).collect();
        assert_eq!(windows, vec![0, 19, 20]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slide_panics() {
        let _ = SlidingWindow::new(1.0, 0.0);
    }
}
