//! # pilot-streaming — stream processing on the pilot-abstraction
//!
//! Implements the Pilot-Streaming extension (\[32\] in the paper): the broker
//! substrate (the role Kafka plays in the paper's deployments) plus
//! pilot-managed processing, so one resource-management abstraction covers
//! the whole streaming pipeline — broker, producers, processors.
//!
//! - [`broker`] — an in-process log broker: topics, partitions, append-only
//!   offset-addressed logs, consumer groups with balanced assignment.
//!   Within a partition, order is total; across partitions, parallelism.
//! - [`pipeline`] — streaming jobs as pilot compute units: producer units
//!   feed a topic, processor units consume through a group, and every
//!   message carries its enqueue timestamp so end-to-end latency is measured
//!   per message (EXP PS-1's instrument).
//! - [`window`] — event-time tumbling-window aggregation, the stateful
//!   operator Table I's streaming scenario calls for.

//! ## Example: produce and consume through a group
//!
//! ```rust
//! use pilot_streaming::Broker;
//! use std::sync::Arc;
//!
//! let broker = Broker::new();
//! broker.create_topic("events", 4, 10_000).unwrap();
//! broker.join_group("readers", "events", "c0").unwrap();
//! for i in 0..100u64 {
//!     broker.produce("events", Some(i), Arc::new(vec![0u8; 16])).unwrap();
//! }
//! let mut seen = 0;
//! loop {
//!     let batch = broker.poll("readers", "c0", 32).unwrap();
//!     if batch.is_empty() { break; }
//!     seen += batch.len();
//! }
//! assert_eq!(seen, 100);
//! ```

pub mod broker;
pub mod pipeline;
pub mod window;

pub use broker::{Broker, BrokerError, Message};
pub use pipeline::{StreamJobConfig, StreamReport};
pub use window::{TumblingWindow, WindowAggregate};
