//! # pilot-streaming — stream processing on the pilot-abstraction
//!
//! Implements the Pilot-Streaming extension (\[32\] in the paper): the broker
//! substrate (the role Kafka plays in the paper's deployments) plus
//! pilot-managed processing, so one resource-management abstraction covers
//! the whole streaming pipeline — broker, producers, processors.
//!
//! - [`broker`] — an in-process log broker: topics, partitions, append-only
//!   offset-addressed logs, consumer groups with balanced assignment.
//!   Within a partition, order is total; across partitions, parallelism.
//! - [`pipeline`] — streaming jobs as pilot compute units: producer units
//!   feed a topic, processor units consume through a group, and every
//!   message carries its enqueue timestamp so end-to-end latency is measured
//!   per message (EXP PS-1's instrument).
//! - [`wal`] — the durability substrate: segmented, CRC-checked write-ahead
//!   logs with prefix-consistent crash recovery. A broker opened with
//!   [`Broker::open`] persists every append, topic creation, and committed
//!   group offset, and replays them on restart.
//! - [`replica`] — leader/follower partition replication across N simulated
//!   broker nodes with epoch-fenced leadership: node kills promote a
//!   follower under a new epoch and the stale leader's appends are rejected.
//! - [`window`] — event-time tumbling- and sliding-window aggregation, the
//!   stateful operators Table I's streaming scenario calls for.

//! ## Example: batched produce, buffer-reusing consume
//!
//! ```rust
//! use pilot_streaming::Broker;
//! use std::sync::Arc;
//!
//! let broker = Broker::new();
//! broker.create_topic("events", 4, 10_000).unwrap();
//! broker.join_group("readers", "events", "c0").unwrap();
//! // One lock acquire per touched partition, one timestamp per batch.
//! broker
//!     .produce_batch("events", (0..100u64).map(|i| (Some(i), Arc::new(vec![0u8; 16]))))
//!     .unwrap();
//! // A Subscription caches the assignment; poll_into reuses the buffer.
//! let mut sub = broker.subscribe("readers", "c0").unwrap();
//! let mut buf = Vec::new();
//! let mut seen = 0;
//! loop {
//!     let n = broker.poll_into(&mut sub, 32, &mut buf).unwrap();
//!     if n == 0 { break; }
//!     seen += n;
//! }
//! assert_eq!(seen, 100);
//! ```

pub mod broker;
pub mod pipeline;
pub mod replica;
pub mod wal;
pub mod window;

pub use broker::{
    key_partition, Broker, BrokerError, GroupStats, Message, Record, Retention, Subscription,
};
pub use pipeline::{StreamJobConfig, StreamReport};
pub use replica::{ClusterStats, ClusterSub, KillSchedule, LeaderLease, ReplicatedBroker};
pub use wal::{FsyncPolicy, RecoveryInfo, WalConfig};
pub use window::{SlidingAggregate, SlidingWindow, TumblingWindow, WindowAggregate};
