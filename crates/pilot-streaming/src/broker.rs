//! In-process log broker: topics of partitioned, offset-addressed logs with
//! consumer groups.
//!
//! Concurrency design: one `parking_lot::Mutex` per partition log (producers
//! to different partitions never contend), an `RwLock` on topic/group
//! metadata (read-mostly), per-(group, partition) offset cells. This is the
//! shape that lets the produce/consume criterion benchmarks scale with
//! partition count — the same knob the paper's streaming evaluation sweeps.
//!
//! ## The batched data plane
//!
//! The hot paths come in two flavors each:
//!
//! * **Produce.** [`Broker::produce`] appends one record: one topic-map read,
//!   one round-robin (or key hash) decision, one partition-lock acquire, one
//!   timestamp read. [`Broker::produce_batch`] amortizes all of that over a
//!   batch — the timestamp is read once, the round-robin cursor is advanced
//!   under one lock, and each *touched partition* is locked exactly once no
//!   matter how many records land in it.
//! * **Consume.** [`Broker::poll`] is the stateless path: it re-derives the
//!   consumer's assignment and allocates a fresh `Vec` on every call.
//!   [`Broker::poll_into`] takes a [`Subscription`] handle that caches the
//!   assignment under the group's rebalance epoch (refreshed only when
//!   membership changes) and appends into a caller-owned buffer — zero
//!   allocations and exactly two group-lock acquires per poll at steady
//!   state.
//!
//! ## Durability
//!
//! A broker opened with [`Broker::open`] writes every append through a
//! per-partition write-ahead log ([`crate::wal`]) *before* the in-memory
//! update, persists topic creations in a meta log and committed group
//! offsets in an offsets log, and on reopen replays all three: partitions
//! come back prefix-consistent (truncated at the first torn/corrupt
//! record), committed offsets are clamped to each partition's recovered
//! high watermark, and `poll_into` consumers resume exactly where the
//! crashed broker left them. [`Broker::new`] keeps the original pure
//! in-memory behavior — no WAL, no recovery.
//!
//! Retention comes in two flavors ([`Retention`]): count-based trimming
//! (oldest records dropped past a bound; advances the partition's
//! *start offset*, and trimming past a group's committed position is
//! surfaced as `records_lost`, never skipped silently) and log compaction
//! (latest value per key survives; offsets go sparse, superseded records
//! are *not* counted as lost — the retained record for each key is the
//! contract).
//!
//! ## Wakeups
//!
//! Every append bumps a broker-wide sequence number and notifies a condvar.
//! Consumers park in [`Broker::wait_for_data`] with a bounded timeout instead
//! of busy-polling; producers that finish call [`Broker::wake_all`] so parked
//! consumers re-check their exit conditions immediately. [`Broker::close`]
//! rides the same protocol: it bumps the sequence and wakes everyone, so a
//! consumer parked on a broker that just died observes the closure instead of
//! hanging. The wakeup lock is a *leaf* lock: it is only ever acquired with
//! no other broker lock held, and the condvar is notified after its guard is
//! dropped (workspace rule R4).

use crate::wal::{self, RecoveryInfo, RetentionCode, SegmentedLog, WalConfig, WalError};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An unappended record: optional partitioning key plus payload. The item
/// type of [`Broker::produce_batch`].
pub type Record = (Option<u64>, Arc<Vec<u8>>);

/// One record in a partition log.
#[derive(Clone, Debug)]
pub struct Message {
    /// Offset within its partition (dense under count retention; sparse
    /// under compaction, where superseded offsets disappear).
    pub offset: u64,
    /// Seconds since broker start when the record was appended.
    pub enqueued_s: f64,
    /// Optional partitioning key.
    pub key: Option<u64>,
    /// Payload bytes (shared, zero-copy to consumers).
    pub payload: Arc<Vec<u8>>,
}

/// Per-partition retention policy of a topic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Retention {
    /// Keep at most this many records; oldest are trimmed beyond it and the
    /// partition's start offset advances (a group still parked before it
    /// records the gap as `records_lost`).
    Count(usize),
    /// Log compaction: whenever the retained count reaches the (adaptive)
    /// threshold seeded by `trigger`, only the latest record per key
    /// survives. Offsets are preserved (the log goes sparse); superseded
    /// records are not data loss. Unkeyed produces are rejected with
    /// [`BrokerError::KeyRequired`].
    Compact {
        /// Floor for the compaction threshold (records retained before a
        /// compaction pass is considered).
        trigger: usize,
    },
}

/// Broker errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// Topic does not exist.
    UnknownTopic(String),
    /// Topic already exists.
    TopicExists(String),
    /// Consumer is not a member of the group.
    UnknownConsumer,
    /// Group does not exist.
    UnknownGroup(String),
    /// Partition index out of range for the topic.
    UnknownPartition {
        /// Topic the partition was looked up in.
        topic: String,
        /// The out-of-range index.
        partition: usize,
    },
    /// A commit named an offset past the partition's next offset — the
    /// records it claims to have consumed do not exist.
    OffsetBeyondEnd {
        /// Topic of the partition.
        topic: String,
        /// Partition index.
        partition: usize,
        /// The rejected offset.
        offset: u64,
        /// The partition's next offset at validation time.
        next_offset: u64,
    },
    /// A compacted topic was produced to without a key (compaction retains
    /// the latest record *per key*; an unkeyed record has no identity).
    KeyRequired(String),
    /// The broker was closed (node killed / shut down); appends are
    /// rejected. Reads still drain whatever is in memory.
    BrokerClosed,
    /// An append carried a stale leadership epoch — a newer leader was
    /// elected for the partition and the old one is fenced off.
    FencedEpoch {
        /// Topic of the partition.
        topic: String,
        /// Partition index.
        partition: usize,
        /// The stale epoch the append carried.
        epoch: u64,
        /// The current leadership epoch.
        current: u64,
    },
    /// `join_group` named a topic different from the one the group already
    /// consumes (the group's offset vector is sized to its topic's partition
    /// count, so silently reusing the group would corrupt accounting).
    GroupTopicMismatch {
        /// The group that was joined.
        group: String,
        /// The topic the group already consumes.
        existing: String,
        /// The mismatching topic the join requested.
        requested: String,
    },
    /// Every node of a replicated cluster is dead — there is nothing to
    /// append to, read from, or promote.
    NoAliveReplica,
    /// A cluster operation named a node index the cluster does not have.
    UnknownNode {
        /// The out-of-range index.
        node: usize,
        /// The cluster's node count.
        nodes: usize,
    },
    /// The operation requires an alive node but the named node is dead
    /// (e.g. a double kill).
    NodeDead(usize),
    /// The operation requires a dead node but the named node is alive
    /// (e.g. restarting a node that was never killed).
    NodeAlive(usize),
    /// A write-ahead-log operation failed.
    Wal(WalError),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic '{t}'"),
            BrokerError::TopicExists(t) => write!(f, "topic '{t}' exists"),
            BrokerError::UnknownConsumer => write!(f, "unknown consumer in group"),
            BrokerError::UnknownGroup(g) => write!(f, "unknown group '{g}'"),
            BrokerError::UnknownPartition { topic, partition } => {
                write!(f, "topic '{topic}' has no partition {partition}")
            }
            BrokerError::OffsetBeyondEnd {
                topic,
                partition,
                offset,
                next_offset,
            } => write!(
                f,
                "commit offset {offset} beyond end {next_offset} of '{topic}'/{partition}"
            ),
            BrokerError::KeyRequired(t) => {
                write!(f, "compacted topic '{t}' requires keyed records")
            }
            BrokerError::BrokerClosed => write!(f, "broker is closed"),
            BrokerError::FencedEpoch {
                topic,
                partition,
                epoch,
                current,
            } => write!(
                f,
                "append to '{topic}'/{partition} fenced: epoch {epoch} < current {current}"
            ),
            BrokerError::GroupTopicMismatch {
                group,
                existing,
                requested,
            } => write!(
                f,
                "group '{group}' consumes topic '{existing}', not '{requested}'"
            ),
            BrokerError::NoAliveReplica => write!(f, "no alive replica in cluster"),
            BrokerError::UnknownNode { node, nodes } => {
                write!(f, "node {node} out of range for {nodes}-node cluster")
            }
            BrokerError::NodeDead(n) => write!(f, "node {n} is dead"),
            BrokerError::NodeAlive(n) => write!(f, "node {n} is alive"),
            BrokerError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<WalError> for BrokerError {
    fn from(e: WalError) -> Self {
        BrokerError::Wal(e)
    }
}

struct PartitionLog {
    /// Retained records; `VecDeque` keeps retention trimming O(1) per
    /// message (front pops) instead of O(n) front drains.
    records: VecDeque<Message>,
    /// Lowest offset *not* trimmed by count-based retention. Offsets below
    /// it are gone for capacity reasons — a group committed before it lost
    /// data. Compaction never advances it (superseded ≠ lost).
    start_offset: u64,
    /// Offset the next append receives. Explicit (not derived from `records`
    /// length) because compaction leaves sparse logs.
    next_offset: u64,
    /// Adaptive compaction threshold: compact when the retained count
    /// reaches it, then reset to `max(trigger, 2 * retained)` so a log of
    /// mostly-distinct keys isn't rescanned on every append.
    compact_at: usize,
    /// Durable backing, when the broker was opened with a [`WalConfig`].
    /// Lives inside the partition mutex so WAL order == log order.
    wal: Option<SegmentedLog>,
}

impl PartitionLog {
    fn fresh(retention: &Retention, wal: Option<SegmentedLog>) -> PartitionLog {
        PartitionLog {
            records: VecDeque::new(),
            start_offset: 0,
            next_offset: 0,
            compact_at: match retention {
                Retention::Count(_) => usize::MAX,
                Retention::Compact { trigger } => (*trigger).max(2),
            },
            wal,
        }
    }

    /// Index of the first retained record with `offset >= from` (binary
    /// search — compaction makes offsets sparse, so arithmetic won't do).
    fn position(&self, from: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.records.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.records[mid].offset < from {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Append one record (WAL first, then memory) and apply retention.
    fn append(
        &mut self,
        key: Option<u64>,
        enqueued_s: f64,
        payload: Arc<Vec<u8>>,
        retention: &Retention,
    ) -> Result<u64, WalError> {
        let offset = self.next_offset;
        if let Some(w) = self.wal.as_mut() {
            w.append(&wal::encode_message(offset, key, enqueued_s, &payload))?;
        }
        self.records.push_back(Message {
            offset,
            enqueued_s,
            key,
            payload,
        });
        self.next_offset = offset + 1;
        self.apply_retention(retention);
        Ok(offset)
    }

    /// Apply one retention step after an append (or one replayed record).
    fn apply_retention(&mut self, retention: &Retention) {
        match retention {
            Retention::Count(n) => {
                while self.records.len() > (*n).max(1) {
                    if let Some(m) = self.records.pop_front() {
                        self.start_offset = m.offset + 1;
                    }
                }
            }
            Retention::Compact { trigger } => {
                if self.records.len() >= self.compact_at {
                    self.compact();
                    self.compact_at = (self.records.len() * 2).max((*trigger).max(2));
                }
            }
        }
    }

    /// Keep only the latest record per key, preserving offsets.
    fn compact(&mut self) {
        let mut latest: HashSet<u64> = HashSet::with_capacity(self.records.len());
        let mut keep: Vec<bool> = vec![false; self.records.len()];
        for (i, m) in self.records.iter().enumerate().rev() {
            match m.key {
                // Unkeyed records can only predate a retention switch; they
                // have no identity to supersede, so they survive compaction.
                None => keep[i] = true,
                Some(k) => {
                    if latest.insert(k) {
                        keep[i] = true;
                    }
                }
            }
        }
        let mut i = 0;
        self.records.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }
}

struct Topic {
    partitions: Vec<Mutex<PartitionLog>>,
    round_robin: Mutex<usize>,
    retention: Retention,
}

struct Group {
    /// Members in join order.
    members: Vec<String>,
    /// Committed next-read offset per partition.
    offsets: Vec<u64>,
    topic: String,
    /// Bumped on every membership change; [`Subscription`]s cache their
    /// assignment against it and refresh only when it moves.
    epoch: u64,
    /// Records trimmed by count-based retention before the group consumed
    /// them (offset committed past the gap; loss surfaced, never silent).
    records_lost: u64,
}

impl Group {
    /// Partitions assigned to `consumer` (even split, join order).
    fn assigned_for(&self, consumer: &str) -> Result<Vec<usize>, BrokerError> {
        let me = self
            .members
            .iter()
            .position(|m| m == consumer)
            .ok_or(BrokerError::UnknownConsumer)?;
        let n = self.offsets.len();
        Ok((0..n).filter(|p| p % self.members.len() == me).collect())
    }
}

/// Snapshot of a consumer group's accounting (see [`Broker::group_stats`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupStats {
    /// Topic the group consumes.
    pub topic: String,
    /// Member count.
    pub members: usize,
    /// Rebalance epoch.
    pub epoch: u64,
    /// Committed next-read offset per partition.
    pub offsets: Vec<u64>,
    /// Sum of committed offsets.
    pub committed: u64,
    /// Records trimmed by count-based retention before this group consumed
    /// them — each one was skipped by bumping the committed offset to the
    /// partition's start offset, and counted here instead of hidden.
    pub records_lost: u64,
    /// Per-partition lag: the number of *retained* records the group has
    /// not consumed ([`Broker::retained_counts`] at the committed offsets,
    /// taken *after* the group guard is released, so lag can be momentarily
    /// stale but never negative). On compacted topics this clamps lag at the
    /// earliest retained offset: records superseded by compaction are not
    /// backlog — the group will never fetch them — so they are not counted.
    pub lag: Vec<u64>,
}

impl GroupStats {
    /// Total records behind across all partitions.
    pub fn total_lag(&self) -> u64 {
        self.lag.iter().sum()
    }
}

/// A consumer's cached view of its group: assignment (under the group's
/// rebalance epoch), the topic handle, and reusable scratch buffers. Create
/// with [`Broker::subscribe`], poll with [`Broker::poll_into`].
///
/// The handle makes the steady-state poll path allocation-free: assignment
/// is only re-derived when the group epoch moves (a member joined), and
/// offsets/commits go through scratch vectors whose capacity is retained
/// across polls.
pub struct Subscription {
    group: String,
    consumer: String,
    topic_name: String,
    topic: Arc<Topic>,
    /// Group epoch the cached assignment was computed at (0 = never).
    epoch: u64,
    assigned: Vec<usize>,
    /// Scratch: next-read offset per assigned partition, refilled each poll.
    starts: Vec<u64>,
    /// Scratch: (partition, new offset, partition start offset) for the
    /// current poll. The start offset rides along so the commit step can
    /// account records trimmed out from under the group.
    commits: Vec<(usize, u64, u64)>,
}

impl Subscription {
    /// Group this subscription polls through.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Consumer name within the group.
    pub fn consumer(&self) -> &str {
        &self.consumer
    }

    /// Cached partition assignment (refreshed lazily on poll after a
    /// rebalance; empty before the first poll).
    pub fn assignment(&self) -> &[usize] {
        &self.assigned
    }

    /// `(partition, committed offset)` pairs from the most recent
    /// [`Broker::poll_into`] — what that poll advanced the group to. Lets a
    /// replication layer forward commits to follower nodes.
    pub fn last_commits(&self) -> Vec<(usize, u64)> {
        self.commits.iter().map(|&(p, off, _)| (p, off)).collect()
    }
}

/// Durable state shared by the broker's non-partition logs.
struct WalState {
    cfg: WalConfig,
    /// Topic-creation log. Locked *after* `topics.write` (create path only).
    meta: Mutex<SegmentedLog>,
    /// Committed-offsets log. Leaf lock: appended with no other broker lock
    /// held (max-merge replay makes append order irrelevant).
    offsets: Mutex<SegmentedLog>,
}

/// The broker. Shareable across threads (`Arc<Broker>`).
pub struct Broker {
    epoch: Instant,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    groups: RwLock<HashMap<String, Mutex<Group>>>,
    /// Append sequence number: bumped on every produce so consumers can park
    /// until data arrives instead of busy-polling. Leaf lock — never held
    /// while acquiring any other broker lock.
    wakeup_seq: Mutex<u64>,
    wakeup: Condvar,
    /// Set by [`Broker::close`]; appends rejected, parked waiters woken.
    closed: AtomicBool,
    wal: Option<WalState>,
    /// What recovery found when this broker was [`Broker::open`]ed.
    recovery: RecoveryInfo,
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

impl Broker {
    /// A broker with no topics and no durability (pure in-memory).
    pub fn new() -> Self {
        Broker {
            epoch: Instant::now(),
            topics: RwLock::new(HashMap::new()),
            groups: RwLock::new(HashMap::new()),
            wakeup_seq: Mutex::new(0),
            wakeup: Condvar::new(),
            closed: AtomicBool::new(false),
            wal: None,
            recovery: RecoveryInfo::default(),
        }
    }

    /// Open a durable broker rooted at `cfg.dir`, replaying whatever a
    /// previous incarnation left there: the meta log rebuilds topics, each
    /// partition log is replayed (truncating at the first torn or corrupt
    /// record — recovery is prefix-consistent), retention/compaction is
    /// re-applied deterministically, and committed group offsets are
    /// restored, clamped to each partition's recovered high watermark.
    /// Groups come back with their offsets but no members: consumers must
    /// re-join, then resume exactly where the crashed broker committed them.
    pub fn open(cfg: WalConfig) -> Result<Broker, BrokerError> {
        let mut recovery = RecoveryInfo::default();
        let (meta, meta_records, info) =
            SegmentedLog::open(cfg.dir.join("meta"), cfg.segment_bytes, cfg.fsync)?;
        recovery.absorb(&info);
        let mut topics: HashMap<String, Arc<Topic>> = HashMap::new();
        for rec in &meta_records {
            let (name, partitions, code) = wal::decode_topic_meta(rec)?;
            let retention = match code {
                RetentionCode::Count(n) => Retention::Count(n as usize),
                RetentionCode::Compact(n) => Retention::Compact {
                    trigger: n as usize,
                },
            };
            let mut parts = Vec::with_capacity(partitions as usize);
            for p in 0..partitions as usize {
                let (log, info) =
                    Self::open_partition(&partition_dir(&cfg.dir, &name, p), &cfg, &retention)?;
                recovery.absorb(&info);
                parts.push(Mutex::new(log));
            }
            topics.insert(
                name,
                Arc::new(Topic {
                    partitions: parts,
                    round_robin: Mutex::new(0),
                    retention,
                }),
            );
        }
        let (offsets, offset_records, info) =
            SegmentedLog::open(cfg.dir.join("offsets"), cfg.segment_bytes, cfg.fsync)?;
        recovery.absorb(&info);
        let mut groups: HashMap<String, Mutex<Group>> = HashMap::new();
        for rec in &offset_records {
            let (group, topic, partition, offset) = wal::decode_commit(rec)?;
            // A commit for a topic (or partition) the truncated meta log no
            // longer knows is dropped: offsets are meaningless without the
            // log they index into.
            let Some(t) = topics.get(&topic) else {
                continue;
            };
            if partition as usize >= t.partitions.len() {
                continue;
            }
            let g = groups.entry(group).or_insert_with(|| {
                Mutex::new(Group {
                    members: Vec::new(),
                    offsets: vec![0; t.partitions.len()],
                    topic: topic.clone(),
                    epoch: 1,
                    records_lost: 0,
                })
            });
            let mut g = g.lock();
            if g.topic == topic {
                let cell = &mut g.offsets[partition as usize];
                *cell = (*cell).max(offset);
            }
        }
        // The offsets log can run ahead of a truncated partition log (the
        // commit record survived, the data's tail did not). Clamp: a group
        // must not resume past the recovered high watermark.
        for g in groups.values_mut() {
            let g = g.get_mut();
            if let Some(t) = topics.get(&g.topic) {
                for (p, off) in g.offsets.iter_mut().enumerate() {
                    let hw = t.partitions[p].lock().next_offset;
                    *off = (*off).min(hw);
                }
            }
        }
        Ok(Broker {
            epoch: Instant::now(),
            topics: RwLock::new(topics),
            groups: RwLock::new(groups),
            wakeup_seq: Mutex::new(0),
            wakeup: Condvar::new(),
            closed: AtomicBool::new(false),
            wal: Some(WalState {
                cfg,
                meta: Mutex::new(meta),
                offsets: Mutex::new(offsets),
            }),
            recovery,
        })
    }

    fn open_partition(
        dir: &Path,
        cfg: &WalConfig,
        retention: &Retention,
    ) -> Result<(PartitionLog, RecoveryInfo), BrokerError> {
        let (wal_log, records, info) = SegmentedLog::open(dir, cfg.segment_bytes, cfg.fsync)?;
        let mut log = PartitionLog::fresh(retention, Some(wal_log));
        for rec in &records {
            let (offset, key, enqueued_s, payload) = wal::decode_message(rec)?;
            log.records.push_back(Message {
                offset,
                enqueued_s,
                key,
                payload: Arc::new(payload),
            });
            log.next_offset = offset + 1;
            // Re-applying retention per replayed record reproduces the live
            // brokers's trim/compaction decisions record for record, so the
            // recovered in-memory state matches the crashed one's.
            log.apply_retention(retention);
        }
        Ok((log, info))
    }

    /// What recovery found when this broker was [`Broker::open`]ed (all
    /// zeros for in-memory brokers and clean starts).
    pub fn recovery_info(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// True when the broker was opened with a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Close the broker: appends are rejected from here on
    /// ([`BrokerError::BrokerClosed`]), reads still drain, and every
    /// consumer parked in [`Broker::wait_for_data`] is woken so it can
    /// observe the closure instead of hanging.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.note_append();
    }

    /// True once [`Broker::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Seconds since broker start (the latency clock).
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Create a topic with `partitions` partitions and count-based retention
    /// (oldest records trimmed beyond the bound).
    pub fn create_topic(
        &self,
        name: &str,
        partitions: usize,
        retention: usize,
    ) -> Result<(), BrokerError> {
        self.create_topic_with(name, partitions, Retention::Count(retention.max(1)))
    }

    /// Create a topic with an explicit [`Retention`] policy.
    pub fn create_topic_with(
        &self,
        name: &str,
        partitions: usize,
        retention: Retention,
    ) -> Result<(), BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::BrokerClosed);
        }
        if let Some(w) = &self.wal {
            // Topic names become directory components under the WAL root.
            let ok = !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                && name != "."
                && name != "..";
            if !ok {
                return Err(BrokerError::Wal(WalError {
                    op: "create-topic",
                    path: w.cfg.dir.display().to_string(),
                    detail: format!("topic name '{name}' is not filesystem-safe"),
                }));
            }
        }
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists(name.to_string()));
        }
        let n = partitions.max(1);
        let mut parts = Vec::with_capacity(n);
        for p in 0..n {
            let wal_log = match &self.wal {
                Some(w) => {
                    let (log, _, _) = SegmentedLog::open(
                        partition_dir(&w.cfg.dir, name, p),
                        w.cfg.segment_bytes,
                        w.cfg.fsync,
                    )?;
                    Some(log)
                }
                None => None,
            };
            parts.push(Mutex::new(PartitionLog::fresh(&retention, wal_log)));
        }
        if let Some(w) = &self.wal {
            let code = match retention {
                Retention::Count(c) => RetentionCode::Count(c as u64),
                Retention::Compact { trigger } => RetentionCode::Compact(trigger as u64),
            };
            w.meta
                .lock()
                .append(&wal::encode_topic_meta(name, n as u32, code))?;
        }
        topics.insert(
            name.to_string(),
            Arc::new(Topic {
                partitions: parts,
                round_robin: Mutex::new(0),
                retention,
            }),
        );
        Ok(())
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<usize, BrokerError> {
        Ok(self.topic(topic)?.partitions.len())
    }

    /// Retention policy of a topic.
    pub fn retention(&self, topic: &str) -> Result<Retention, BrokerError> {
        Ok(self.topic(topic)?.retention)
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>, BrokerError> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    /// Bump the append sequence and wake parked consumers. The guard is
    /// dropped before `notify_all` (R4: no guard across a wake).
    fn note_append(&self) {
        let mut seq = self.wakeup_seq.lock();
        *seq = seq.wrapping_add(1);
        drop(seq);
        self.wakeup.notify_all();
    }

    /// Current append sequence number. Sample it *before* a poll; if the
    /// poll comes back empty, pass the sample to [`Broker::wait_for_data`] —
    /// an append between the sample and the wait then returns immediately
    /// instead of being missed.
    pub fn data_seq(&self) -> u64 {
        *self.wakeup_seq.lock()
    }

    /// Park until the append sequence moves past `seen` or `timeout`
    /// elapses; returns the current sequence. The wait loops across
    /// spurious wakeups, re-arming with the *remaining* timeout each round,
    /// so a spuriously-notified waiter parks again instead of returning
    /// early and spinning hot inside its intended park window. Missed
    /// wakeups are not possible, provided `seen` was sampled before the
    /// empty poll that led here. A [`Broker::close`] also bumps the
    /// sequence, so waiters observe broker death through the same protocol
    /// as data arrival.
    pub fn wait_for_data(&self, seen: u64, timeout: Duration) -> u64 {
        let start = Instant::now();
        let mut seq = self.wakeup_seq.lock();
        while *seq == seen {
            let Some(remaining) = timeout.checked_sub(start.elapsed()) else {
                break;
            };
            if remaining.is_zero() {
                break;
            }
            let _ = self.wakeup.wait_for(&mut seq, remaining);
        }
        *seq
    }

    /// Test hook: notify parked waiters *without* bumping the append
    /// sequence — a manufactured spurious wakeup. Real condvars produce
    /// these on their own; the hook makes them deterministic to test.
    #[cfg(test)]
    pub(crate) fn spurious_wake(&self) {
        self.wakeup.notify_all();
    }

    /// Wake every parked consumer without appending data (e.g. after the
    /// last producer finishes, so consumers re-check their exit condition
    /// immediately instead of riding out their park timeout).
    pub fn wake_all(&self) {
        self.note_append();
    }

    /// Append a record. Keyed records hash to a fixed partition (per-key
    /// order); unkeyed ones round-robin starting at partition 0. Returns
    /// (partition, offset).
    pub fn produce(
        &self,
        topic: &str,
        key: Option<u64>,
        payload: Arc<Vec<u8>>,
    ) -> Result<(usize, u64), BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::BrokerClosed);
        }
        let t = self.topic(topic)?;
        if matches!(t.retention, Retention::Compact { .. }) && key.is_none() {
            return Err(BrokerError::KeyRequired(topic.to_string()));
        }
        let n = t.partitions.len();
        let p = match key {
            Some(k) => Self::key_partition(k, n),
            None => {
                let mut rr = t.round_robin.lock();
                let p = *rr % n;
                *rr = (p + 1) % n;
                p
            }
        };
        let now = self.now_s();
        let offset = t.partitions[p]
            .lock()
            .append(key, now, payload, &t.retention)?;
        self.note_append();
        Ok((p, offset))
    }

    pub(crate) fn key_partition(key: u64, partitions: usize) -> usize {
        key_partition(key, partitions)
    }

    /// Append a batch of `(key, payload)` records in one shot: one timestamp
    /// read for the whole batch, one round-robin cursor advance under one
    /// lock, and one lock acquire per *touched partition* regardless of how
    /// many records land there. Record order is preserved within each
    /// partition, and the round-robin cursor is shared with
    /// [`Broker::produce`], so mixing the two APIs keeps the spread even.
    /// Returns the number of records appended.
    pub fn produce_batch(
        &self,
        topic: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<u64, BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::BrokerClosed);
        }
        let t = self.topic(topic)?;
        let compacted = matches!(t.retention, Retention::Compact { .. });
        let n = t.partitions.len();
        let now = self.now_s(); // one timestamp read per batch
        let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        {
            // The round-robin cursor is locked at most once per batch, and
            // only if the batch contains unkeyed records. Nothing has been
            // appended yet, so a KeyRequired reject leaves the log untouched.
            let mut rr = None;
            for (key, payload) in records {
                let p = match key {
                    Some(k) => Self::key_partition(k, n),
                    None => {
                        if compacted {
                            return Err(BrokerError::KeyRequired(topic.to_string()));
                        }
                        let cursor = rr.get_or_insert_with(|| t.round_robin.lock());
                        let p = **cursor % n;
                        **cursor = (p + 1) % n;
                        p
                    }
                };
                buckets[p].push((key, payload));
                total += 1;
            }
        }
        if total == 0 {
            return Ok(0);
        }
        for (p, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut log = t.partitions[p].lock(); // one acquire per partition
            for (key, payload) in bucket {
                log.append(key, now, payload, &t.retention)?;
            }
        }
        self.note_append();
        Ok(total)
    }

    /// Append a batch of `(partition, key, payload)` records in one shot —
    /// the *routed* sibling of [`Broker::produce_batch`], for producers that
    /// decouple routing from record identity. Compacted projection topics
    /// need exactly that split: records are routed by *entity* (so one
    /// entity's events keep per-partition total order) but keyed by a
    /// kind-aware *compaction identity*, so latest-per-key compaction keeps
    /// the newest record of each (entity, kind) instead of letting one kind
    /// supersede another. Costs match `produce_batch`: one timestamp read
    /// and one lock acquire per touched partition. The whole batch is
    /// validated (partition bounds, keys present on compacted topics) before
    /// anything is appended. Returns the number of records appended.
    pub fn produce_batch_routed(
        &self,
        topic: &str,
        records: impl IntoIterator<Item = (usize, Option<u64>, Arc<Vec<u8>>)>,
    ) -> Result<u64, BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::BrokerClosed);
        }
        let t = self.topic(topic)?;
        let compacted = matches!(t.retention, Retention::Compact { .. });
        let n = t.partitions.len();
        let now = self.now_s(); // one timestamp read per batch
        let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        for (p, key, payload) in records {
            if p >= n {
                return Err(BrokerError::UnknownPartition {
                    topic: topic.to_string(),
                    partition: p,
                });
            }
            if compacted && key.is_none() {
                return Err(BrokerError::KeyRequired(topic.to_string()));
            }
            buckets[p].push((key, payload));
            total += 1;
        }
        if total == 0 {
            return Ok(0);
        }
        for (p, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut log = t.partitions[p].lock(); // one acquire per partition
            for (key, payload) in bucket {
                log.append(key, now, payload, &t.retention)?;
            }
        }
        self.note_append();
        Ok(total)
    }

    /// Append records to one *explicit* partition with an explicit
    /// timestamp. The replication layer uses this to apply the same batch to
    /// every node: identical inputs yield identical offsets, timestamps, and
    /// WAL bytes on each replica. Returns the base offset of the first
    /// appended record.
    pub(crate) fn append_at(
        &self,
        topic: &str,
        partition: usize,
        enqueued_s: f64,
        records: &[Record],
    ) -> Result<u64, BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::BrokerClosed);
        }
        let t = self.topic(topic)?;
        if partition >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let mut log = t.partitions[partition].lock();
        let base = log.next_offset;
        for (key, payload) in records {
            log.append(*key, enqueued_s, Arc::clone(payload), &t.retention)?;
        }
        drop(log);
        self.note_append();
        Ok(base)
    }

    /// Append already-sequenced messages (offset + timestamp preserved) to a
    /// partition, skipping any the log already has. The replication layer's
    /// catch-up path: a restarted node replays its own WAL prefix, then pulls
    /// the missing suffix from a live replica through this.
    pub(crate) fn append_messages(
        &self,
        topic: &str,
        partition: usize,
        msgs: &[Message],
    ) -> Result<(), BrokerError> {
        if self.is_closed() {
            return Err(BrokerError::BrokerClosed);
        }
        let t = self.topic(topic)?;
        if partition >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let mut log = t.partitions[partition].lock();
        for m in msgs {
            if m.offset < log.next_offset {
                continue; // already recovered locally
            }
            if let Some(w) = log.wal.as_mut() {
                w.append(&wal::encode_message(
                    m.offset,
                    m.key,
                    m.enqueued_s,
                    &m.payload,
                ))?;
            }
            log.records.push_back(m.clone());
            log.next_offset = m.offset + 1;
            log.apply_retention(&t.retention);
        }
        drop(log);
        self.note_append();
        Ok(())
    }

    /// Read up to `max` records from one partition starting at `from`,
    /// without any group bookkeeping.
    pub fn fetch(
        &self,
        topic: &str,
        partition: usize,
        from: u64,
        max: usize,
    ) -> Result<Vec<Message>, BrokerError> {
        let t = self.topic(topic)?;
        if partition >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let mut out = Vec::new();
        Self::fetch_into(&t, partition, from, max, &mut out);
        Ok(out)
    }

    /// Append up to `max` records from one partition into `buf`; returns the
    /// count appended and the partition's start offset (first offset not
    /// count-trimmed — callers compare it to their committed position to
    /// detect records lost to retention).
    fn fetch_into(
        t: &Topic,
        partition: usize,
        from: u64,
        max: usize,
        buf: &mut Vec<Message>,
    ) -> (usize, u64) {
        let log = t.partitions[partition].lock();
        // Binary-search the start: compaction leaves sparse offsets, so
        // arithmetic indexing from `base` no longer applies.
        let idx = log.position(from);
        let before = buf.len();
        buf.extend(log.records.range(idx..).take(max).cloned());
        (buf.len() - before, log.start_offset)
    }

    /// Next offset to be written in a partition (= count of appended records
    /// when nothing was trimmed).
    pub fn high_watermark(&self, topic: &str, partition: usize) -> Result<u64, BrokerError> {
        let t = self.topic(topic)?;
        if partition >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let hw = t.partitions[partition].lock().next_offset;
        Ok(hw)
    }

    /// High watermark (next offset to be written) for *every* partition of
    /// `topic`, in partition order — one call instead of a per-partition
    /// loop, and no group join required. This is how projections and
    /// dashboards compute consumer lag cheaply: each partition's mutex is
    /// held only long enough to read one counter.
    pub fn high_watermarks(&self, topic: &str) -> Result<Vec<u64>, BrokerError> {
        let t = self.topic(topic)?;
        Ok(t.partitions.iter().map(|p| p.lock().next_offset).collect())
    }

    /// First offset not trimmed by count-based retention in a partition.
    pub fn start_offset(&self, topic: &str, partition: usize) -> Result<u64, BrokerError> {
        let t = self.topic(topic)?;
        if partition >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let start = t.partitions[partition].lock().start_offset;
        Ok(start)
    }

    /// Offset of the earliest *retained* record per partition (the
    /// partition's next offset when nothing is retained). Differs from
    /// [`Broker::start_offset`] on compacted topics: compaction supersedes
    /// records without advancing the start offset (superseded is not lost),
    /// so the earliest retained offset — the true lower bound on what a
    /// bootstrap replays — can sit far above it.
    pub fn earliest_offsets(&self, topic: &str) -> Result<Vec<u64>, BrokerError> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .map(|p| {
                let log = p.lock();
                log.records
                    .front()
                    .map(|m| m.offset)
                    .unwrap_or(log.next_offset)
            })
            .collect())
    }

    /// Number of *retained* records at or after `from` in one partition.
    /// This is the honest backlog of a consumer committed at `from`: records
    /// compacted away (superseded by a newer record of the same key) or
    /// count-trimmed are not work the consumer will ever fetch, so they are
    /// not counted — equivalently, lag is clamped at the earliest retained
    /// offset and can never go negative on a sparse log.
    pub fn retained_after(
        &self,
        topic: &str,
        partition: usize,
        from: u64,
    ) -> Result<u64, BrokerError> {
        let t = self.topic(topic)?;
        if partition >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let log = t.partitions[partition].lock();
        Ok((log.records.len() - log.position(from)) as u64)
    }

    /// [`Broker::retained_after`] for every partition at once: `from[p]` is
    /// the consumer's committed offset in partition `p` (missing entries
    /// default to 0). Each partition's mutex is held only long enough for
    /// one binary search.
    pub fn retained_counts(&self, topic: &str, from: &[u64]) -> Result<Vec<u64>, BrokerError> {
        let t = self.topic(topic)?;
        Ok(t.partitions
            .iter()
            .enumerate()
            .map(|(p, part)| {
                let log = part.lock();
                let committed = from.get(p).copied().unwrap_or(0);
                (log.records.len() - log.position(committed)) as u64
            })
            .collect())
    }

    /// Join a consumer group on `topic`; partition assignments rebalance to
    /// an even split in member join order. Joining an existing group with a
    /// different topic is an error ([`BrokerError::GroupTopicMismatch`]) —
    /// the group's offset vector is sized to its topic's partition count.
    pub fn join_group(&self, group: &str, topic: &str, consumer: &str) -> Result<(), BrokerError> {
        let n = self.partitions(topic)?;
        let mut groups = self.groups.write();
        let g = groups.entry(group.to_string()).or_insert_with(|| {
            Mutex::new(Group {
                members: Vec::new(),
                offsets: vec![0; n],
                topic: topic.to_string(),
                epoch: 1,
                records_lost: 0,
            })
        });
        let mut g = g.lock();
        if g.topic != topic {
            return Err(BrokerError::GroupTopicMismatch {
                group: group.to_string(),
                existing: g.topic.clone(),
                requested: topic.to_string(),
            });
        }
        if !g.members.iter().any(|m| m == consumer) {
            g.members.push(consumer.to_string());
            g.epoch += 1;
        }
        Ok(())
    }

    /// Partitions currently assigned to `consumer` (even split, join order).
    pub fn assignment(&self, group: &str, consumer: &str) -> Result<Vec<usize>, BrokerError> {
        let groups = self.groups.read();
        let g = groups
            .get(group)
            .ok_or(BrokerError::UnknownConsumer)?
            .lock();
        g.assigned_for(consumer)
    }

    /// Build a [`Subscription`] for a consumer that already joined `group`.
    /// The handle caches the topic and (lazily, on first poll) the partition
    /// assignment, making [`Broker::poll_into`] allocation-free at steady
    /// state.
    pub fn subscribe(&self, group: &str, consumer: &str) -> Result<Subscription, BrokerError> {
        let topic_name = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            if !g.members.iter().any(|m| m == consumer) {
                return Err(BrokerError::UnknownConsumer);
            }
            g.topic.clone()
        };
        let topic = self.topic(&topic_name)?;
        Ok(Subscription {
            group: group.to_string(),
            consumer: consumer.to_string(),
            topic_name,
            topic,
            epoch: 0, // group epochs start at 1 ⇒ first poll refreshes
            assigned: Vec::new(),
            starts: Vec::new(),
            commits: Vec::new(),
        })
    }

    /// Poll up to `max` records across the subscription's assigned
    /// partitions into `buf` (cleared first; capacity is reused), advancing
    /// the group offsets past what is returned. Returns the record count.
    ///
    /// When count-based retention has trimmed past the group's committed
    /// position, the offset is bumped to the partition's start offset and the
    /// gap is added to the group's `records_lost` — consumption resumes at
    /// the oldest retained record instead of silently pretending nothing
    /// happened.
    ///
    /// Steady-state cost: two group-lock acquires (read offsets, commit) and
    /// one partition-lock acquire per assigned partition with data — the
    /// assignment is cached under the group's rebalance epoch and only
    /// re-derived after a membership change, and no `Vec` is allocated.
    pub fn poll_into(
        &self,
        sub: &mut Subscription,
        max: usize,
        buf: &mut Vec<Message>,
    ) -> Result<usize, BrokerError> {
        buf.clear();
        sub.starts.clear();
        sub.commits.clear();
        {
            let groups = self.groups.read();
            let g = groups
                .get(&sub.group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            if g.epoch != sub.epoch {
                let me = g
                    .members
                    .iter()
                    .position(|m| m == &sub.consumer)
                    .ok_or(BrokerError::UnknownConsumer)?;
                sub.assigned.clear();
                sub.assigned
                    .extend((0..g.offsets.len()).filter(|p| p % g.members.len() == me));
                sub.epoch = g.epoch;
            }
            sub.starts
                .extend(sub.assigned.iter().map(|&p| g.offsets[p]));
        }
        for (i, &p) in sub.assigned.iter().enumerate() {
            if buf.len() >= max {
                break;
            }
            let (got, start_offset) =
                Self::fetch_into(&sub.topic, p, sub.starts[i], max - buf.len(), buf);
            if got > 0 {
                if let Some(last) = buf.last() {
                    sub.commits.push((p, last.offset + 1, start_offset));
                }
            } else if start_offset > sub.starts[i] {
                // Nothing retained at or past our position, yet the start
                // offset moved beyond it: everything up to the start offset
                // was trimmed. Commit the bump so the loss is accounted once.
                sub.commits.push((p, start_offset, start_offset));
            }
        }
        if !sub.commits.is_empty() {
            self.merge_commits(&sub.group, &sub.commits)?;
            self.log_commits(&sub.group, &sub.topic_name, &sub.commits)?;
        }
        Ok(buf.len())
    }

    /// Max-merge a poll's commits into the group, accounting retention loss:
    /// any gap between the group's committed position and the partition's
    /// start offset is data the group never saw.
    fn merge_commits(&self, group: &str, commits: &[(usize, u64, u64)]) -> Result<(), BrokerError> {
        let groups = self.groups.read();
        let mut g = groups
            .get(group)
            .ok_or(BrokerError::UnknownConsumer)?
            .lock();
        for &(p, off, start_offset) in commits {
            if start_offset > g.offsets[p] {
                g.records_lost += start_offset - g.offsets[p];
            }
            g.offsets[p] = g.offsets[p].max(off);
        }
        Ok(())
    }

    /// Persist a poll's commits to the offsets WAL (no-op without one).
    /// Called with no other broker lock held; replay max-merges, so append
    /// interleaving across threads is harmless.
    fn log_commits(
        &self,
        group: &str,
        topic: &str,
        commits: &[(usize, u64, u64)],
    ) -> Result<(), BrokerError> {
        if let Some(w) = &self.wal {
            let mut log = w.offsets.lock();
            for &(p, off, _) in commits {
                log.append(&wal::encode_commit(group, topic, p as u32, off))?;
            }
        }
        Ok(())
    }

    /// Explicitly commit a group's next-read offset for one partition
    /// (monotone: an offset at or below the current commit is a no-op, not a
    /// rewind). Validates its target: the partition must belong to the
    /// group's topic and the offset must not lie beyond the partition's next
    /// offset — records that were never appended cannot have been consumed.
    pub fn commit(&self, group: &str, partition: usize, offset: u64) -> Result<(), BrokerError> {
        let topic_name = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or_else(|| BrokerError::UnknownGroup(group.to_string()))?
                .lock();
            if partition >= g.offsets.len() {
                return Err(BrokerError::UnknownPartition {
                    topic: g.topic.clone(),
                    partition,
                });
            }
            g.topic.clone()
        };
        // The group lock is dropped before the partition lock is taken (no
        // nesting); the watermark only grows, so a stale sample can only
        // reject — never accept — an out-of-range offset.
        let hw = self.high_watermark(&topic_name, partition)?;
        if offset > hw {
            return Err(BrokerError::OffsetBeyondEnd {
                topic: topic_name,
                partition,
                offset,
                next_offset: hw,
            });
        }
        {
            let groups = self.groups.read();
            let mut g = groups
                .get(group)
                .ok_or_else(|| BrokerError::UnknownGroup(group.to_string()))?
                .lock();
            if partition >= g.offsets.len() {
                return Err(BrokerError::UnknownPartition {
                    topic: g.topic.clone(),
                    partition,
                });
            }
            g.offsets[partition] = g.offsets[partition].max(offset);
        }
        if let Some(w) = &self.wal {
            w.offsets.lock().append(&wal::encode_commit(
                group,
                &topic_name,
                partition as u32,
                offset,
            ))?;
        }
        Ok(())
    }

    /// Poll up to `max` records across the consumer's assigned partitions;
    /// advances (commits) the group offsets past what is returned. Stateless
    /// convenience path — allocates per call and re-derives the assignment;
    /// hot loops should hold a [`Subscription`] and use
    /// [`Broker::poll_into`].
    pub fn poll(
        &self,
        group: &str,
        consumer: &str,
        max: usize,
    ) -> Result<Vec<Message>, BrokerError> {
        // One lock acquire for assignment + topic + starting offsets.
        let (topic_name, starts): (String, Vec<(usize, u64)>) = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            let assigned = g.assigned_for(consumer)?;
            (
                g.topic.clone(),
                assigned.iter().map(|&p| (p, g.offsets[p])).collect(),
            )
        };
        let t = self.topic(&topic_name)?;
        let mut out = Vec::new();
        let mut commits: Vec<(usize, u64, u64)> = Vec::new();
        for (p, from) in starts {
            if out.len() >= max {
                break;
            }
            let (got, start_offset) = Self::fetch_into(&t, p, from, max - out.len(), &mut out);
            if got > 0 {
                if let Some(last) = out.last() {
                    commits.push((p, last.offset + 1, start_offset));
                }
            } else if start_offset > from {
                commits.push((p, start_offset, start_offset));
            }
        }
        if !commits.is_empty() {
            self.merge_commits(group, &commits)?;
            self.log_commits(group, &topic_name, &commits)?;
        }
        Ok(out)
    }

    /// Sum of committed offsets of a group (= records consumed, when nothing
    /// was trimmed before consumption).
    pub fn group_consumed(&self, group: &str) -> u64 {
        self.groups
            .read()
            .get(group)
            .map(|g| g.lock().offsets.iter().sum())
            .unwrap_or(0)
    }

    /// Snapshot of a group's accounting: committed offsets, membership,
    /// rebalance epoch, records lost to retention, and per-partition lag.
    pub fn group_stats(&self, group: &str) -> Result<GroupStats, BrokerError> {
        let mut stats = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or_else(|| BrokerError::UnknownGroup(group.to_string()))?
                .lock();
            GroupStats {
                topic: g.topic.clone(),
                members: g.members.len(),
                epoch: g.epoch,
                committed: g.offsets.iter().sum(),
                offsets: g.offsets.clone(),
                records_lost: g.records_lost,
                lag: Vec::new(),
            }
        };
        // Lag needs the partition locks; take them only after the group
        // guard is dropped (no nested group→partition locking). Counting
        // retained records (not high-watermark arithmetic) keeps lag honest
        // on sparse compacted logs: superseded records are never backlog.
        stats.lag = self.retained_counts(&stats.topic, &stats.offsets)?;
        Ok(stats)
    }

    /// Names of all groups (sorted, for deterministic iteration).
    pub fn group_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.groups.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all topics (sorted, for deterministic iteration).
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The broker's keyed-partitioning function: which partition of `partitions`
/// a record keyed `key` lands in. Public so layers *above* the broker (shard
/// planners, routed producers) can co-locate their routing with the broker's
/// without re-implementing the hash.
pub fn key_partition(key: u64, partitions: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % partitions
}

fn partition_dir(root: &Path, topic: &str, partition: usize) -> PathBuf {
    root.join("topics").join(topic).join(partition.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FsyncPolicy, TempDir};

    fn payload(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn create_and_duplicate_topic() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        assert_eq!(b.partitions("t").unwrap(), 4);
        assert_eq!(
            b.create_topic("t", 2, 10),
            Err(BrokerError::TopicExists("t".into()))
        );
        assert_eq!(
            b.partitions("nope"),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
    }

    #[test]
    fn offsets_are_dense_and_ordered_per_partition() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        for i in 0..10 {
            let (p, off) = b.produce("t", None, payload(i)).unwrap();
            assert_eq!(p, 0);
            assert_eq!(off, i as u64);
        }
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 10);
        assert!(msgs.windows(2).all(|w| w[0].offset + 1 == w[1].offset));
        assert!(msgs.windows(2).all(|w| w[0].enqueued_s <= w[1].enqueued_s));
    }

    #[test]
    fn keyed_records_stay_in_one_partition() {
        let b = Broker::new();
        b.create_topic("t", 8, 1000).unwrap();
        let parts: Vec<usize> = (0..20)
            .map(|_| b.produce("t", Some(42), payload(0)).unwrap().0)
            .collect();
        assert!(parts.iter().all(|&p| p == parts[0]));
        // Different keys spread.
        let spread: std::collections::HashSet<usize> = (0..100)
            .map(|k| b.produce("t", Some(k), payload(0)).unwrap().0)
            .collect();
        assert!(spread.len() > 3, "keys should hash across partitions");
    }

    #[test]
    fn unkeyed_round_robin_starts_at_zero_and_spreads() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        let (first, _) = b.produce("t", None, payload(0)).unwrap();
        assert_eq!(first, 0, "first unkeyed record lands on partition 0");
        let mut counts = [1u32, 0, 0, 0];
        for _ in 0..39 {
            let (p, _) = b.produce("t", None, payload(0)).unwrap();
            counts[p] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn round_robin_cursor_is_shared_between_produce_and_batch() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        // 3 singles land on 0, 1, 2; a batch of 5 continues 3, 0, 1, 2, 3.
        for _ in 0..3 {
            b.produce("t", None, payload(0)).unwrap();
        }
        let n = b
            .produce_batch("t", (0..5).map(|_| (None, payload(1))))
            .unwrap();
        assert_eq!(n, 5);
        let hw: Vec<u64> = (0..4).map(|p| b.high_watermark("t", p).unwrap()).collect();
        assert_eq!(hw, vec![2, 2, 2, 2]);
    }

    #[test]
    fn produce_batch_appends_in_order_with_one_timestamp() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        let n = b
            .produce_batch("t", (0..10u8).map(|i| (Some(7), payload(i))))
            .unwrap();
        assert_eq!(n, 10);
        // All keyed to the same partition, dense offsets, payload order kept.
        let part = Broker::key_partition(7, 2);
        let msgs = b.fetch("t", part, 0, 100).unwrap();
        assert_eq!(msgs.len(), 10);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.offset, i as u64);
            assert_eq!(m.payload[0], i as u8);
        }
        // One timestamp read for the whole batch.
        assert!(msgs.windows(2).all(|w| w[0].enqueued_s == w[1].enqueued_s));
        assert_eq!(b.produce_batch("t", std::iter::empty()).unwrap(), 0);
        assert_eq!(
            b.produce_batch("nope", std::iter::empty()),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
    }

    #[test]
    fn produce_batch_respects_retention() {
        let b = Broker::new();
        b.create_topic("t", 1, 5).unwrap();
        b.produce_batch("t", (0..12u8).map(|i| (None, payload(i))))
            .unwrap();
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].offset, 7, "oldest retained offset");
        assert_eq!(b.high_watermark("t", 0).unwrap(), 12);
    }

    #[test]
    fn retention_trims_oldest() {
        let b = Broker::new();
        b.create_topic("t", 1, 5).unwrap();
        for i in 0..12u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].offset, 7, "oldest retained offset");
        assert_eq!(b.high_watermark("t", 0).unwrap(), 12);
        assert_eq!(b.start_offset("t", 0).unwrap(), 7);
    }

    #[test]
    fn consumer_group_assignment_is_balanced() {
        let b = Broker::new();
        b.create_topic("t", 6, 1000).unwrap();
        b.join_group("g", "t", "c0").unwrap();
        b.join_group("g", "t", "c1").unwrap();
        b.join_group("g", "t", "c2").unwrap();
        let a0 = b.assignment("g", "c0").unwrap();
        let a1 = b.assignment("g", "c1").unwrap();
        let a2 = b.assignment("g", "c2").unwrap();
        assert_eq!(a0, vec![0, 3]);
        assert_eq!(a1, vec![1, 4]);
        assert_eq!(a2, vec![2, 5]);
        assert_eq!(
            b.assignment("g", "ghost"),
            Err(BrokerError::UnknownConsumer)
        );
    }

    #[test]
    fn join_group_rejects_topic_mismatch() {
        let b = Broker::new();
        b.create_topic("t1", 4, 1000).unwrap();
        b.create_topic("t2", 2, 1000).unwrap();
        b.join_group("g", "t1", "c0").unwrap();
        assert_eq!(
            b.join_group("g", "t2", "c1"),
            Err(BrokerError::GroupTopicMismatch {
                group: "g".into(),
                existing: "t1".into(),
                requested: "t2".into(),
            })
        );
        // The failed join must not have touched membership.
        assert_eq!(b.assignment("g", "c0").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(b.assignment("g", "c1"), Err(BrokerError::UnknownConsumer));
        // Re-joining with the right topic still works.
        b.join_group("g", "t1", "c1").unwrap();
        assert_eq!(b.assignment("g", "c1").unwrap(), vec![1, 3]);
    }

    #[test]
    fn poll_advances_offsets_without_redelivery() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let first = b.poll("g", "c", 100).unwrap();
        assert_eq!(first.len(), 10);
        let again = b.poll("g", "c", 100).unwrap();
        assert!(again.is_empty(), "no redelivery after commit");
        assert_eq!(b.group_consumed("g"), 10);
    }

    #[test]
    fn poll_respects_max() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let batch = b.poll("g", "c", 3).unwrap();
        assert_eq!(batch.len(), 3);
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(rest.len(), 7);
    }

    #[test]
    fn poll_into_reuses_buffer_and_commits() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        let mut sub = b.subscribe("g", "c").unwrap();
        let mut buf = Vec::new();
        assert_eq!(b.poll_into(&mut sub, 64, &mut buf).unwrap(), 0);
        assert_eq!(sub.assignment(), &[0, 1, 2, 3]);
        b.produce_batch("t", (0..10u8).map(|i| (None, payload(i))))
            .unwrap();
        assert_eq!(b.poll_into(&mut sub, 3, &mut buf).unwrap(), 3);
        assert_eq!(buf.len(), 3);
        let cap = buf.capacity();
        assert_eq!(b.poll_into(&mut sub, 64, &mut buf).unwrap(), 7);
        assert!(buf.capacity() >= cap, "buffer capacity is retained");
        assert_eq!(b.poll_into(&mut sub, 64, &mut buf).unwrap(), 0);
        assert_eq!(b.group_consumed("g"), 10, "poll_into commits offsets");
    }

    #[test]
    fn poll_and_poll_into_share_commits() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        let mut sub = b.subscribe("g", "c").unwrap();
        let mut buf = Vec::new();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let first = b.poll_into(&mut sub, 6, &mut buf).unwrap();
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(
            first + rest.len(),
            10,
            "no loss, no redelivery across paths"
        );
    }

    #[test]
    fn subscription_refreshes_after_rebalance() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        b.join_group("g", "t", "c0").unwrap();
        let mut sub = b.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        b.poll_into(&mut sub, 1, &mut buf).unwrap();
        assert_eq!(sub.assignment(), &[0, 1, 2, 3]);
        b.join_group("g", "t", "c1").unwrap();
        b.poll_into(&mut sub, 1, &mut buf).unwrap();
        assert_eq!(sub.assignment(), &[0, 2], "epoch bump shrinks assignment");
        // Disjoint with the new member; the whole stream is still covered.
        let mut sub1 = b.subscribe("g", "c1").unwrap();
        b.poll_into(&mut sub1, 1, &mut buf).unwrap();
        assert_eq!(sub1.assignment(), &[1, 3]);
    }

    #[test]
    fn subscribe_requires_membership() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        assert!(b.subscribe("g", "c").is_ok());
        assert!(matches!(
            b.subscribe("g", "ghost"),
            Err(BrokerError::UnknownConsumer)
        ));
        assert!(matches!(
            b.subscribe("nope", "c"),
            Err(BrokerError::UnknownConsumer)
        ));
    }

    #[test]
    fn two_groups_consume_independently() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g1", "t", "c").unwrap();
        b.join_group("g2", "t", "c").unwrap();
        for i in 0..5u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        assert_eq!(b.poll("g1", "c", 100).unwrap().len(), 5);
        assert_eq!(b.poll("g2", "c", 100).unwrap().len(), 5);
    }

    #[test]
    fn wait_for_data_wakes_on_produce() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 1, 1000).unwrap();
        let seen = b.data_seq();
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait_for_data(seen, Duration::from_secs(10)))
        };
        // Give the waiter a moment to park, then append.
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        b.produce("t", None, payload(0)).unwrap();
        let got = waiter.join().unwrap();
        assert_ne!(got, seen, "append must advance the sequence");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "wakeup, not timeout, must end the wait"
        );
    }

    #[test]
    fn wait_for_data_returns_immediately_when_stale() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        let seen = b.data_seq();
        b.produce("t", None, payload(0)).unwrap();
        let t0 = Instant::now();
        let got = b.wait_for_data(seen, Duration::from_secs(10));
        assert_ne!(got, seen);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "stale seen returns fast"
        );
    }

    #[test]
    fn spurious_wakeups_do_not_burn_the_timeout_budget() {
        // A waiter hammered with spurious notifications (sequence unchanged)
        // must ride out its full park window instead of returning early:
        // the pre-fix single wait_for turned every spurious wake into a hot
        // loop iteration in the consumer above it.
        let b = Arc::new(Broker::new());
        let seen = b.data_seq();
        let timeout = Duration::from_millis(300);
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let got = b.wait_for_data(seen, timeout);
                (got, t0.elapsed())
            })
        };
        // Spurious wakes well inside the park window.
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(20));
            b.spurious_wake();
        }
        let (got, waited) = waiter.join().unwrap();
        assert_eq!(got, seen, "no append happened; the sequence must not move");
        assert!(
            waited >= Duration::from_millis(250),
            "spurious wakeups burned the timeout budget: waited only {waited:?}"
        );
    }

    #[test]
    fn spuriously_woken_waiter_still_sees_a_real_append() {
        // The re-armed wait must stay correct: a real append after a burst
        // of spurious wakes still ends the wait promptly.
        let b = Arc::new(Broker::new());
        b.create_topic("t", 1, 1000).unwrap();
        let seen = b.data_seq();
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait_for_data(seen, Duration::from_secs(10)))
        };
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(10));
            b.spurious_wake();
        }
        let t0 = Instant::now();
        b.produce("t", None, payload(0)).unwrap();
        let got = waiter.join().unwrap();
        assert_ne!(got, seen, "append must advance the sequence");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the real wakeup, not the timeout, must end the wait"
        );
    }

    #[test]
    fn wake_all_releases_parked_waiters() {
        let b = Arc::new(Broker::new());
        let seen = b.data_seq();
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait_for_data(seen, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        b.wake_all();
        let t0 = Instant::now();
        waiter.join().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn close_rejects_appends_wakes_waiters_and_keeps_reads() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        b.produce("t", None, payload(1)).unwrap();
        let seen = b.data_seq();
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait_for_data(seen, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        waiter.join().unwrap(); // close must unpark, not time out
        assert!(b.is_closed());
        assert_eq!(
            b.produce("t", None, payload(2)),
            Err(BrokerError::BrokerClosed)
        );
        assert_eq!(
            b.produce_batch("t", (0..3).map(|_| (None, payload(2)))),
            Err(BrokerError::BrokerClosed)
        );
        assert_eq!(b.create_topic("t2", 1, 10), Err(BrokerError::BrokerClosed));
        // Reads still drain what is in memory.
        assert_eq!(b.poll("g", "c", 100).unwrap().len(), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 4, 1_000_000).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    if i % 2 == 0 {
                        for _ in 0..500 {
                            b.produce("t", None, payload(1)).unwrap();
                        }
                    } else {
                        // Batched producers interleave with per-message ones.
                        for _ in 0..(500 / 50) {
                            b.produce_batch("t", (0..50).map(|_| (None, payload(1))))
                                .unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..4).map(|p| b.high_watermark("t", p).unwrap()).sum();
        assert_eq!(total, 4000);
    }

    #[test]
    fn concurrent_group_consumers_partition_the_stream() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 4, 1_000_000).unwrap();
        for i in 0..1000u64 {
            b.produce("t", Some(i), payload(0)).unwrap();
        }
        b.join_group("g", "t", "c0").unwrap();
        b.join_group("g", "t", "c1").unwrap();
        let consume = |name: &'static str, b: Arc<Broker>| {
            std::thread::spawn(move || {
                let mut sub = b.subscribe("g", name).unwrap();
                let mut buf = Vec::new();
                let mut got = 0u64;
                loop {
                    let n = b.poll_into(&mut sub, 64, &mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    got += n as u64;
                }
                got
            })
        };
        let h0 = consume("c0", Arc::clone(&b));
        let h1 = consume("c1", Arc::clone(&b));
        let total = h0.join().unwrap() + h1.join().unwrap();
        assert_eq!(total, 1000, "exactly-once across group members");
    }

    // ----- durability, compaction, loss accounting, commit validation -----

    #[test]
    fn retention_trim_past_commit_is_counted_not_silent() {
        let b = Broker::new();
        b.create_topic("t", 1, 5).unwrap();
        b.join_group("g", "t", "c").unwrap();
        // Consume the first 2 of 4 records, then overrun retention so the
        // log trims far past the group's committed position.
        b.produce_batch("t", (0..4u8).map(|i| (None, payload(i))))
            .unwrap();
        let first = b.poll("g", "c", 2).unwrap();
        assert_eq!(first.len(), 2);
        b.produce_batch("t", (0..20u8).map(|i| (None, payload(i))))
            .unwrap();
        // Offsets 2..19 were trimmed (start offset 19); committed was 2.
        let start = b.start_offset("t", 0).unwrap();
        assert_eq!(start, 19);
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(rest.len(), 5, "resumes at the oldest retained record");
        assert_eq!(rest[0].offset, start);
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.records_lost, start - 2, "trimmed gap surfaced");
        assert_eq!(stats.committed, 24, "offset bumped past the gap");
        // A second poll accounts nothing new.
        assert!(b.poll("g", "c", 100).unwrap().is_empty());
        assert_eq!(b.group_stats("g").unwrap().records_lost, start - 2);
    }

    #[test]
    fn poll_into_counts_trim_loss_like_poll() {
        let b = Broker::new();
        b.create_topic("t", 1, 2).unwrap();
        b.join_group("g", "t", "c").unwrap();
        // Consume everything appended so far (no loss yet)...
        b.produce_batch("t", (0..2u8).map(|i| (None, payload(i))))
            .unwrap();
        assert_eq!(b.poll("g", "c", 100).unwrap().len(), 2);
        assert_eq!(b.group_stats("g").unwrap().records_lost, 0);
        // ...then trim past the committed position and consume survivors
        // through the subscription path: loss = commit-to-start gap.
        let mut sub = b.subscribe("g", "c").unwrap();
        let mut buf = Vec::new();
        b.produce_batch("t", (0..6u8).map(|i| (None, payload(i))))
            .unwrap();
        assert_eq!(b.poll_into(&mut sub, 100, &mut buf).unwrap(), 2);
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.records_lost, 4, "offsets 2..6 trimmed unconsumed");
        assert_eq!(stats.committed, 8);
    }

    #[test]
    fn compacted_topic_keeps_latest_per_key() {
        let b = Broker::new();
        b.create_topic_with("kv", 1, Retention::Compact { trigger: 4 })
            .unwrap();
        // 3 keys, many updates: only each key's latest survives compaction.
        for round in 0..10u64 {
            for k in 0..3u64 {
                b.produce("kv", Some(k), Arc::new(vec![round as u8; 4]))
                    .unwrap();
            }
        }
        let msgs = b.fetch("kv", 0, 0, 1000).unwrap();
        let mut latest: HashMap<u64, (u64, u8)> = HashMap::new();
        for m in &msgs {
            let k = m.key.unwrap();
            let e = latest.entry(k).or_insert((m.offset, m.payload[0]));
            if m.offset > e.0 {
                *e = (m.offset, m.payload[0]);
            }
        }
        assert_eq!(latest.len(), 3, "every key survives");
        for (_, (_, v)) in latest {
            assert_eq!(v, 9, "the retained record is each key's latest");
        }
        assert!(
            msgs.len() < 30,
            "compaction removed superseded records, kept {}",
            msgs.len()
        );
        // Offsets stay sparse-but-ordered and the watermark is untouched.
        assert!(msgs.windows(2).all(|w| w[0].offset < w[1].offset));
        assert_eq!(b.high_watermark("kv", 0).unwrap(), 30);
        assert_eq!(b.start_offset("kv", 0).unwrap(), 0, "compaction ≠ trim");
    }

    #[test]
    fn compacted_topic_rejects_unkeyed_records() {
        let b = Broker::new();
        b.create_topic_with("kv", 2, Retention::Compact { trigger: 8 })
            .unwrap();
        assert_eq!(
            b.produce("kv", None, payload(0)),
            Err(BrokerError::KeyRequired("kv".into()))
        );
        let before: u64 = (0..2).map(|p| b.high_watermark("kv", p).unwrap()).sum();
        assert_eq!(
            b.produce_batch("kv", [(Some(1), payload(0)), (None, payload(1))]),
            Err(BrokerError::KeyRequired("kv".into()))
        );
        let after: u64 = (0..2).map(|p| b.high_watermark("kv", p).unwrap()).sum();
        assert_eq!(before, after, "rejected batch appends nothing");
    }

    #[test]
    fn compacted_poll_skips_superseded_without_counting_loss() {
        let b = Broker::new();
        b.create_topic_with("kv", 1, Retention::Compact { trigger: 2 })
            .unwrap();
        b.join_group("g", "kv", "c").unwrap();
        for i in 0..20u64 {
            b.produce("kv", Some(i % 2), payload(i as u8)).unwrap();
        }
        let got = b.poll("g", "c", 100).unwrap();
        assert!(!got.is_empty());
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.records_lost, 0, "superseded records are not loss");
    }

    #[test]
    fn compacted_lag_counts_retained_not_superseded() {
        let b = Broker::new();
        b.create_topic_with("kv", 1, Retention::Compact { trigger: 2 })
            .unwrap();
        b.join_group("g", "kv", "c").unwrap();
        // 2 live keys churned 50 rounds: the watermark is 100, but only a
        // handful of retained records exist. Honest lag counts those, not
        // the 90+ compacted-away updates the group will never fetch.
        for i in 0..100u64 {
            b.produce("kv", Some(i % 2), payload(i as u8)).unwrap();
        }
        let stats = b.group_stats("g").unwrap();
        let retained = b.retained_after("kv", 0, 0).unwrap();
        assert_eq!(stats.total_lag(), retained);
        assert!(
            stats.total_lag() < 100,
            "lag {} must not count compacted-away records",
            stats.total_lag()
        );
        // Drain; lag reaches 0 even though committed < high watermark.
        while !b.poll("g", "c", 64).unwrap().is_empty() {}
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.total_lag(), 0);
        assert!(stats.committed <= b.high_watermark("kv", 0).unwrap());
        // Count-trimmed topics clamp the same way: commit far behind the
        // trim point and lag still only counts retained records.
        let b2 = Broker::new();
        b2.create_topic("t", 1, 10).unwrap();
        b2.join_group("g", "t", "c").unwrap();
        for i in 0..50u8 {
            b2.produce("t", None, payload(i)).unwrap();
        }
        let stats = b2.group_stats("g").unwrap();
        assert_eq!(stats.total_lag(), 10, "clamped at earliest retained");
    }

    #[test]
    fn earliest_offsets_track_retained_not_start() {
        let b = Broker::new();
        b.create_topic_with("kv", 2, Retention::Compact { trigger: 2 })
            .unwrap();
        assert_eq!(b.earliest_offsets("kv").unwrap(), vec![0, 0], "empty");
        for i in 0..40u64 {
            b.produce("kv", Some(i % 2), payload(i as u8)).unwrap();
        }
        let earliest = b.earliest_offsets("kv").unwrap();
        let hw = b.high_watermarks("kv").unwrap();
        let start: Vec<u64> = (0..2).map(|p| b.start_offset("kv", p).unwrap()).collect();
        for p in 0..2 {
            if hw[p] == 0 {
                continue; // both keys may hash to one partition
            }
            assert_eq!(start[p], 0, "compaction never advances start_offset");
            assert!(
                earliest[p] > start[p],
                "p{p}: earliest retained {} should sit above start {}",
                earliest[p],
                start[p]
            );
            assert!(earliest[p] < hw[p]);
        }
        assert_eq!(
            b.earliest_offsets("nope"),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
    }

    #[test]
    fn produce_batch_routed_routes_and_validates() {
        let b = Broker::new();
        b.create_topic_with("kv", 4, Retention::Compact { trigger: 64 })
            .unwrap();
        // Routing is explicit: identity keys do NOT decide placement.
        let n = b
            .produce_batch_routed(
                "kv",
                (0..12u64).map(|i| (1usize, Some(i), payload(i as u8))),
            )
            .unwrap();
        assert_eq!(n, 12);
        let hw = b.high_watermarks("kv").unwrap();
        assert_eq!(hw, vec![0, 12, 0, 0], "all records on the routed partition");
        // Whole-batch validation: nothing lands if any record is bad.
        assert_eq!(
            b.produce_batch_routed("kv", [(9usize, Some(1), payload(0))]),
            Err(BrokerError::UnknownPartition {
                topic: "kv".into(),
                partition: 9,
            })
        );
        assert_eq!(
            b.produce_batch_routed("kv", [(0usize, Some(1), payload(0)), (1, None, payload(1))]),
            Err(BrokerError::KeyRequired("kv".into()))
        );
        assert_eq!(b.high_watermarks("kv").unwrap(), vec![0, 12, 0, 0]);
        // Compaction keys on the record key even though routing ignored it:
        // churning key 3 supersedes only key 3's earlier records, and every
        // other key's latest record survives.
        for _ in 0..200 {
            b.produce_batch_routed("kv", [(1usize, Some(3), payload(7))])
                .unwrap();
        }
        let msgs = b.fetch("kv", 1, 0, 1000).unwrap();
        assert!(
            msgs.len() < 100,
            "retained {} of 212 appends — compaction must shed superseded",
            msgs.len()
        );
        for k in 0..12u64 {
            assert!(
                msgs.iter().any(|m| m.key == Some(k)),
                "latest record of key {k} must survive compaction"
            );
        }
        assert_eq!(b.produce_batch_routed("kv", []).unwrap(), 0);
    }

    #[test]
    fn commit_validates_partition_and_offset() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        b.produce_batch("t", (0..6u8).map(|i| (None, payload(i))))
            .unwrap();
        // Valid commit inside the log.
        b.commit("g", 0, 2).unwrap();
        assert_eq!(b.group_stats("g").unwrap().offsets[0], 2);
        // Commit at exactly the high watermark is allowed (fully consumed).
        let hw = b.high_watermark("t", 1).unwrap();
        b.commit("g", 1, hw).unwrap();
        // Beyond the watermark: rejected, not stored.
        assert_eq!(
            b.commit("g", 0, 99),
            Err(BrokerError::OffsetBeyondEnd {
                topic: "t".into(),
                partition: 0,
                offset: 99,
                next_offset: 3,
            })
        );
        assert_eq!(b.group_stats("g").unwrap().offsets[0], 2);
        // Partition outside the group's topic: rejected.
        assert_eq!(
            b.commit("g", 2, 0),
            Err(BrokerError::UnknownPartition {
                topic: "t".into(),
                partition: 2,
            })
        );
        // Unknown group: rejected.
        assert_eq!(
            b.commit("nope", 0, 0),
            Err(BrokerError::UnknownGroup("nope".into()))
        );
        // Commits are monotone: a lower offset is a no-op, not a rewind.
        b.commit("g", 0, 1).unwrap();
        assert_eq!(b.group_stats("g").unwrap().offsets[0], 2);
    }

    #[test]
    fn durable_broker_recovers_topics_records_and_offsets() {
        let tmp = TempDir::new("broker-recover").unwrap();
        let cfg = WalConfig::new(tmp.path()).with_fsync(FsyncPolicy::Never);
        {
            let b = Broker::open(cfg.clone()).unwrap();
            b.create_topic("t", 2, 1000).unwrap();
            b.join_group("g", "t", "c").unwrap();
            b.produce_batch("t", (0..10u64).map(|i| (Some(i), payload(i as u8))))
                .unwrap();
            let consumed = b.poll("g", "c", 4).unwrap();
            assert_eq!(consumed.len(), 4);
            // Drop without any shutdown ceremony: the WAL is the truth.
        }
        let b = Broker::open(cfg).unwrap();
        assert!(b.is_durable());
        assert_eq!(b.topic_names(), vec!["t".to_string()]);
        assert_eq!(b.partitions("t").unwrap(), 2);
        let total: u64 = (0..2).map(|p| b.high_watermark("t", p).unwrap()).sum();
        assert_eq!(total, 10, "all records replayed");
        assert!(b.recovery_info().records >= 10);
        // The group resumes where it was committed: exactly the 6 unread
        // records come back, none of the 4 already-consumed ones.
        b.join_group("g", "t", "c").unwrap();
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(rest.len(), 6, "resume from committed offsets");
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.committed, 10);
        assert_eq!(stats.records_lost, 0);
    }

    #[test]
    fn durable_broker_replays_compaction_deterministically() {
        let tmp = TempDir::new("broker-compact").unwrap();
        let cfg = WalConfig::new(tmp.path()).with_fsync(FsyncPolicy::Never);
        let before: Vec<(u64, u64)>;
        {
            let b = Broker::open(cfg.clone()).unwrap();
            b.create_topic_with("kv", 1, Retention::Compact { trigger: 4 })
                .unwrap();
            for i in 0..40u64 {
                b.produce("kv", Some(i % 5), payload(i as u8)).unwrap();
            }
            before = b
                .fetch("kv", 0, 0, 1000)
                .unwrap()
                .iter()
                .map(|m| (m.offset, m.key.unwrap_or(0)))
                .collect();
        }
        let b = Broker::open(cfg).unwrap();
        assert_eq!(
            b.retention("kv").unwrap(),
            Retention::Compact { trigger: 4 }
        );
        let after: Vec<(u64, u64)> = b
            .fetch("kv", 0, 0, 1000)
            .unwrap()
            .iter()
            .map(|m| (m.offset, m.key.unwrap_or(0)))
            .collect();
        assert_eq!(before, after, "replay reproduces compaction exactly");
        assert_eq!(b.high_watermark("kv", 0).unwrap(), 40);
    }

    #[test]
    fn recovered_offsets_are_clamped_to_truncated_logs() {
        let tmp = TempDir::new("broker-clamp").unwrap();
        let cfg = WalConfig::new(tmp.path()).with_fsync(FsyncPolicy::Never);
        {
            let b = Broker::open(cfg.clone()).unwrap();
            b.create_topic("t", 1, 1000).unwrap();
            b.join_group("g", "t", "c").unwrap();
            b.produce_batch("t", (0..8u8).map(|i| (None, payload(i))))
                .unwrap();
            assert_eq!(b.poll("g", "c", 100).unwrap().len(), 8);
        }
        // Tear the last frame of the partition WAL mid-record. The offsets
        // log still says "committed 8" — recovery must reconcile the two.
        let pdir = partition_dir(tmp.path(), "t", 0);
        let seg = std::fs::read_dir(&pdir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some())
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let b = Broker::open(cfg).unwrap();
        let hw = b.high_watermark("t", 0).unwrap();
        assert!(hw < 8, "tail truncated, hw {hw}");
        let stats = b.group_stats("g").unwrap();
        assert_eq!(
            stats.offsets[0], hw,
            "committed offset clamped to the recovered watermark"
        );
        assert!(b.recovery_info().truncated_bytes > 0);
    }

    #[test]
    fn durable_topic_names_must_be_filesystem_safe() {
        let tmp = TempDir::new("broker-names").unwrap();
        let b = Broker::open(WalConfig::new(tmp.path())).unwrap();
        assert!(b.create_topic("ok-topic_1.x", 1, 10).is_ok());
        for bad in ["", "a/b", "..", "a b"] {
            assert!(
                matches!(b.create_topic(bad, 1, 10), Err(BrokerError::Wal(_))),
                "name {bad:?} must be rejected"
            );
        }
        // In-memory brokers keep accepting arbitrary names.
        let mem = Broker::new();
        assert!(mem.create_topic("a/b", 1, 10).is_ok());
    }

    #[test]
    fn high_watermarks_cover_every_partition() {
        let b = Broker::new();
        b.create_topic("t", 3, 1000).unwrap();
        assert_eq!(b.high_watermarks("t").unwrap(), vec![0, 0, 0]);
        // Unkeyed records round-robin starting at partition 0: four appends
        // leave an uneven [2, 1, 1] spread.
        for i in 0..4 {
            b.produce("t", None, payload(i)).unwrap();
        }
        assert_eq!(b.high_watermarks("t").unwrap(), vec![2, 1, 1]);
        for (p, hw) in b.high_watermarks("t").unwrap().into_iter().enumerate() {
            assert_eq!(hw, b.high_watermark("t", p).unwrap());
        }
        assert!(b.high_watermarks("missing").is_err());
    }

    #[test]
    fn group_stats_reports_per_partition_lag() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c0").unwrap();
        for i in 0..8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.lag, vec![4, 4], "nothing consumed yet");
        assert_eq!(stats.total_lag(), 8);
        // Consume everything; lag collapses to zero.
        let mut sub = b.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        while b.poll_into(&mut sub, 64, &mut buf).unwrap() > 0 {}
        let stats = b.group_stats("g").unwrap();
        assert_eq!(stats.lag, vec![0, 0]);
        // New production reopens the gap on exactly one partition.
        b.produce("t", None, payload(9)).unwrap();
        assert_eq!(b.group_stats("g").unwrap().total_lag(), 1);
    }
}
