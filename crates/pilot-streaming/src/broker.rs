//! In-process log broker: topics of partitioned, offset-addressed logs with
//! consumer groups.
//!
//! Concurrency design: one `parking_lot::Mutex` per partition log (producers
//! to different partitions never contend), an `RwLock` on topic/group
//! metadata (read-mostly), per-(group, partition) offset cells. This is the
//! shape that lets the produce/consume criterion benchmarks scale with
//! partition count — the same knob the paper's streaming evaluation sweeps.

use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// One record in a partition log.
#[derive(Clone, Debug)]
pub struct Message {
    /// Offset within its partition (dense, from 0).
    pub offset: u64,
    /// Seconds since broker start when the record was appended.
    pub enqueued_s: f64,
    /// Optional partitioning key.
    pub key: Option<u64>,
    /// Payload bytes (shared, zero-copy to consumers).
    pub payload: Arc<Vec<u8>>,
}

/// Broker errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// Topic does not exist.
    UnknownTopic(String),
    /// Topic already exists.
    TopicExists(String),
    /// Consumer is not a member of the group.
    UnknownConsumer,
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic '{t}'"),
            BrokerError::TopicExists(t) => write!(f, "topic '{t}' exists"),
            BrokerError::UnknownConsumer => write!(f, "unknown consumer in group"),
        }
    }
}

impl std::error::Error for BrokerError {}

struct PartitionLog {
    /// Retained records; `VecDeque` keeps retention trimming O(1) per
    /// message (front pops) instead of O(n) front drains.
    records: VecDeque<Message>,
    /// Offset of records\[0\] (grows as retention trims).
    base: u64,
}

impl PartitionLog {
    fn next_offset(&self) -> u64 {
        self.base + self.records.len() as u64
    }
}

struct Topic {
    partitions: Vec<Mutex<PartitionLog>>,
    round_robin: Mutex<usize>,
    /// Retain at most this many records per partition.
    retention: usize,
}

struct Group {
    /// Members in join order.
    members: Vec<String>,
    /// Committed next-read offset per partition.
    offsets: Vec<u64>,
    topic: String,
}

/// The broker. Shareable across threads (`Arc<Broker>`).
pub struct Broker {
    epoch: Instant,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    groups: RwLock<HashMap<String, Mutex<Group>>>,
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

impl Broker {
    /// A broker with no topics.
    pub fn new() -> Self {
        Broker {
            epoch: Instant::now(),
            topics: RwLock::new(HashMap::new()),
            groups: RwLock::new(HashMap::new()),
        }
    }

    /// Seconds since broker start (the latency clock).
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Create a topic with `partitions` partitions and a per-partition
    /// retention bound (oldest records trimmed beyond it).
    pub fn create_topic(
        &self,
        name: &str,
        partitions: usize,
        retention: usize,
    ) -> Result<(), BrokerError> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists(name.to_string()));
        }
        let topic = Topic {
            partitions: (0..partitions.max(1))
                .map(|_| {
                    Mutex::new(PartitionLog {
                        records: VecDeque::new(),
                        base: 0,
                    })
                })
                .collect(),
            round_robin: Mutex::new(0),
            retention: retention.max(1),
        };
        topics.insert(name.to_string(), Arc::new(topic));
        Ok(())
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<usize, BrokerError> {
        Ok(self.topic(topic)?.partitions.len())
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>, BrokerError> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    /// Append a record. Keyed records hash to a fixed partition (per-key
    /// order); unkeyed ones round-robin. Returns (partition, offset).
    pub fn produce(
        &self,
        topic: &str,
        key: Option<u64>,
        payload: Arc<Vec<u8>>,
    ) -> Result<(usize, u64), BrokerError> {
        let t = self.topic(topic)?;
        let n = t.partitions.len();
        let p = match key {
            Some(k) => (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % n,
            None => {
                let mut rr = t.round_robin.lock();
                *rr = (*rr + 1) % n;
                *rr
            }
        };
        let mut log = t.partitions[p].lock();
        let offset = log.next_offset();
        log.records.push_back(Message {
            offset,
            enqueued_s: self.now_s(),
            key,
            payload,
        });
        while log.records.len() > t.retention {
            log.records.pop_front();
            log.base += 1;
        }
        Ok((p, offset))
    }

    /// Read up to `max` records from one partition starting at `from`,
    /// without any group bookkeeping.
    pub fn fetch(
        &self,
        topic: &str,
        partition: usize,
        from: u64,
        max: usize,
    ) -> Result<Vec<Message>, BrokerError> {
        let t = self.topic(topic)?;
        let log = t.partitions[partition].lock();
        let start = from.max(log.base);
        // `range` positions in O(1) on the deque's two slices; `skip` would
        // walk every earlier record on each fetch.
        let idx = ((start - log.base) as usize).min(log.records.len());
        Ok(log.records.range(idx..).take(max).cloned().collect())
    }

    /// Next offset to be written in a partition (= count of appended records
    /// when nothing was trimmed).
    pub fn high_watermark(&self, topic: &str, partition: usize) -> Result<u64, BrokerError> {
        let t = self.topic(topic)?;
        let hw = t.partitions[partition].lock().next_offset();
        Ok(hw)
    }

    /// Join a consumer group on `topic`; partition assignments rebalance to
    /// an even split in member join order.
    pub fn join_group(&self, group: &str, topic: &str, consumer: &str) -> Result<(), BrokerError> {
        let n = self.partitions(topic)?;
        let mut groups = self.groups.write();
        let g = groups.entry(group.to_string()).or_insert_with(|| {
            Mutex::new(Group {
                members: Vec::new(),
                offsets: vec![0; n],
                topic: topic.to_string(),
            })
        });
        let mut g = g.lock();
        if !g.members.iter().any(|m| m == consumer) {
            g.members.push(consumer.to_string());
        }
        Ok(())
    }

    /// Partitions currently assigned to `consumer` (even split, join order).
    pub fn assignment(&self, group: &str, consumer: &str) -> Result<Vec<usize>, BrokerError> {
        let groups = self.groups.read();
        let g = groups
            .get(group)
            .ok_or(BrokerError::UnknownConsumer)?
            .lock();
        let me = g
            .members
            .iter()
            .position(|m| m == consumer)
            .ok_or(BrokerError::UnknownConsumer)?;
        let n = g.offsets.len();
        Ok((0..n).filter(|p| p % g.members.len() == me).collect())
    }

    /// Poll up to `max` records across the consumer's assigned partitions;
    /// advances (commits) the group offsets past what is returned.
    pub fn poll(
        &self,
        group: &str,
        consumer: &str,
        max: usize,
    ) -> Result<Vec<Message>, BrokerError> {
        let assigned = self.assignment(group, consumer)?;
        let (topic_name, starts): (String, Vec<(usize, u64)>) = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            (
                g.topic.clone(),
                assigned.iter().map(|&p| (p, g.offsets[p])).collect(),
            )
        };
        let mut out = Vec::new();
        let mut new_offsets: Vec<(usize, u64)> = Vec::new();
        for (p, from) in starts {
            if out.len() >= max {
                break;
            }
            let batch = self.fetch(&topic_name, p, from, max - out.len())?;
            if let Some(last) = batch.last() {
                new_offsets.push((p, last.offset + 1));
            }
            out.extend(batch);
        }
        if !new_offsets.is_empty() {
            let groups = self.groups.read();
            let mut g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            for (p, off) in new_offsets {
                g.offsets[p] = g.offsets[p].max(off);
            }
        }
        Ok(out)
    }

    /// Sum of committed offsets of a group (= records consumed, when nothing
    /// was trimmed before consumption).
    pub fn group_consumed(&self, group: &str) -> u64 {
        self.groups
            .read()
            .get(group)
            .map(|g| g.lock().offsets.iter().sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn create_and_duplicate_topic() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        assert_eq!(b.partitions("t").unwrap(), 4);
        assert_eq!(
            b.create_topic("t", 2, 10),
            Err(BrokerError::TopicExists("t".into()))
        );
        assert_eq!(
            b.partitions("nope"),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
    }

    #[test]
    fn offsets_are_dense_and_ordered_per_partition() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        for i in 0..10 {
            let (p, off) = b.produce("t", None, payload(i)).unwrap();
            assert_eq!(p, 0);
            assert_eq!(off, i as u64);
        }
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 10);
        assert!(msgs.windows(2).all(|w| w[0].offset + 1 == w[1].offset));
        assert!(msgs.windows(2).all(|w| w[0].enqueued_s <= w[1].enqueued_s));
    }

    #[test]
    fn keyed_records_stay_in_one_partition() {
        let b = Broker::new();
        b.create_topic("t", 8, 1000).unwrap();
        let parts: Vec<usize> = (0..20)
            .map(|_| b.produce("t", Some(42), payload(0)).unwrap().0)
            .collect();
        assert!(parts.iter().all(|&p| p == parts[0]));
        // Different keys spread.
        let spread: std::collections::HashSet<usize> = (0..100)
            .map(|k| b.produce("t", Some(k), payload(0)).unwrap().0)
            .collect();
        assert!(spread.len() > 3, "keys should hash across partitions");
    }

    #[test]
    fn unkeyed_round_robin_spreads() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        let mut counts = [0u32; 4];
        for _ in 0..40 {
            let (p, _) = b.produce("t", None, payload(0)).unwrap();
            counts[p] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn retention_trims_oldest() {
        let b = Broker::new();
        b.create_topic("t", 1, 5).unwrap();
        for i in 0..12u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].offset, 7, "oldest retained offset");
        assert_eq!(b.high_watermark("t", 0).unwrap(), 12);
    }

    #[test]
    fn consumer_group_assignment_is_balanced() {
        let b = Broker::new();
        b.create_topic("t", 6, 1000).unwrap();
        b.join_group("g", "t", "c0").unwrap();
        b.join_group("g", "t", "c1").unwrap();
        b.join_group("g", "t", "c2").unwrap();
        let a0 = b.assignment("g", "c0").unwrap();
        let a1 = b.assignment("g", "c1").unwrap();
        let a2 = b.assignment("g", "c2").unwrap();
        assert_eq!(a0, vec![0, 3]);
        assert_eq!(a1, vec![1, 4]);
        assert_eq!(a2, vec![2, 5]);
        assert_eq!(
            b.assignment("g", "ghost"),
            Err(BrokerError::UnknownConsumer)
        );
    }

    #[test]
    fn poll_advances_offsets_without_redelivery() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let first = b.poll("g", "c", 100).unwrap();
        assert_eq!(first.len(), 10);
        let again = b.poll("g", "c", 100).unwrap();
        assert!(again.is_empty(), "no redelivery after commit");
        assert_eq!(b.group_consumed("g"), 10);
    }

    #[test]
    fn poll_respects_max() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let batch = b.poll("g", "c", 3).unwrap();
        assert_eq!(batch.len(), 3);
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(rest.len(), 7);
    }

    #[test]
    fn two_groups_consume_independently() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g1", "t", "c").unwrap();
        b.join_group("g2", "t", "c").unwrap();
        for i in 0..5u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        assert_eq!(b.poll("g1", "c", 100).unwrap().len(), 5);
        assert_eq!(b.poll("g2", "c", 100).unwrap().len(), 5);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 4, 1_000_000).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        b.produce("t", None, payload(1)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..4).map(|p| b.high_watermark("t", p).unwrap()).sum();
        assert_eq!(total, 4000);
    }

    #[test]
    fn concurrent_group_consumers_partition_the_stream() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 4, 1_000_000).unwrap();
        for i in 0..1000u64 {
            b.produce("t", Some(i), payload(0)).unwrap();
        }
        b.join_group("g", "t", "c0").unwrap();
        b.join_group("g", "t", "c1").unwrap();
        let consume = |name: &'static str, b: Arc<Broker>| {
            std::thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    let batch = b.poll("g", name, 64).unwrap();
                    if batch.is_empty() {
                        break;
                    }
                    got += batch.len() as u64;
                }
                got
            })
        };
        let h0 = consume("c0", Arc::clone(&b));
        let h1 = consume("c1", Arc::clone(&b));
        let total = h0.join().unwrap() + h1.join().unwrap();
        assert_eq!(total, 1000, "exactly-once across group members");
    }
}
