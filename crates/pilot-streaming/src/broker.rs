//! In-process log broker: topics of partitioned, offset-addressed logs with
//! consumer groups.
//!
//! Concurrency design: one `parking_lot::Mutex` per partition log (producers
//! to different partitions never contend), an `RwLock` on topic/group
//! metadata (read-mostly), per-(group, partition) offset cells. This is the
//! shape that lets the produce/consume criterion benchmarks scale with
//! partition count — the same knob the paper's streaming evaluation sweeps.
//!
//! ## The batched data plane
//!
//! The hot paths come in two flavors each:
//!
//! * **Produce.** [`Broker::produce`] appends one record: one topic-map read,
//!   one round-robin (or key hash) decision, one partition-lock acquire, one
//!   timestamp read. [`Broker::produce_batch`] amortizes all of that over a
//!   batch — the timestamp is read once, the round-robin cursor is advanced
//!   under one lock, and each *touched partition* is locked exactly once no
//!   matter how many records land in it.
//! * **Consume.** [`Broker::poll`] is the stateless path: it re-derives the
//!   consumer's assignment and allocates a fresh `Vec` on every call.
//!   [`Broker::poll_into`] takes a [`Subscription`] handle that caches the
//!   assignment under the group's rebalance epoch (refreshed only when
//!   membership changes) and appends into a caller-owned buffer — zero
//!   allocations and exactly two group-lock acquires per poll at steady
//!   state.
//!
//! ## Wakeups
//!
//! Every append bumps a broker-wide sequence number and notifies a condvar.
//! Consumers park in [`Broker::wait_for_data`] with a bounded timeout instead
//! of busy-polling; producers that finish call [`Broker::wake_all`] so parked
//! consumers re-check their exit conditions immediately. The wakeup lock is a
//! *leaf* lock: it is only ever acquired with no other broker lock held, and
//! the condvar is notified after its guard is dropped (workspace rule R4).

use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An unappended record: optional partitioning key plus payload. The item
/// type of [`Broker::produce_batch`].
pub type Record = (Option<u64>, Arc<Vec<u8>>);

/// One record in a partition log.
#[derive(Clone, Debug)]
pub struct Message {
    /// Offset within its partition (dense, from 0).
    pub offset: u64,
    /// Seconds since broker start when the record was appended.
    pub enqueued_s: f64,
    /// Optional partitioning key.
    pub key: Option<u64>,
    /// Payload bytes (shared, zero-copy to consumers).
    pub payload: Arc<Vec<u8>>,
}

/// Broker errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// Topic does not exist.
    UnknownTopic(String),
    /// Topic already exists.
    TopicExists(String),
    /// Consumer is not a member of the group.
    UnknownConsumer,
    /// `join_group` named a topic different from the one the group already
    /// consumes (the group's offset vector is sized to its topic's partition
    /// count, so silently reusing the group would corrupt accounting).
    GroupTopicMismatch {
        /// The group that was joined.
        group: String,
        /// The topic the group already consumes.
        existing: String,
        /// The mismatching topic the join requested.
        requested: String,
    },
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic '{t}'"),
            BrokerError::TopicExists(t) => write!(f, "topic '{t}' exists"),
            BrokerError::UnknownConsumer => write!(f, "unknown consumer in group"),
            BrokerError::GroupTopicMismatch {
                group,
                existing,
                requested,
            } => write!(
                f,
                "group '{group}' consumes topic '{existing}', not '{requested}'"
            ),
        }
    }
}

impl std::error::Error for BrokerError {}

struct PartitionLog {
    /// Retained records; `VecDeque` keeps retention trimming O(1) per
    /// message (front pops) instead of O(n) front drains.
    records: VecDeque<Message>,
    /// Offset of records\[0\] (grows as retention trims).
    base: u64,
}

impl PartitionLog {
    fn next_offset(&self) -> u64 {
        self.base + self.records.len() as u64
    }
}

struct Topic {
    partitions: Vec<Mutex<PartitionLog>>,
    round_robin: Mutex<usize>,
    /// Retain at most this many records per partition.
    retention: usize,
}

struct Group {
    /// Members in join order.
    members: Vec<String>,
    /// Committed next-read offset per partition.
    offsets: Vec<u64>,
    topic: String,
    /// Bumped on every membership change; [`Subscription`]s cache their
    /// assignment against it and refresh only when it moves.
    epoch: u64,
}

impl Group {
    /// Partitions assigned to `consumer` (even split, join order).
    fn assigned_for(&self, consumer: &str) -> Result<Vec<usize>, BrokerError> {
        let me = self
            .members
            .iter()
            .position(|m| m == consumer)
            .ok_or(BrokerError::UnknownConsumer)?;
        let n = self.offsets.len();
        Ok((0..n).filter(|p| p % self.members.len() == me).collect())
    }
}

/// A consumer's cached view of its group: assignment (under the group's
/// rebalance epoch), the topic handle, and reusable scratch buffers. Create
/// with [`Broker::subscribe`], poll with [`Broker::poll_into`].
///
/// The handle makes the steady-state poll path allocation-free: assignment
/// is only re-derived when the group epoch moves (a member joined), and
/// offsets/commits go through scratch vectors whose capacity is retained
/// across polls.
pub struct Subscription {
    group: String,
    consumer: String,
    topic: Arc<Topic>,
    /// Group epoch the cached assignment was computed at (0 = never).
    epoch: u64,
    assigned: Vec<usize>,
    /// Scratch: next-read offset per assigned partition, refilled each poll.
    starts: Vec<u64>,
    /// Scratch: (partition, new offset) commits for the current poll.
    commits: Vec<(usize, u64)>,
}

impl Subscription {
    /// Group this subscription polls through.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Consumer name within the group.
    pub fn consumer(&self) -> &str {
        &self.consumer
    }

    /// Cached partition assignment (refreshed lazily on poll after a
    /// rebalance; empty before the first poll).
    pub fn assignment(&self) -> &[usize] {
        &self.assigned
    }
}

/// The broker. Shareable across threads (`Arc<Broker>`).
pub struct Broker {
    epoch: Instant,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    groups: RwLock<HashMap<String, Mutex<Group>>>,
    /// Append sequence number: bumped on every produce so consumers can park
    /// until data arrives instead of busy-polling. Leaf lock — never held
    /// while acquiring any other broker lock.
    wakeup_seq: Mutex<u64>,
    wakeup: Condvar,
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

impl Broker {
    /// A broker with no topics.
    pub fn new() -> Self {
        Broker {
            epoch: Instant::now(),
            topics: RwLock::new(HashMap::new()),
            groups: RwLock::new(HashMap::new()),
            wakeup_seq: Mutex::new(0),
            wakeup: Condvar::new(),
        }
    }

    /// Seconds since broker start (the latency clock).
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Create a topic with `partitions` partitions and a per-partition
    /// retention bound (oldest records trimmed beyond it).
    pub fn create_topic(
        &self,
        name: &str,
        partitions: usize,
        retention: usize,
    ) -> Result<(), BrokerError> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists(name.to_string()));
        }
        let topic = Topic {
            partitions: (0..partitions.max(1))
                .map(|_| {
                    Mutex::new(PartitionLog {
                        records: VecDeque::new(),
                        base: 0,
                    })
                })
                .collect(),
            round_robin: Mutex::new(0),
            retention: retention.max(1),
        };
        topics.insert(name.to_string(), Arc::new(topic));
        Ok(())
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<usize, BrokerError> {
        Ok(self.topic(topic)?.partitions.len())
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>, BrokerError> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    /// Bump the append sequence and wake parked consumers. The guard is
    /// dropped before `notify_all` (R4: no guard across a wake).
    fn note_append(&self) {
        let mut seq = self.wakeup_seq.lock();
        *seq = seq.wrapping_add(1);
        drop(seq);
        self.wakeup.notify_all();
    }

    /// Current append sequence number. Sample it *before* a poll; if the
    /// poll comes back empty, pass the sample to [`Broker::wait_for_data`] —
    /// an append between the sample and the wait then returns immediately
    /// instead of being missed.
    pub fn data_seq(&self) -> u64 {
        *self.wakeup_seq.lock()
    }

    /// Park until the append sequence moves past `seen` or `timeout`
    /// elapses; returns the current sequence. Spurious returns are possible
    /// (callers loop around a poll anyway); missed wakeups are not, provided
    /// `seen` was sampled before the empty poll that led here.
    pub fn wait_for_data(&self, seen: u64, timeout: Duration) -> u64 {
        let mut seq = self.wakeup_seq.lock();
        if *seq == seen {
            let _ = self.wakeup.wait_for(&mut seq, timeout);
        }
        *seq
    }

    /// Wake every parked consumer without appending data (e.g. after the
    /// last producer finishes, so consumers re-check their exit condition
    /// immediately instead of riding out their park timeout).
    pub fn wake_all(&self) {
        self.note_append();
    }

    /// Append a record. Keyed records hash to a fixed partition (per-key
    /// order); unkeyed ones round-robin starting at partition 0. Returns
    /// (partition, offset).
    pub fn produce(
        &self,
        topic: &str,
        key: Option<u64>,
        payload: Arc<Vec<u8>>,
    ) -> Result<(usize, u64), BrokerError> {
        let t = self.topic(topic)?;
        let n = t.partitions.len();
        let p = match key {
            Some(k) => Self::key_partition(k, n),
            None => {
                let mut rr = t.round_robin.lock();
                let p = *rr % n;
                *rr = (p + 1) % n;
                p
            }
        };
        let offset = {
            let mut log = t.partitions[p].lock();
            let offset = log.next_offset();
            log.records.push_back(Message {
                offset,
                enqueued_s: self.now_s(),
                key,
                payload,
            });
            while log.records.len() > t.retention {
                log.records.pop_front();
                log.base += 1;
            }
            offset
        };
        self.note_append();
        Ok((p, offset))
    }

    fn key_partition(key: u64, partitions: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % partitions
    }

    /// Append a batch of `(key, payload)` records in one shot: one timestamp
    /// read for the whole batch, one round-robin cursor advance under one
    /// lock, and one lock acquire per *touched partition* regardless of how
    /// many records land there. Record order is preserved within each
    /// partition, and the round-robin cursor is shared with
    /// [`Broker::produce`], so mixing the two APIs keeps the spread even.
    /// Returns the number of records appended.
    pub fn produce_batch(
        &self,
        topic: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<u64, BrokerError> {
        let t = self.topic(topic)?;
        let n = t.partitions.len();
        let now = self.now_s(); // one timestamp read per batch
        let mut buckets: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        {
            // The round-robin cursor is locked at most once per batch, and
            // only if the batch contains unkeyed records.
            let mut rr = None;
            for (key, payload) in records {
                let p = match key {
                    Some(k) => Self::key_partition(k, n),
                    None => {
                        let cursor = rr.get_or_insert_with(|| t.round_robin.lock());
                        let p = **cursor % n;
                        **cursor = (p + 1) % n;
                        p
                    }
                };
                buckets[p].push((key, payload));
                total += 1;
            }
        }
        if total == 0 {
            return Ok(0);
        }
        for (p, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut log = t.partitions[p].lock(); // one acquire per partition
            for (key, payload) in bucket {
                let offset = log.next_offset();
                log.records.push_back(Message {
                    offset,
                    enqueued_s: now,
                    key,
                    payload,
                });
            }
            while log.records.len() > t.retention {
                log.records.pop_front();
                log.base += 1;
            }
        }
        self.note_append();
        Ok(total)
    }

    /// Read up to `max` records from one partition starting at `from`,
    /// without any group bookkeeping.
    pub fn fetch(
        &self,
        topic: &str,
        partition: usize,
        from: u64,
        max: usize,
    ) -> Result<Vec<Message>, BrokerError> {
        let t = self.topic(topic)?;
        let mut out = Vec::new();
        Self::fetch_into(&t, partition, from, max, &mut out);
        Ok(out)
    }

    /// Append up to `max` records from one partition into `buf`; returns the
    /// count appended.
    fn fetch_into(
        t: &Topic,
        partition: usize,
        from: u64,
        max: usize,
        buf: &mut Vec<Message>,
    ) -> usize {
        let log = t.partitions[partition].lock();
        let start = from.max(log.base);
        // `range` positions in O(1) on the deque's two slices; `skip` would
        // walk every earlier record on each fetch.
        let idx = ((start - log.base) as usize).min(log.records.len());
        let before = buf.len();
        buf.extend(log.records.range(idx..).take(max).cloned());
        buf.len() - before
    }

    /// Next offset to be written in a partition (= count of appended records
    /// when nothing was trimmed).
    pub fn high_watermark(&self, topic: &str, partition: usize) -> Result<u64, BrokerError> {
        let t = self.topic(topic)?;
        let hw = t.partitions[partition].lock().next_offset();
        Ok(hw)
    }

    /// Join a consumer group on `topic`; partition assignments rebalance to
    /// an even split in member join order. Joining an existing group with a
    /// different topic is an error ([`BrokerError::GroupTopicMismatch`]) —
    /// the group's offset vector is sized to its topic's partition count.
    pub fn join_group(&self, group: &str, topic: &str, consumer: &str) -> Result<(), BrokerError> {
        let n = self.partitions(topic)?;
        let mut groups = self.groups.write();
        let g = groups.entry(group.to_string()).or_insert_with(|| {
            Mutex::new(Group {
                members: Vec::new(),
                offsets: vec![0; n],
                topic: topic.to_string(),
                epoch: 1,
            })
        });
        let mut g = g.lock();
        if g.topic != topic {
            return Err(BrokerError::GroupTopicMismatch {
                group: group.to_string(),
                existing: g.topic.clone(),
                requested: topic.to_string(),
            });
        }
        if !g.members.iter().any(|m| m == consumer) {
            g.members.push(consumer.to_string());
            g.epoch += 1;
        }
        Ok(())
    }

    /// Partitions currently assigned to `consumer` (even split, join order).
    pub fn assignment(&self, group: &str, consumer: &str) -> Result<Vec<usize>, BrokerError> {
        let groups = self.groups.read();
        let g = groups
            .get(group)
            .ok_or(BrokerError::UnknownConsumer)?
            .lock();
        g.assigned_for(consumer)
    }

    /// Build a [`Subscription`] for a consumer that already joined `group`.
    /// The handle caches the topic and (lazily, on first poll) the partition
    /// assignment, making [`Broker::poll_into`] allocation-free at steady
    /// state.
    pub fn subscribe(&self, group: &str, consumer: &str) -> Result<Subscription, BrokerError> {
        let topic_name = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            if !g.members.iter().any(|m| m == consumer) {
                return Err(BrokerError::UnknownConsumer);
            }
            g.topic.clone()
        };
        let topic = self.topic(&topic_name)?;
        Ok(Subscription {
            group: group.to_string(),
            consumer: consumer.to_string(),
            topic,
            epoch: 0, // group epochs start at 1 ⇒ first poll refreshes
            assigned: Vec::new(),
            starts: Vec::new(),
            commits: Vec::new(),
        })
    }

    /// Poll up to `max` records across the subscription's assigned
    /// partitions into `buf` (cleared first; capacity is reused), advancing
    /// the group offsets past what is returned. Returns the record count.
    ///
    /// Steady-state cost: two group-lock acquires (read offsets, commit) and
    /// one partition-lock acquire per assigned partition with data — the
    /// assignment is cached under the group's rebalance epoch and only
    /// re-derived after a membership change, and no `Vec` is allocated.
    pub fn poll_into(
        &self,
        sub: &mut Subscription,
        max: usize,
        buf: &mut Vec<Message>,
    ) -> Result<usize, BrokerError> {
        buf.clear();
        sub.starts.clear();
        sub.commits.clear();
        {
            let groups = self.groups.read();
            let g = groups
                .get(&sub.group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            if g.epoch != sub.epoch {
                let me = g
                    .members
                    .iter()
                    .position(|m| m == &sub.consumer)
                    .ok_or(BrokerError::UnknownConsumer)?;
                sub.assigned.clear();
                sub.assigned
                    .extend((0..g.offsets.len()).filter(|p| p % g.members.len() == me));
                sub.epoch = g.epoch;
            }
            sub.starts
                .extend(sub.assigned.iter().map(|&p| g.offsets[p]));
        }
        for (i, &p) in sub.assigned.iter().enumerate() {
            if buf.len() >= max {
                break;
            }
            let got = Self::fetch_into(&sub.topic, p, sub.starts[i], max - buf.len(), buf);
            if got > 0 {
                if let Some(last) = buf.last() {
                    sub.commits.push((p, last.offset + 1));
                }
            }
        }
        if !sub.commits.is_empty() {
            let groups = self.groups.read();
            let mut g = groups
                .get(&sub.group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            for &(p, off) in &sub.commits {
                g.offsets[p] = g.offsets[p].max(off);
            }
        }
        Ok(buf.len())
    }

    /// Poll up to `max` records across the consumer's assigned partitions;
    /// advances (commits) the group offsets past what is returned. Stateless
    /// convenience path — allocates per call and re-derives the assignment;
    /// hot loops should hold a [`Subscription`] and use
    /// [`Broker::poll_into`].
    pub fn poll(
        &self,
        group: &str,
        consumer: &str,
        max: usize,
    ) -> Result<Vec<Message>, BrokerError> {
        // One lock acquire for assignment + topic + starting offsets.
        let (topic_name, starts): (String, Vec<(usize, u64)>) = {
            let groups = self.groups.read();
            let g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            let assigned = g.assigned_for(consumer)?;
            (
                g.topic.clone(),
                assigned.iter().map(|&p| (p, g.offsets[p])).collect(),
            )
        };
        let t = self.topic(&topic_name)?;
        let mut out = Vec::new();
        let mut new_offsets: Vec<(usize, u64)> = Vec::new();
        for (p, from) in starts {
            if out.len() >= max {
                break;
            }
            let got = Self::fetch_into(&t, p, from, max - out.len(), &mut out);
            if got > 0 {
                if let Some(last) = out.last() {
                    new_offsets.push((p, last.offset + 1));
                }
            }
        }
        if !new_offsets.is_empty() {
            let groups = self.groups.read();
            let mut g = groups
                .get(group)
                .ok_or(BrokerError::UnknownConsumer)?
                .lock();
            for (p, off) in new_offsets {
                g.offsets[p] = g.offsets[p].max(off);
            }
        }
        Ok(out)
    }

    /// Sum of committed offsets of a group (= records consumed, when nothing
    /// was trimmed before consumption).
    pub fn group_consumed(&self, group: &str) -> u64 {
        self.groups
            .read()
            .get(group)
            .map(|g| g.lock().offsets.iter().sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn create_and_duplicate_topic() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        assert_eq!(b.partitions("t").unwrap(), 4);
        assert_eq!(
            b.create_topic("t", 2, 10),
            Err(BrokerError::TopicExists("t".into()))
        );
        assert_eq!(
            b.partitions("nope"),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
    }

    #[test]
    fn offsets_are_dense_and_ordered_per_partition() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        for i in 0..10 {
            let (p, off) = b.produce("t", None, payload(i)).unwrap();
            assert_eq!(p, 0);
            assert_eq!(off, i as u64);
        }
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 10);
        assert!(msgs.windows(2).all(|w| w[0].offset + 1 == w[1].offset));
        assert!(msgs.windows(2).all(|w| w[0].enqueued_s <= w[1].enqueued_s));
    }

    #[test]
    fn keyed_records_stay_in_one_partition() {
        let b = Broker::new();
        b.create_topic("t", 8, 1000).unwrap();
        let parts: Vec<usize> = (0..20)
            .map(|_| b.produce("t", Some(42), payload(0)).unwrap().0)
            .collect();
        assert!(parts.iter().all(|&p| p == parts[0]));
        // Different keys spread.
        let spread: std::collections::HashSet<usize> = (0..100)
            .map(|k| b.produce("t", Some(k), payload(0)).unwrap().0)
            .collect();
        assert!(spread.len() > 3, "keys should hash across partitions");
    }

    #[test]
    fn unkeyed_round_robin_starts_at_zero_and_spreads() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        let (first, _) = b.produce("t", None, payload(0)).unwrap();
        assert_eq!(first, 0, "first unkeyed record lands on partition 0");
        let mut counts = [1u32, 0, 0, 0];
        for _ in 0..39 {
            let (p, _) = b.produce("t", None, payload(0)).unwrap();
            counts[p] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn round_robin_cursor_is_shared_between_produce_and_batch() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        // 3 singles land on 0, 1, 2; a batch of 5 continues 3, 0, 1, 2, 3.
        for _ in 0..3 {
            b.produce("t", None, payload(0)).unwrap();
        }
        let n = b
            .produce_batch("t", (0..5).map(|_| (None, payload(1))))
            .unwrap();
        assert_eq!(n, 5);
        let hw: Vec<u64> = (0..4).map(|p| b.high_watermark("t", p).unwrap()).collect();
        assert_eq!(hw, vec![2, 2, 2, 2]);
    }

    #[test]
    fn produce_batch_appends_in_order_with_one_timestamp() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        let n = b
            .produce_batch("t", (0..10u8).map(|i| (Some(7), payload(i))))
            .unwrap();
        assert_eq!(n, 10);
        // All keyed to the same partition, dense offsets, payload order kept.
        let part = Broker::key_partition(7, 2);
        let msgs = b.fetch("t", part, 0, 100).unwrap();
        assert_eq!(msgs.len(), 10);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.offset, i as u64);
            assert_eq!(m.payload[0], i as u8);
        }
        // One timestamp read for the whole batch.
        assert!(msgs.windows(2).all(|w| w[0].enqueued_s == w[1].enqueued_s));
        assert_eq!(b.produce_batch("t", std::iter::empty()).unwrap(), 0);
        assert_eq!(
            b.produce_batch("nope", std::iter::empty()),
            Err(BrokerError::UnknownTopic("nope".into()))
        );
    }

    #[test]
    fn produce_batch_respects_retention() {
        let b = Broker::new();
        b.create_topic("t", 1, 5).unwrap();
        b.produce_batch("t", (0..12u8).map(|i| (None, payload(i))))
            .unwrap();
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].offset, 7, "oldest retained offset");
        assert_eq!(b.high_watermark("t", 0).unwrap(), 12);
    }

    #[test]
    fn retention_trims_oldest() {
        let b = Broker::new();
        b.create_topic("t", 1, 5).unwrap();
        for i in 0..12u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let msgs = b.fetch("t", 0, 0, 100).unwrap();
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].offset, 7, "oldest retained offset");
        assert_eq!(b.high_watermark("t", 0).unwrap(), 12);
    }

    #[test]
    fn consumer_group_assignment_is_balanced() {
        let b = Broker::new();
        b.create_topic("t", 6, 1000).unwrap();
        b.join_group("g", "t", "c0").unwrap();
        b.join_group("g", "t", "c1").unwrap();
        b.join_group("g", "t", "c2").unwrap();
        let a0 = b.assignment("g", "c0").unwrap();
        let a1 = b.assignment("g", "c1").unwrap();
        let a2 = b.assignment("g", "c2").unwrap();
        assert_eq!(a0, vec![0, 3]);
        assert_eq!(a1, vec![1, 4]);
        assert_eq!(a2, vec![2, 5]);
        assert_eq!(
            b.assignment("g", "ghost"),
            Err(BrokerError::UnknownConsumer)
        );
    }

    #[test]
    fn join_group_rejects_topic_mismatch() {
        let b = Broker::new();
        b.create_topic("t1", 4, 1000).unwrap();
        b.create_topic("t2", 2, 1000).unwrap();
        b.join_group("g", "t1", "c0").unwrap();
        assert_eq!(
            b.join_group("g", "t2", "c1"),
            Err(BrokerError::GroupTopicMismatch {
                group: "g".into(),
                existing: "t1".into(),
                requested: "t2".into(),
            })
        );
        // The failed join must not have touched membership.
        assert_eq!(b.assignment("g", "c0").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(b.assignment("g", "c1"), Err(BrokerError::UnknownConsumer));
        // Re-joining with the right topic still works.
        b.join_group("g", "t1", "c1").unwrap();
        assert_eq!(b.assignment("g", "c1").unwrap(), vec![1, 3]);
    }

    #[test]
    fn poll_advances_offsets_without_redelivery() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let first = b.poll("g", "c", 100).unwrap();
        assert_eq!(first.len(), 10);
        let again = b.poll("g", "c", 100).unwrap();
        assert!(again.is_empty(), "no redelivery after commit");
        assert_eq!(b.group_consumed("g"), 10);
    }

    #[test]
    fn poll_respects_max() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let batch = b.poll("g", "c", 3).unwrap();
        assert_eq!(batch.len(), 3);
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(rest.len(), 7);
    }

    #[test]
    fn poll_into_reuses_buffer_and_commits() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        let mut sub = b.subscribe("g", "c").unwrap();
        let mut buf = Vec::new();
        assert_eq!(b.poll_into(&mut sub, 64, &mut buf).unwrap(), 0);
        assert_eq!(sub.assignment(), &[0, 1, 2, 3]);
        b.produce_batch("t", (0..10u8).map(|i| (None, payload(i))))
            .unwrap();
        assert_eq!(b.poll_into(&mut sub, 3, &mut buf).unwrap(), 3);
        assert_eq!(buf.len(), 3);
        let cap = buf.capacity();
        assert_eq!(b.poll_into(&mut sub, 64, &mut buf).unwrap(), 7);
        assert!(buf.capacity() >= cap, "buffer capacity is retained");
        assert_eq!(b.poll_into(&mut sub, 64, &mut buf).unwrap(), 0);
        assert_eq!(b.group_consumed("g"), 10, "poll_into commits offsets");
    }

    #[test]
    fn poll_and_poll_into_share_commits() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        let mut sub = b.subscribe("g", "c").unwrap();
        let mut buf = Vec::new();
        for i in 0..10u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        let first = b.poll_into(&mut sub, 6, &mut buf).unwrap();
        let rest = b.poll("g", "c", 100).unwrap();
        assert_eq!(
            first + rest.len(),
            10,
            "no loss, no redelivery across paths"
        );
    }

    #[test]
    fn subscription_refreshes_after_rebalance() {
        let b = Broker::new();
        b.create_topic("t", 4, 1000).unwrap();
        b.join_group("g", "t", "c0").unwrap();
        let mut sub = b.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        b.poll_into(&mut sub, 1, &mut buf).unwrap();
        assert_eq!(sub.assignment(), &[0, 1, 2, 3]);
        b.join_group("g", "t", "c1").unwrap();
        b.poll_into(&mut sub, 1, &mut buf).unwrap();
        assert_eq!(sub.assignment(), &[0, 2], "epoch bump shrinks assignment");
        // Disjoint with the new member; the whole stream is still covered.
        let mut sub1 = b.subscribe("g", "c1").unwrap();
        b.poll_into(&mut sub1, 1, &mut buf).unwrap();
        assert_eq!(sub1.assignment(), &[1, 3]);
    }

    #[test]
    fn subscribe_requires_membership() {
        let b = Broker::new();
        b.create_topic("t", 2, 1000).unwrap();
        b.join_group("g", "t", "c").unwrap();
        assert!(b.subscribe("g", "c").is_ok());
        assert!(matches!(
            b.subscribe("g", "ghost"),
            Err(BrokerError::UnknownConsumer)
        ));
        assert!(matches!(
            b.subscribe("nope", "c"),
            Err(BrokerError::UnknownConsumer)
        ));
    }

    #[test]
    fn two_groups_consume_independently() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        b.join_group("g1", "t", "c").unwrap();
        b.join_group("g2", "t", "c").unwrap();
        for i in 0..5u8 {
            b.produce("t", None, payload(i)).unwrap();
        }
        assert_eq!(b.poll("g1", "c", 100).unwrap().len(), 5);
        assert_eq!(b.poll("g2", "c", 100).unwrap().len(), 5);
    }

    #[test]
    fn wait_for_data_wakes_on_produce() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 1, 1000).unwrap();
        let seen = b.data_seq();
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait_for_data(seen, Duration::from_secs(10)))
        };
        // Give the waiter a moment to park, then append.
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        b.produce("t", None, payload(0)).unwrap();
        let got = waiter.join().unwrap();
        assert_ne!(got, seen, "append must advance the sequence");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "wakeup, not timeout, must end the wait"
        );
    }

    #[test]
    fn wait_for_data_returns_immediately_when_stale() {
        let b = Broker::new();
        b.create_topic("t", 1, 1000).unwrap();
        let seen = b.data_seq();
        b.produce("t", None, payload(0)).unwrap();
        let t0 = Instant::now();
        let got = b.wait_for_data(seen, Duration::from_secs(10));
        assert_ne!(got, seen);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "stale seen returns fast"
        );
    }

    #[test]
    fn wake_all_releases_parked_waiters() {
        let b = Arc::new(Broker::new());
        let seen = b.data_seq();
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait_for_data(seen, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        b.wake_all();
        let t0 = Instant::now();
        waiter.join().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 4, 1_000_000).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    if i % 2 == 0 {
                        for _ in 0..500 {
                            b.produce("t", None, payload(1)).unwrap();
                        }
                    } else {
                        // Batched producers interleave with per-message ones.
                        for _ in 0..(500 / 50) {
                            b.produce_batch("t", (0..50).map(|_| (None, payload(1))))
                                .unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..4).map(|p| b.high_watermark("t", p).unwrap()).sum();
        assert_eq!(total, 4000);
    }

    #[test]
    fn concurrent_group_consumers_partition_the_stream() {
        let b = Arc::new(Broker::new());
        b.create_topic("t", 4, 1_000_000).unwrap();
        for i in 0..1000u64 {
            b.produce("t", Some(i), payload(0)).unwrap();
        }
        b.join_group("g", "t", "c0").unwrap();
        b.join_group("g", "t", "c1").unwrap();
        let consume = |name: &'static str, b: Arc<Broker>| {
            std::thread::spawn(move || {
                let mut sub = b.subscribe("g", name).unwrap();
                let mut buf = Vec::new();
                let mut got = 0u64;
                loop {
                    let n = b.poll_into(&mut sub, 64, &mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    got += n as u64;
                }
                got
            })
        };
        let h0 = consume("c0", Arc::clone(&b));
        let h1 = consume("c1", Arc::clone(&b));
        let total = h0.join().unwrap() + h1.join().unwrap();
        assert_eq!(total, 1000, "exactly-once across group members");
    }
}
