//! Leader/follower partition replication across N simulated broker nodes
//! with epoch-fenced leadership.
//!
//! A [`ReplicatedBroker`] owns N [`Broker`] nodes (each with its own
//! write-ahead log) and applies every append to all *alive* nodes through
//! [`Broker::append_at`] — same partition, same timestamp, same payloads —
//! so replicas stay record-for-record identical, WAL bytes included. Each
//! partition has a *leader* (assigned round-robin over the nodes at topic
//! creation) and a leadership *epoch*:
//!
//! * [`ReplicatedBroker::lease`] hands out the current `(leader, epoch)` as
//!   a [`LeaderLease`];
//! * [`ReplicatedBroker::append_with_lease`] rejects any append whose lease
//!   epoch is stale ([`BrokerError::FencedEpoch`]) — after a failover, the
//!   deposed leader *cannot* sneak records past the new one;
//! * [`ReplicatedBroker::kill_node`] closes a node's broker (waking every
//!   consumer parked on it), promotes the lowest alive node to leader of
//!   every partition the victim led, and bumps those partitions' epochs;
//! * [`ReplicatedBroker::restart_node`] reopens the node from its WAL
//!   (prefix-consistent recovery), replays the missed suffix from a live
//!   replica, restores group membership and committed offsets, and rejoins
//!   as a follower.
//!
//! ## Why appends go to nodes in *descending* index order
//!
//! Consumers read from the lowest-index alive node; commit offsets are then
//! replicated to the other nodes. Appending highest-index-first means that
//! by the time a record is visible on the read node, every other alive node
//! already has it — so a replicated commit can never run ahead of a
//! follower's high watermark, and a failover promotes a node whose log
//! contains everything any consumer ever saw. That ordering is what makes
//! exactly-once delivery survive a node kill.
//!
//! Kills are deterministic and replayable: [`KillSchedule::from_plan`]
//! derives per-node kill times from the `FaultPlan`'s broker-node MTBF and
//! the run seed through the reserved `BROKER_KILL` RNG stream — the same
//! machinery (and the same replay guarantee) the compute plane's pilot
//! crashes use.
//!
//! Lock order: cluster state (`RwLock`) → per-(topic, partition) append lock
//! → broker-internal locks. `kill_node` / `restart_node` take the state
//! write lock, so they serialize against every in-flight append and poll —
//! a batch is never half-replicated when a node dies.

use crate::broker::{Broker, BrokerError, Message, Record, Retention, Subscription};
use crate::wal::{RecoveryInfo, WalConfig};
use parking_lot::{Mutex, RwLock};
use pilot_core::clock::WallClock;
use pilot_core::retry::{streams, FaultPlan};
use pilot_sim::SimRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A leadership claim over one partition at one epoch. Obtained from
/// [`ReplicatedBroker::lease`]; presented to
/// [`ReplicatedBroker::append_with_lease`], which fences it once a newer
/// epoch exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderLease {
    /// Topic of the led partition.
    pub topic: String,
    /// Partition index.
    pub partition: usize,
    /// Node currently holding leadership.
    pub node: usize,
    /// Leadership epoch; bumped on every failover.
    pub epoch: u64,
}

struct Lead {
    leader: usize,
    epoch: u64,
}

struct ClusterTopic {
    partitions: usize,
    retention: Retention,
    /// Current leader + epoch per partition.
    leads: Vec<Mutex<Lead>>,
    /// Serializes multi-node appends per partition so every replica sees
    /// the same record order.
    append_locks: Vec<Mutex<()>>,
    /// Cluster-level round-robin cursor for unkeyed records (partitioning
    /// happens once, at the cluster, so all replicas agree).
    round_robin: Mutex<usize>,
}

struct Node {
    broker: Arc<Broker>,
    alive: bool,
    cfg: WalConfig,
}

struct ClusterState {
    nodes: Vec<Node>,
    topics: HashMap<String, ClusterTopic>,
    /// Every `(group, topic, consumer)` joined through the cluster, replayed
    /// onto restarted nodes so membership survives recovery.
    joins: Vec<(String, String, String)>,
    /// Bumped on every kill/restart; [`ClusterSub`]s re-resolve their read
    /// node when it moves.
    epoch: u64,
}

/// Counters of cluster-level fault events (see [`ReplicatedBroker::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Nodes killed via [`ReplicatedBroker::kill_node`].
    pub node_kills: u64,
    /// Partition leaderships promoted to a follower after a kill.
    pub leader_failovers: u64,
    /// Appends rejected for carrying a stale leadership epoch.
    pub fenced_appends: u64,
    /// Nodes restarted and caught up from a live replica.
    pub node_restarts: u64,
}

/// A consumer's cluster-level subscription: wraps a node-local
/// [`Subscription`] and re-resolves it onto the current read node after a
/// failover. Create with [`ReplicatedBroker::subscribe`], poll with
/// [`ReplicatedBroker::poll_into`].
pub struct ClusterSub {
    group: String,
    consumer: String,
    node: usize,
    cluster_epoch: u64,
    sub: Subscription,
}

impl ClusterSub {
    /// Node the subscription currently reads from.
    pub fn node(&self) -> usize {
        self.node
    }
}

/// N broker nodes with full partition replication and epoch-fenced
/// leadership. See the module docs for the protocol.
pub struct ReplicatedBroker {
    state: RwLock<ClusterState>,
    clock: WallClock,
    stats: Mutex<ClusterStats>,
}

impl ReplicatedBroker {
    /// Open a cluster of one durable broker node per [`WalConfig`] (each
    /// node recovers from its own WAL directory, so a cluster reopened over
    /// existing directories comes back with its data).
    pub fn open(node_cfgs: &[WalConfig]) -> Result<ReplicatedBroker, BrokerError> {
        let mut nodes = Vec::with_capacity(node_cfgs.len());
        for cfg in node_cfgs {
            nodes.push(Node {
                broker: Arc::new(Broker::open(cfg.clone())?),
                alive: true,
                cfg: cfg.clone(),
            });
        }
        Ok(ReplicatedBroker {
            state: RwLock::new(ClusterState {
                nodes,
                topics: HashMap::new(),
                joins: Vec::new(),
                epoch: 1,
            }),
            clock: WallClock::start(),
            stats: Mutex::new(ClusterStats::default()),
        })
    }

    /// Number of nodes (alive or dead).
    pub fn nodes(&self) -> usize {
        self.state.read().nodes.len()
    }

    /// Indices of currently alive nodes.
    pub fn alive_nodes(&self) -> Vec<usize> {
        let s = self.state.read();
        (0..s.nodes.len()).filter(|&i| s.nodes[i].alive).collect()
    }

    /// Direct handle to one node's broker (tests and diagnostics).
    pub fn node_broker(&self, node: usize) -> Option<Arc<Broker>> {
        self.state
            .read()
            .nodes
            .get(node)
            .map(|n| Arc::clone(&n.broker))
    }

    /// Cluster epoch: bumped on every kill or restart.
    pub fn cluster_epoch(&self) -> u64 {
        self.state.read().epoch
    }

    /// Cluster-level fault counters.
    pub fn stats(&self) -> ClusterStats {
        *self.stats.lock()
    }

    /// Seconds since the cluster started (shared append timestamp clock).
    pub fn now_s(&self) -> f64 {
        self.clock.elapsed_s()
    }

    fn read_node_of(s: &ClusterState) -> Result<usize, BrokerError> {
        (0..s.nodes.len())
            .find(|&i| s.nodes[i].alive)
            .ok_or(BrokerError::NoAliveReplica)
    }

    /// Create a topic on every alive node, with leaders assigned round-robin
    /// over the nodes.
    pub fn create_topic(
        &self,
        name: &str,
        partitions: usize,
        retention: Retention,
    ) -> Result<(), BrokerError> {
        let mut s = self.state.write();
        if s.topics.contains_key(name) {
            return Err(BrokerError::TopicExists(name.to_string()));
        }
        let alive: Vec<usize> = (0..s.nodes.len()).filter(|&i| s.nodes[i].alive).collect();
        if alive.is_empty() {
            return Err(BrokerError::NoAliveReplica);
        }
        for &i in &alive {
            s.nodes[i]
                .broker
                .create_topic_with(name, partitions, retention)?;
        }
        let n = partitions.max(1);
        s.topics.insert(
            name.to_string(),
            ClusterTopic {
                partitions: n,
                retention,
                leads: (0..n)
                    .map(|p| {
                        Mutex::new(Lead {
                            leader: alive[p % alive.len()],
                            epoch: 1,
                        })
                    })
                    .collect(),
                append_locks: (0..n).map(|_| Mutex::new(())).collect(),
                round_robin: Mutex::new(0),
            },
        );
        Ok(())
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<usize, BrokerError> {
        self.state
            .read()
            .topics
            .get(topic)
            .map(|t| t.partitions)
            .ok_or_else(|| BrokerError::UnknownTopic(topic.to_string()))
    }

    /// The current leadership lease of one partition. Never names a dead
    /// leader: if the recorded leader died (possible while the whole
    /// cluster was down), leadership fails over here to the lowest alive
    /// node under a bumped epoch, or the call errors when no node is alive.
    pub fn lease(&self, topic: &str, partition: usize) -> Result<LeaderLease, BrokerError> {
        let s = self.state.read();
        let t = s
            .topics
            .get(topic)
            .ok_or_else(|| BrokerError::UnknownTopic(topic.to_string()))?;
        if partition >= t.partitions {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let mut lead = t.leads[partition].lock();
        let mut promoted = false;
        if !s.nodes.get(lead.leader).map(|n| n.alive).unwrap_or(false) {
            let successor = Self::read_node_of(&s)?;
            lead.leader = successor;
            lead.epoch += 1;
            promoted = true;
        }
        let lease = LeaderLease {
            topic: topic.to_string(),
            partition,
            node: lead.leader,
            epoch: lead.epoch,
        };
        drop(lead);
        if promoted {
            self.stats.lock().leader_failovers += 1;
        }
        Ok(lease)
    }

    /// Replicate one batch to every alive node's partition, highest node
    /// index first (see module docs). Caller holds the partition append
    /// lock.
    fn replicate(
        s: &ClusterState,
        topic: &str,
        partition: usize,
        now_s: f64,
        records: &[Record],
    ) -> Result<u64, BrokerError> {
        let mut base = None;
        for node in s.nodes.iter().rev() {
            if !node.alive {
                continue;
            }
            // lint: allow(fence-discipline, reason = "serialized by the partition append lock every caller holds; appends carry no external lease that could go stale")
            let b = node.broker.append_at(topic, partition, now_s, records)?;
            base = Some(b);
        }
        base.ok_or(BrokerError::NoAliveReplica)
    }

    /// Append a batch under a leadership lease. A stale lease — one whose
    /// epoch predates a failover of the partition — is rejected with
    /// [`BrokerError::FencedEpoch`] without touching any replica. Returns
    /// the base offset of the appended batch.
    pub fn append_with_lease(
        &self,
        lease: &LeaderLease,
        records: &[Record],
    ) -> Result<u64, BrokerError> {
        let s = self.state.read();
        let t = s
            .topics
            .get(&lease.topic)
            .ok_or_else(|| BrokerError::UnknownTopic(lease.topic.clone()))?;
        if lease.partition >= t.partitions {
            return Err(BrokerError::UnknownPartition {
                topic: lease.topic.clone(),
                partition: lease.partition,
            });
        }
        let _append = t.append_locks[lease.partition].lock();
        {
            let lead = t.leads[lease.partition].lock();
            if lease.epoch < lead.epoch || lease.node != lead.leader {
                let current = lead.epoch;
                drop(lead);
                self.stats.lock().fenced_appends += 1;
                return Err(BrokerError::FencedEpoch {
                    topic: lease.topic.clone(),
                    partition: lease.partition,
                    epoch: lease.epoch,
                    current,
                });
            }
        }
        Self::replicate(
            &s,
            &lease.topic,
            lease.partition,
            self.clock.elapsed_s(),
            records,
        )
    }

    /// Append one record through the current leadership (no caller-held
    /// lease; the cluster routes and replicates). Returns (partition, offset).
    pub fn produce(
        &self,
        topic: &str,
        key: Option<u64>,
        payload: Arc<Vec<u8>>,
    ) -> Result<(usize, u64), BrokerError> {
        let s = self.state.read();
        let t = s
            .topics
            .get(topic)
            .ok_or_else(|| BrokerError::UnknownTopic(topic.to_string()))?;
        if matches!(t.retention, Retention::Compact { .. }) && key.is_none() {
            return Err(BrokerError::KeyRequired(topic.to_string()));
        }
        let p = match key {
            Some(k) => Broker::key_partition(k, t.partitions),
            None => {
                let mut rr = t.round_robin.lock();
                let p = *rr % t.partitions;
                *rr = (p + 1) % t.partitions;
                p
            }
        };
        let _append = t.append_locks[p].lock();
        let base = Self::replicate(&s, topic, p, self.clock.elapsed_s(), &[(key, payload)])?;
        Ok((p, base))
    }

    /// Append a batch through the current leadership: records are routed
    /// (key hash / round-robin) once at the cluster, then each touched
    /// partition is replicated to every alive node under its append lock.
    /// Returns the number of records appended.
    pub fn produce_batch(
        &self,
        topic: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<u64, BrokerError> {
        let s = self.state.read();
        let t = s
            .topics
            .get(topic)
            .ok_or_else(|| BrokerError::UnknownTopic(topic.to_string()))?;
        let compacted = matches!(t.retention, Retention::Compact { .. });
        let mut buckets: Vec<Vec<Record>> = (0..t.partitions).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        {
            let mut rr = None;
            for (key, payload) in records {
                let p = match key {
                    Some(k) => Broker::key_partition(k, t.partitions),
                    None => {
                        if compacted {
                            return Err(BrokerError::KeyRequired(topic.to_string()));
                        }
                        let cursor = rr.get_or_insert_with(|| t.round_robin.lock());
                        let p = **cursor % t.partitions;
                        **cursor = (p + 1) % t.partitions;
                        p
                    }
                };
                buckets[p].push((key, payload));
                total += 1;
            }
        }
        if total == 0 {
            return Ok(0);
        }
        let now = self.clock.elapsed_s();
        for (p, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let _append = t.append_locks[p].lock();
            Self::replicate(&s, topic, p, now, bucket)?;
        }
        Ok(total)
    }

    /// Join a consumer group on every alive node and remember the join so a
    /// restarted node replays it.
    pub fn join_group(&self, group: &str, topic: &str, consumer: &str) -> Result<(), BrokerError> {
        let mut s = self.state.write();
        for node in &s.nodes {
            if node.alive {
                node.broker.join_group(group, topic, consumer)?;
            }
        }
        let entry = (group.to_string(), topic.to_string(), consumer.to_string());
        if !s.joins.contains(&entry) {
            s.joins.push(entry);
        }
        Ok(())
    }

    /// Subscribe a joined consumer on the current read node.
    pub fn subscribe(&self, group: &str, consumer: &str) -> Result<ClusterSub, BrokerError> {
        let s = self.state.read();
        let node = Self::read_node_of(&s)?;
        let sub = s.nodes[node].broker.subscribe(group, consumer)?;
        Ok(ClusterSub {
            group: group.to_string(),
            consumer: consumer.to_string(),
            node,
            cluster_epoch: s.epoch,
            sub,
        })
    }

    /// Poll through a cluster subscription: reads from the current read
    /// node (re-resolved after a failover), auto-commits there, and
    /// replicates the commit to every other alive node — so whichever node
    /// is promoted next already knows what this group consumed.
    pub fn poll_into(
        &self,
        csub: &mut ClusterSub,
        max: usize,
        buf: &mut Vec<Message>,
    ) -> Result<usize, BrokerError> {
        let s = self.state.read();
        if csub.cluster_epoch != s.epoch {
            let node = Self::read_node_of(&s)?;
            csub.sub = s.nodes[node]
                .broker
                .subscribe(&csub.group, &csub.consumer)?;
            csub.node = node;
            csub.cluster_epoch = s.epoch;
        }
        let n = s.nodes[csub.node]
            .broker
            .poll_into(&mut csub.sub, max, buf)?;
        if n > 0 {
            // Appends reach higher-index nodes before the read node (lowest
            // alive), so every commit below is within each follower's log.
            let commits = csub.sub.last_commits();
            for (i, node) in s.nodes.iter().enumerate() {
                if i == csub.node || !node.alive {
                    continue;
                }
                for &(p, off) in &commits {
                    node.broker.commit(&csub.group, p, off)?;
                }
            }
        }
        Ok(n)
    }

    /// Append-sequence sample of the current read node (pair with
    /// [`ReplicatedBroker::wait_for_data`], same protocol as
    /// [`Broker::data_seq`]).
    pub fn data_seq(&self) -> u64 {
        let s = self.state.read();
        match Self::read_node_of(&s) {
            Ok(n) => s.nodes[n].broker.data_seq(),
            Err(_) => 0,
        }
    }

    /// Park on the current read node until data arrives, the node is closed
    /// (kill wakes parked consumers), or the timeout elapses.
    pub fn wait_for_data(&self, seen: u64, timeout: Duration) -> u64 {
        let broker = {
            let s = self.state.read();
            match Self::read_node_of(&s) {
                Ok(n) => Arc::clone(&s.nodes[n].broker),
                Err(_) => return seen,
            }
        };
        // The state lock is dropped before parking: a kill needs the write
        // lock to close this broker, and close() is what wakes the park.
        broker.wait_for_data(seen, timeout)
    }

    /// Wake every consumer parked on the read node.
    pub fn wake_all(&self) {
        let s = self.state.read();
        for node in &s.nodes {
            if node.alive {
                node.broker.wake_all();
            }
        }
    }

    /// Group accounting from the current read node.
    pub fn group_stats(&self, group: &str) -> Result<crate::broker::GroupStats, BrokerError> {
        let s = self.state.read();
        let node = Self::read_node_of(&s)?;
        s.nodes[node].broker.group_stats(group)
    }

    /// Kill a node: its broker is closed (appends rejected, parked consumers
    /// woken), and every partition it led is promoted to the lowest alive
    /// node under a bumped epoch — any lease the dead leader handed out is
    /// fenced from that moment. Returns the number of partitions failed
    /// over. Serializes against in-flight appends, so no batch is ever
    /// half-replicated across the kill.
    pub fn kill_node(&self, node: usize) -> Result<u64, BrokerError> {
        let mut s = self.state.write();
        if node >= s.nodes.len() {
            return Err(BrokerError::UnknownNode {
                node,
                nodes: s.nodes.len(),
            });
        }
        if !s.nodes[node].alive {
            // A double kill used to be a silent `Ok(0)`, indistinguishable
            // from "the node led nothing"; callers retrying a kill want the
            // typed error.
            return Err(BrokerError::NodeDead(node));
        }
        s.nodes[node].alive = false;
        s.nodes[node].broker.close();
        let successor = (0..s.nodes.len()).find(|&i| s.nodes[i].alive);
        let mut failovers = 0u64;
        for t in s.topics.values() {
            for lead in &t.leads {
                let mut lead = lead.lock();
                if lead.leader == node {
                    // Bump the epoch even when no successor exists (the
                    // last node died): the bump is what fences outstanding
                    // leases; the leader index is only advisory until a
                    // restart re-promotes.
                    lead.epoch += 1;
                    if let Some(successor) = successor {
                        lead.leader = successor;
                        failovers += 1;
                    }
                }
            }
        }
        s.epoch += 1;
        drop(s);
        let mut stats = self.stats.lock();
        stats.node_kills += 1;
        stats.leader_failovers += failovers;
        Ok(failovers)
    }

    /// Restart a killed node: reopen its broker from the WAL
    /// (prefix-consistent recovery), pull the missed suffix of every
    /// partition from a live replica, replay group joins and committed
    /// offsets, and rejoin as a follower (leadership stays where the
    /// failover put it). Returns what WAL recovery found.
    pub fn restart_node(&self, node: usize) -> Result<RecoveryInfo, BrokerError> {
        let mut s = self.state.write();
        if node >= s.nodes.len() {
            return Err(BrokerError::UnknownNode {
                node,
                nodes: s.nodes.len(),
            });
        }
        if s.nodes[node].alive {
            return Err(BrokerError::NodeAlive(node));
        }
        // With every node dead there is no live catch-up source; the node
        // recovers from its own WAL alone and the cluster comes back with
        // whatever that prefix holds. (Previously this path was an error,
        // leaving an all-dead cluster permanently unrecoverable.)
        let src = Self::read_node_of(&s).ok();
        let broker = Broker::open(s.nodes[node].cfg.clone())?;
        let info = broker.recovery_info().clone();
        // Topics the truncated meta log lost are re-created empty, then
        // caught up like any other.
        for (name, t) in &s.topics {
            if broker.partitions(name).is_err() {
                broker.create_topic_with(name, t.partitions, t.retention)?;
            }
            let Some(src) = src else { continue };
            let src_broker = &s.nodes[src].broker;
            for p in 0..t.partitions {
                let mut from = broker.high_watermark(name, p)?;
                loop {
                    let msgs = src_broker.fetch(name, p, from, 4096)?;
                    let Some(last) = msgs.last() else { break };
                    from = last.offset + 1;
                    // lint: allow(fence-discipline, reason = "catch-up replay holds the cluster write lock for the whole restart; no epoch can advance concurrently")
                    broker.append_messages(name, p, &msgs)?;
                }
            }
        }
        for (group, topic, consumer) in &s.joins {
            broker.join_group(group, topic, consumer)?;
        }
        if let Some(src) = src {
            let src_broker = Arc::clone(&s.nodes[src].broker);
            for group in src_broker.group_names() {
                let stats = src_broker.group_stats(&group)?;
                if broker.group_stats(&group).is_err() {
                    continue; // group never joined through the cluster
                }
                for (p, &off) in stats.offsets.iter().enumerate() {
                    broker.commit(&group, p, off)?;
                }
            }
        }
        s.nodes[node].broker = Arc::new(broker);
        s.nodes[node].alive = true;
        s.epoch += 1;
        // Any partition led by a dead node fails over to the restarted one
        // under a bumped epoch (reachable only when the whole cluster was
        // down: with a live node present, kills always promote a live
        // successor). Leadership otherwise stays where the failover put it.
        let mut promotions = 0u64;
        {
            let nodes = &s.nodes;
            for t in s.topics.values() {
                for lead in &t.leads {
                    let mut lead = lead.lock();
                    if !nodes.get(lead.leader).map(|n| n.alive).unwrap_or(false) {
                        lead.leader = node;
                        lead.epoch += 1;
                        promotions += 1;
                    }
                }
            }
        }
        drop(s);
        let mut stats = self.stats.lock();
        stats.node_restarts += 1;
        stats.leader_failovers += promotions;
        Ok(info)
    }
}

/// Deterministic broker-node kill times derived from a [`FaultPlan`] and a
/// run seed: node `i`'s kill time is an exponential draw with the plan's
/// broker-node MTBF from the reserved `BROKER_KILL` stream. Same plan, same
/// seed → same schedule, every replay.
#[derive(Clone, Debug, PartialEq)]
pub struct KillSchedule {
    times: Vec<Option<f64>>,
}

impl KillSchedule {
    /// Draw the schedule for `nodes` nodes. All entries are `None` when the
    /// plan has no broker-node MTBF.
    pub fn from_plan(plan: &FaultPlan, seed: u64, nodes: usize) -> KillSchedule {
        let times = (0..nodes)
            .map(|i| {
                plan.broker_node_mtbf_s.map(|mtbf| {
                    let mut rng =
                        SimRng::new(seed).stream(streams::keyed(streams::BROKER_KILL, i as u64, 0));
                    let u = rng.f64();
                    // Exponential inter-failure time; (1 - u) keeps the log
                    // argument in (0, 1].
                    -mtbf * (1.0 - u).ln()
                })
            })
            .collect();
        KillSchedule { times }
    }

    /// Kill time of one node, seconds from cluster start (`None` = never).
    pub fn kill_time_s(&self, node: usize) -> Option<f64> {
        self.times.get(node).copied().flatten()
    }

    /// The earliest scheduled kill, as `(node, time_s)`.
    pub fn first(&self) -> Option<(usize, f64)> {
        self.times
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FsyncPolicy, TempDir};
    use std::collections::HashSet;

    fn cluster(label: &str, nodes: usize) -> (ReplicatedBroker, Vec<TempDir>) {
        let dirs: Vec<TempDir> = (0..nodes)
            .map(|i| TempDir::new(&format!("{label}-{i}")).unwrap())
            .collect();
        let cfgs: Vec<WalConfig> = dirs
            .iter()
            .map(|d| WalConfig::new(d.path()).with_fsync(FsyncPolicy::Never))
            .collect();
        (ReplicatedBroker::open(&cfgs).unwrap(), dirs)
    }

    fn payload(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 8])
    }

    /// (offset, key, payload) image of one node's partition.
    fn partition_image(b: &Broker, topic: &str, p: usize) -> Vec<(u64, Option<u64>, Vec<u8>)> {
        b.fetch(topic, p, 0, usize::MAX)
            .unwrap()
            .iter()
            .map(|m| (m.offset, m.key, m.payload.as_ref().clone()))
            .collect()
    }

    #[test]
    fn appends_replicate_identically_to_all_nodes() {
        let (c, _dirs) = cluster("replident", 3);
        c.create_topic("t", 4, Retention::Count(1_000_000)).unwrap();
        c.produce_batch(
            "t",
            (0..500u64).map(|i| {
                let key = (i % 3 == 0).then_some(i);
                (key, payload(i as u8))
            }),
        )
        .unwrap();
        for _ in 0..50 {
            c.produce("t", Some(7), payload(9)).unwrap();
        }
        let n0 = c.node_broker(0).unwrap();
        for other in 1..3 {
            let nb = c.node_broker(other).unwrap();
            for p in 0..4 {
                assert_eq!(
                    partition_image(&n0, "t", p),
                    partition_image(&nb, "t", p),
                    "node {other} partition {p} diverged"
                );
            }
        }
    }

    #[test]
    fn leaders_are_assigned_round_robin_with_epoch_one() {
        let (c, _dirs) = cluster("leaders", 3);
        c.create_topic("t", 6, Retention::Count(100)).unwrap();
        let leaders: Vec<usize> = (0..6).map(|p| c.lease("t", p).unwrap().node).collect();
        assert_eq!(leaders, vec![0, 1, 2, 0, 1, 2]);
        assert!((0..6).all(|p| c.lease("t", p).unwrap().epoch == 1));
    }

    #[test]
    fn kill_promotes_follower_and_fences_the_stale_leader() {
        let (c, _dirs) = cluster("fence", 3);
        c.create_topic("t", 3, Retention::Count(100_000)).unwrap();
        let stale = c.lease("t", 0).unwrap();
        assert_eq!(stale.node, 0);
        c.append_with_lease(&stale, &[(None, payload(1))]).unwrap();
        // Kill the leader of partition 0.
        let failovers = c.kill_node(0).unwrap();
        assert_eq!(failovers, 1, "node 0 led exactly partition 0");
        let fresh = c.lease("t", 0).unwrap();
        assert_eq!(fresh.node, 1, "lowest alive node promoted");
        assert_eq!(fresh.epoch, stale.epoch + 1);
        // The deposed leader's lease is fenced...
        let err = c.append_with_lease(&stale, &[(None, payload(2))]);
        assert_eq!(
            err,
            Err(BrokerError::FencedEpoch {
                topic: "t".into(),
                partition: 0,
                epoch: stale.epoch,
                current: fresh.epoch,
            })
        );
        // ...and nothing leaked into any replica.
        let hw = c.node_broker(1).unwrap().high_watermark("t", 0).unwrap();
        assert_eq!(hw, 1, "fenced append appended nothing");
        // The new leader's lease works.
        c.append_with_lease(&fresh, &[(None, payload(3))]).unwrap();
        assert_eq!(c.node_broker(1).unwrap().high_watermark("t", 0).unwrap(), 2);
        let stats = c.stats();
        assert_eq!(stats.node_kills, 1);
        assert_eq!(stats.leader_failovers, 1);
        assert_eq!(stats.fenced_appends, 1);
    }

    #[test]
    fn consumers_survive_failover_exactly_once() {
        let (c, _dirs) = cluster("failover", 3);
        c.create_topic("t", 2, Retention::Count(1_000_000)).unwrap();
        c.join_group("g", "t", "c0").unwrap();
        let mut sub = c.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        let mut seen: Vec<u8> = Vec::new();
        // Produce 100, consume ~half, kill the read node mid-stream.
        c.produce_batch("t", (0..100u32).map(|i| (None, payload(i as u8))))
            .unwrap();
        while seen.len() < 50 {
            c.poll_into(&mut sub, 10, &mut buf).unwrap();
            seen.extend(buf.iter().map(|m| m.payload[0]));
        }
        c.kill_node(0).unwrap();
        // Keep producing after the failover; the subscription re-resolves.
        c.produce_batch("t", (100..150u32).map(|i| (None, payload(i as u8))))
            .unwrap();
        loop {
            let n = c.poll_into(&mut sub, 64, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            seen.extend(buf.iter().map(|m| m.payload[0]));
        }
        assert_eq!(seen.len(), 150, "no loss, no redelivery across failover");
        let unique: HashSet<u8> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 150, "every record distinct");
        assert!(sub.node() > 0, "subscription moved off the dead node");
    }

    #[test]
    fn restarted_node_catches_up_and_rejoins_as_follower() {
        let (c, _dirs) = cluster("restart", 3);
        c.create_topic("t", 2, Retention::Count(1_000_000)).unwrap();
        c.join_group("g", "t", "c0").unwrap();
        c.produce_batch("t", (0..40u32).map(|i| (None, payload(i as u8))))
            .unwrap();
        c.kill_node(0).unwrap();
        // The cluster keeps moving while node 0 is down.
        c.produce_batch("t", (40..90u32).map(|i| (None, payload(i as u8))))
            .unwrap();
        let mut sub = c.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        while c.poll_into(&mut sub, 64, &mut buf).unwrap() > 0 {}
        c.restart_node(0).unwrap();
        assert_eq!(c.alive_nodes(), vec![0, 1, 2]);
        // Caught up: node 0's log matches the survivors record for record.
        let n0 = c.node_broker(0).unwrap();
        let n1 = c.node_broker(1).unwrap();
        for p in 0..2 {
            assert_eq!(
                partition_image(&n0, "t", p),
                partition_image(&n1, "t", p),
                "partition {p} did not catch up"
            );
        }
        // Committed offsets came back too.
        assert_eq!(n0.group_stats("g").unwrap().committed, 90);
        // Leadership stays with the failover winner; node 0 follows.
        assert_eq!(c.lease("t", 0).unwrap().node, 1);
        // New appends replicate to the rejoined follower.
        c.produce_batch("t", (90..100u32).map(|i| (None, payload(i as u8))))
            .unwrap();
        for p in 0..2 {
            assert_eq!(
                partition_image(&n0, "t", p),
                partition_image(&n1, "t", p),
                "rejoined follower missed post-restart appends"
            );
        }
        assert_eq!(c.stats().node_restarts, 1);
    }

    #[test]
    fn kill_wakes_consumers_parked_on_the_dead_node() {
        let (c, _dirs) = cluster("parked", 2);
        let c = Arc::new(c);
        c.create_topic("t", 2, Retention::Count(1000)).unwrap();
        c.join_group("g", "t", "c0").unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    // Park exactly the way pipeline consumers do: sample,
                    // empty poll, wait. The kill must end the wait early.
                    let seen = c.data_seq();
                    c.wait_for_data(seen, Duration::from_secs(30))
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        c.kill_node(0).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "kill must wake parked consumers, not let them ride out the timeout"
        );
    }

    #[test]
    fn kill_schedule_is_deterministic_and_replayable() {
        let plan = FaultPlan::none().with_broker_node_kills(30.0);
        let a = KillSchedule::from_plan(&plan, 42, 4);
        let b = KillSchedule::from_plan(&plan, 42, 4);
        assert_eq!(a, b, "same seed, same schedule");
        let c = KillSchedule::from_plan(&plan, 43, 4);
        assert_ne!(a, c, "different seed, different schedule");
        for i in 0..4 {
            let t = a.kill_time_s(i).unwrap();
            assert!(t.is_finite() && t >= 0.0, "node {i} time {t}");
        }
        let (node, t) = a.first().unwrap();
        assert!(a.kill_time_s(node).unwrap() == t);
        assert!((0..4).all(|i| a.kill_time_s(i).unwrap() >= t));
        // No MTBF ⇒ no kills, ever.
        let none = KillSchedule::from_plan(&FaultPlan::none(), 42, 4);
        assert_eq!(none.first(), None);
        assert_eq!(none.kill_time_s(0), None);
    }

    #[test]
    fn topic_created_while_a_node_is_dead_gets_alive_leaders() {
        // Regression: leadership at creation time must skip dead nodes —
        // a partition whose leader is dead would fence every append.
        let (c, _dirs) = cluster("deadlead", 3);
        c.kill_node(0).unwrap();
        c.create_topic("t", 6, Retention::Count(1_000)).unwrap();
        for p in 0..6 {
            let lease = c.lease("t", p).unwrap();
            assert_ne!(lease.node, 0, "partition {p} led by the dead node");
            c.append_with_lease(&lease, &[(None, payload(p as u8))])
                .unwrap();
        }
        // The restarted node catches the topic up and does not steal
        // leadership back.
        c.restart_node(0).unwrap();
        for p in 0..6 {
            assert_ne!(c.lease("t", p).unwrap().node, 0);
            assert_eq!(c.node_broker(0).unwrap().high_watermark("t", p), Ok(1));
        }
    }

    #[test]
    fn node_edge_cases_return_typed_errors() {
        // Table-driven audit of the kill/restart edges that used to be
        // silent no-ops (`Ok(0)` double kill) or a catch-all error.
        let (c, _dirs) = cluster("edges", 3);
        c.create_topic("t", 2, Retention::Count(1_000)).unwrap();
        c.kill_node(1).unwrap();
        let cases: Vec<(&str, Result<(), BrokerError>, BrokerError)> = vec![
            (
                "kill out-of-range",
                c.kill_node(9).map(|_| ()),
                BrokerError::UnknownNode { node: 9, nodes: 3 },
            ),
            (
                "restart out-of-range",
                c.restart_node(9).map(|_| ()),
                BrokerError::UnknownNode { node: 9, nodes: 3 },
            ),
            (
                "double kill",
                c.kill_node(1).map(|_| ()),
                BrokerError::NodeDead(1),
            ),
            (
                "restart of an alive node",
                c.restart_node(0).map(|_| ()),
                BrokerError::NodeAlive(0),
            ),
            (
                "append to an out-of-range partition",
                {
                    let mut lease = c.lease("t", 0).unwrap();
                    lease.partition = 7;
                    c.append_with_lease(&lease, &[(None, payload(0))])
                        .map(|_| ())
                },
                BrokerError::UnknownPartition {
                    topic: "t".to_string(),
                    partition: 7,
                },
            ),
        ];
        for (what, got, want) in cases {
            assert_eq!(got, Err(want), "{what}");
        }
        // The probe kill above still counts as exactly one failover-worthy
        // kill; the rejected edges must not have perturbed the cluster.
        assert_eq!(c.alive_nodes(), vec![0, 2]);
        assert_eq!(c.stats().node_kills, 1);
    }

    #[test]
    fn killing_the_last_node_still_fences_stale_leases() {
        // Epoch bumps must not depend on a successor existing: a lease
        // taken before the last node died is stale after recovery.
        let (c, _dirs) = cluster("lastkill", 1);
        c.create_topic("t", 1, Retention::Count(1_000)).unwrap();
        let stale = c.lease("t", 0).unwrap();
        c.append_with_lease(&stale, &[(None, payload(1))]).unwrap();
        c.kill_node(0).unwrap();
        assert_eq!(c.lease("t", 0), Err(BrokerError::NoAliveReplica));
        c.restart_node(0).unwrap();
        let err = c
            .append_with_lease(&stale, &[(None, payload(2))])
            .unwrap_err();
        assert!(
            matches!(err, BrokerError::FencedEpoch { epoch: 1, .. }),
            "stale lease must be fenced after the kill, got {err:?}"
        );
        assert_eq!(c.stats().fenced_appends, 1);
        // A fresh lease carries the bumped epoch and works.
        let fresh = c.lease("t", 0).unwrap();
        assert!(fresh.epoch > stale.epoch);
        c.append_with_lease(&fresh, &[(None, payload(3))]).unwrap();
    }

    #[test]
    fn all_dead_cluster_recovers_from_its_own_wal() {
        // With every node dead there is no catch-up source; restart_node
        // must recover from the node's own WAL instead of erroring out
        // (which left an all-dead cluster permanently unrecoverable).
        let (c, _dirs) = cluster("alldead", 2);
        c.create_topic("t", 2, Retention::Count(1_000)).unwrap();
        for i in 0..10u8 {
            c.produce("t", Some(u64::from(i)), payload(i)).unwrap();
        }
        c.kill_node(0).unwrap();
        c.kill_node(1).unwrap();
        assert!(c.alive_nodes().is_empty());
        let info = c.restart_node(0).unwrap();
        assert!(info.records > 0, "own-WAL replay found nothing");
        // Leadership of every partition lands on the restarted node under a
        // bumped epoch, and the data plane is live again.
        for p in 0..2 {
            let lease = c.lease("t", p).unwrap();
            assert_eq!(lease.node, 0);
            assert!(lease.epoch > 1, "recovery must bump the partition epoch");
            c.append_with_lease(&lease, &[(None, payload(9))]).unwrap();
        }
        // The second node comes back as a follower and catches up to byte
        // parity with the survivor.
        c.restart_node(1).unwrap();
        let (n0, n1) = (c.node_broker(0).unwrap(), c.node_broker(1).unwrap());
        for p in 0..2 {
            assert_eq!(
                partition_image(&n0, "t", p),
                partition_image(&n1, "t", p),
                "partition {p} diverged after the all-dead recovery"
            );
        }
    }
}
