//! Write-ahead log: segmented, CRC-checked, append-only record files.
//!
//! This is the durability substrate under [`crate::Broker`]. Every mutation
//! that must survive a crash — a message append, a committed consumer-group
//! offset, a topic creation — is framed, checksummed, and appended to a
//! [`SegmentedLog`] before (or atomically with) the in-memory state change,
//! so a restarted broker replays the log and resumes exactly where the
//! crashed one left off.
//!
//! ## Record framing
//!
//! Each record is stored as
//!
//! ```text
//! [ len: u32 LE ][ crc: u32 LE ][ payload: len bytes ]
//! ```
//!
//! where `crc` is the IEEE CRC-32 of the payload. On recovery a record is
//! accepted only if the full frame fits in the file *and* the checksum
//! matches; the first torn or corrupt record truncates the log right there
//! (the file is physically shrunk to the last valid frame and any later
//! segments are deleted), which is what makes recovery *prefix-consistent*:
//! the recovered log is always a prefix of what was appended.
//!
//! ## Segments
//!
//! A log is a directory of `seg-<n>.log` files. Appends go to the highest
//! segment; once it exceeds [`WalConfig::segment_bytes`] the writer rolls to
//! a fresh file. Segment boundaries bound the cost of recovery truncation
//! and give retention a natural GC unit.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `Always` fsyncs after
//! every append (a crash loses nothing that was acknowledged), `EveryN(n)`
//! bounds the loss window to `n` records, `Never` leaves flushing to the OS
//! (a *process* crash still loses nothing — the data sits in the page cache
//! — only a machine crash can). Recovery handles all three identically:
//! whatever prefix survived is what comes back.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum in every record frame).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// When to fsync the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync explicitly; the OS flushes the page cache. Survives
    /// process crashes, not power loss. The fastest option and the default.
    Never,
    /// Fsync after every `n` appends: bounds the power-loss window to `n`
    /// records.
    EveryN(u32),
    /// Fsync after every append: an acknowledged record survives power loss.
    Always,
}

/// Configuration of one broker's write-ahead log tree.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Root directory; the broker lays out `meta/`, `offsets/`, and
    /// `topics/<topic>/<partition>/` under it.
    pub dir: PathBuf,
    /// Roll to a new segment file once the active one exceeds this size.
    pub segment_bytes: u64,
    /// Fsync policy for every log in the tree.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A config rooted at `dir` with 8 MiB segments and no explicit fsync.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::Never,
        }
    }

    /// Override the segment roll size (clamped to ≥ 4 KiB).
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> WalConfig {
        self.segment_bytes = bytes.max(4096);
        self
    }

    /// Override the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> WalConfig {
        self.fsync = fsync;
        self
    }
}

/// A WAL I/O or decode failure. Carries the operation, the path, and the OS
/// error text; comparable so broker errors stay `PartialEq`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalError {
    /// What was being attempted (`open`, `append`, `sync`, `decode`, …).
    pub op: &'static str,
    /// The file or directory involved.
    pub path: String,
    /// OS or decoder detail.
    pub detail: String,
}

impl WalError {
    fn io(op: &'static str, path: &Path, err: &std::io::Error) -> WalError {
        WalError {
            op,
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }

    fn decode(path: &str, detail: &str) -> WalError {
        WalError {
            op: "decode",
            path: path.to_string(),
            detail: detail.to_string(),
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wal {} failed at {}: {}",
            self.op, self.path, self.detail
        )
    }
}

impl std::error::Error for WalError {}

/// What recovery found while opening a [`SegmentedLog`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Valid records replayed.
    pub records: u64,
    /// Bytes truncated off the first torn/corrupt record onward.
    pub truncated_bytes: u64,
    /// Whole segments deleted because they followed a corrupt one.
    pub dropped_segments: u64,
}

impl RecoveryInfo {
    /// Fold another log's recovery tally into this one (a broker aggregates
    /// across its meta, offsets, and per-partition logs).
    pub fn absorb(&mut self, other: &RecoveryInfo) {
        self.records += other.records;
        self.truncated_bytes += other.truncated_bytes;
        self.dropped_segments += other.dropped_segments;
    }
}

const FRAME_HEADER: usize = 8; // len u32 + crc u32

/// A segmented append-only record log in one directory.
pub struct SegmentedLog {
    dir: PathBuf,
    segment_bytes: u64,
    fsync: FsyncPolicy,
    /// Index of the active segment (name `seg-<index>.log`).
    cur_index: u64,
    cur: File,
    cur_len: u64,
    since_sync: u32,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:010}.log"))
}

/// Parse every whole, checksum-valid frame in `buf`. Returns the records and
/// the byte length of the valid prefix; `clean` is false when a torn or
/// corrupt frame cut the scan short.
fn parse_frames(buf: &[u8]) -> (Vec<Vec<u8>>, u64, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + FRAME_HEADER <= buf.len() {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        let start = pos + FRAME_HEADER;
        let end = match start.checked_add(len) {
            Some(e) if e <= buf.len() => e,
            _ => return (records, pos as u64, false), // torn length/payload
        };
        if crc32(&buf[start..end]) != crc {
            return (records, pos as u64, false); // corrupt payload
        }
        records.push(buf[start..end].to_vec());
        pos = end;
    }
    // Trailing bytes smaller than a header are a torn header.
    let clean = pos == buf.len();
    (records, pos as u64, clean)
}

impl SegmentedLog {
    /// Open (creating the directory if needed) and recover a log: every
    /// segment is scanned in order, the valid record prefix is returned, the
    /// first corruption truncates its file in place, and segments after a
    /// corrupt one are deleted. The writer resumes at the end of the valid
    /// prefix.
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> Result<(SegmentedLog, Vec<Vec<u8>>, RecoveryInfo), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| WalError::io("create-dir", &dir, &e))?;
        let mut indices: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| WalError::io("read-dir", &dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| WalError::io("read-dir", &dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                indices.push(idx);
            }
        }
        indices.sort_unstable();

        let mut records = Vec::new();
        let mut info = RecoveryInfo::default();
        let mut last_index = 0u64;
        let mut last_len = 0u64;
        let mut corrupted = false;
        for (k, &idx) in indices.iter().enumerate() {
            let path = segment_path(&dir, idx);
            if corrupted {
                // Everything after a corrupt segment is beyond the valid
                // prefix; keeping it would fake a gap-free log.
                fs::remove_file(&path).map_err(|e| WalError::io("remove", &path, &e))?;
                info.dropped_segments += 1;
                continue;
            }
            let mut buf = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut buf))
                .map_err(|e| WalError::io("read", &path, &e))?;
            let (mut recs, valid_len, clean) = parse_frames(&buf);
            info.records += recs.len() as u64;
            records.append(&mut recs);
            if !clean {
                info.truncated_bytes += buf.len() as u64 - valid_len;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| WalError::io("truncate", &path, &e))?;
                f.set_len(valid_len)
                    .map_err(|e| WalError::io("truncate", &path, &e))?;
                f.sync_all().map_err(|e| WalError::io("sync", &path, &e))?;
                corrupted = true;
            }
            if !clean || k == indices.len() - 1 {
                last_index = idx;
                last_len = valid_len;
            }
        }
        if indices.is_empty() {
            let path = segment_path(&dir, 0);
            // Touch segment 0 so the append handle below has a file.
            File::create(&path).map_err(|e| WalError::io("create", &path, &e))?;
        }
        let path = segment_path(&dir, last_index);
        let cur = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| WalError::io("open", &path, &e))?;
        Ok((
            SegmentedLog {
                dir,
                segment_bytes: segment_bytes.max(4096),
                fsync,
                cur_index: last_index,
                cur,
                cur_len: last_len,
                since_sync: 0,
            },
            records,
            info,
        ))
    }

    /// Append one framed record, rolling the segment first if the active one
    /// is over the roll size, then applying the fsync policy.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        if self.cur_len >= self.segment_bytes {
            self.roll()?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let path = segment_path(&self.dir, self.cur_index);
        self.cur
            .write_all(&frame)
            .map_err(|e| WalError::io("append", &path, &e))?;
        self.cur_len += frame.len() as u64;
        self.since_sync += 1;
        match self.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Fsync the active segment.
    pub fn sync(&mut self) -> Result<(), WalError> {
        let path = segment_path(&self.dir, self.cur_index);
        self.cur
            .sync_data()
            .map_err(|e| WalError::io("sync", &path, &e))?;
        self.since_sync = 0;
        Ok(())
    }

    fn roll(&mut self) -> Result<(), WalError> {
        self.sync()?;
        self.cur_index += 1;
        let path = segment_path(&self.dir, self.cur_index);
        self.cur = OpenOptions::new()
            .append(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| WalError::io("roll", &path, &e))?;
        self.cur_len = 0;
        Ok(())
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> u64 {
        self.cur_index + 1
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

// ---------------------------------------------------------------------------
// Typed record codecs
// ---------------------------------------------------------------------------
//
// Hand-rolled little-endian encodings (the workspace vendors no serde
// format). Decoders validate lengths and return `WalError` — a decode
// failure after a passing CRC means a format-version mismatch, not
// corruption, and recovery surfaces it instead of truncating.

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..len]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WalError::decode(self.path, "record shorter than declared fields"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WalError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, WalError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WalError::decode(self.path, "non-utf8 string field"))
    }
}

/// One message in a partition WAL: `(offset, key, enqueued_s, payload)`.
/// The offset is stored explicitly because compaction leaves *sparse* logs —
/// replay must restore each surviving record at its original offset, not
/// re-number densely.
pub fn encode_message(offset: u64, key: Option<u64>, enqueued_s: f64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 1 + 8 + 8 + payload.len());
    buf.extend_from_slice(&offset.to_le_bytes());
    match key {
        Some(k) => {
            buf.push(1);
            buf.extend_from_slice(&k.to_le_bytes());
        }
        None => buf.push(0),
    }
    buf.extend_from_slice(&enqueued_s.to_bits().to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Inverse of [`encode_message`].
pub fn decode_message(rec: &[u8]) -> Result<(u64, Option<u64>, f64, Vec<u8>), WalError> {
    let mut c = Cursor {
        buf: rec,
        pos: 0,
        path: "message",
    };
    let offset = c.u64()?;
    let key = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        _ => return Err(WalError::decode("message", "bad key flag")),
    };
    let enqueued_s = f64::from_bits(c.u64()?);
    let payload = rec[c.pos..].to_vec();
    Ok((offset, key, enqueued_s, payload))
}

/// Retention mode tag used in topic-meta records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetentionCode {
    /// Count-based retention with the given per-partition bound.
    Count(u64),
    /// Log compaction triggered past the given retained-record count.
    Compact(u64),
}

/// One topic-creation record in the meta WAL.
pub fn encode_topic_meta(name: &str, partitions: u32, retention: RetentionCode) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + name.len() + 4 + 9);
    put_str(&mut buf, name);
    buf.extend_from_slice(&partitions.to_le_bytes());
    match retention {
        RetentionCode::Count(n) => {
            buf.push(0);
            buf.extend_from_slice(&n.to_le_bytes());
        }
        RetentionCode::Compact(n) => {
            buf.push(1);
            buf.extend_from_slice(&n.to_le_bytes());
        }
    }
    buf
}

/// Inverse of [`encode_topic_meta`].
pub fn decode_topic_meta(rec: &[u8]) -> Result<(String, u32, RetentionCode), WalError> {
    let mut c = Cursor {
        buf: rec,
        pos: 0,
        path: "topic-meta",
    };
    let name = c.str()?;
    let partitions = c.u32()?;
    let retention = match c.u8()? {
        0 => RetentionCode::Count(c.u64()?),
        1 => RetentionCode::Compact(c.u64()?),
        _ => return Err(WalError::decode("topic-meta", "bad retention tag")),
    };
    Ok((name, partitions, retention))
}

/// One committed-offset record in the offsets WAL:
/// `(group, topic, partition, offset)`.
pub fn encode_commit(group: &str, topic: &str, partition: u32, offset: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + group.len() + topic.len() + 12);
    put_str(&mut buf, group);
    put_str(&mut buf, topic);
    buf.extend_from_slice(&partition.to_le_bytes());
    buf.extend_from_slice(&offset.to_le_bytes());
    buf
}

/// Inverse of [`encode_commit`].
pub fn decode_commit(rec: &[u8]) -> Result<(String, String, u32, u64), WalError> {
    let mut c = Cursor {
        buf: rec,
        pos: 0,
        path: "commit",
    };
    let group = c.str()?;
    let topic = c.str()?;
    let partition = c.u32()?;
    let offset = c.u64()?;
    Ok((group, topic, partition, offset))
}

// ---------------------------------------------------------------------------
// TempDir
// ---------------------------------------------------------------------------

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique temporary directory, removed (best-effort) on drop. Used by the
/// recovery tests and the RB-2 smoke run; names are derived from the process
/// id and a counter, never from the wall clock.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `<system tmp>/pilot-wal-<label>-<pid>-<seq>`.
    pub fn new(label: &str) -> Result<TempDir, WalError> {
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("pilot-wal-{label}-{}-{seq}", std::process::id()));
        if path.exists() {
            fs::remove_dir_all(&path).map_err(|e| WalError::io("clean", &path, &e))?;
        }
        fs::create_dir_all(&path).map_err(|e| WalError::io("create-dir", &path, &e))?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let tmp = TempDir::new("roundtrip").unwrap();
        {
            let (mut log, recovered, info) =
                SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::Never).unwrap();
            assert!(recovered.is_empty());
            assert_eq!(info, RecoveryInfo::default());
            for i in 0..100u32 {
                log.append(&i.to_le_bytes()).unwrap();
            }
        }
        let (_log, recovered, info) =
            SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 100);
        assert_eq!(info.records, 100);
        assert_eq!(info.truncated_bytes, 0);
        for (i, rec) in recovered.iter().enumerate() {
            assert_eq!(rec.as_slice(), (i as u32).to_le_bytes());
        }
    }

    #[test]
    fn segments_roll_at_the_size_bound() {
        let tmp = TempDir::new("roll").unwrap();
        let (mut log, _, _) = SegmentedLog::open(tmp.path(), 4096, FsyncPolicy::Never).unwrap();
        // 4 KiB roll bound, ~1 KiB payloads: several segments appear.
        for _ in 0..16 {
            log.append(&[7u8; 1000]).unwrap();
        }
        assert!(log.segment_count() >= 3, "got {}", log.segment_count());
        drop(log);
        let (_, recovered, _) = SegmentedLog::open(tmp.path(), 4096, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 16, "recovery spans all segments in order");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let tmp = TempDir::new("torn").unwrap();
        {
            let (mut log, _, _) =
                SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::Always).unwrap();
            for i in 0..10u32 {
                log.append(&i.to_le_bytes()).unwrap();
            }
        }
        // Chop the last frame mid-payload: 10 frames of 12 bytes; cut 5.
        let path = segment_path(tmp.path(), 0);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(12 * 10 - 5).unwrap();
        drop(f);
        let (_, recovered, info) =
            SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 9, "torn record dropped");
        assert_eq!(info.truncated_bytes, 7, "partial frame truncated");
        assert_eq!(fs::metadata(&path).unwrap().len(), 12 * 9);
    }

    #[test]
    fn corrupt_record_truncates_and_drops_later_segments() {
        let tmp = TempDir::new("corrupt").unwrap();
        {
            let (mut log, _, _) = SegmentedLog::open(tmp.path(), 4096, FsyncPolicy::Never).unwrap();
            for _ in 0..16 {
                log.append(&[9u8; 1000]).unwrap();
            }
            assert!(log.segment_count() >= 3);
        }
        // Flip a payload byte in the *first* segment: everything after the
        // corrupt record — including whole later segments — must go.
        let path = segment_path(tmp.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let frame = FRAME_HEADER + 1000;
        bytes[2 * frame + FRAME_HEADER + 17] ^= 0xFF; // third record's payload
        fs::write(&path, &bytes).unwrap();
        let (_, recovered, info) =
            SegmentedLog::open(tmp.path(), 4096, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 2, "only the records before the corruption");
        assert!(info.dropped_segments >= 1, "later segments deleted");
        // Re-opening again is clean and the log is appendable.
        let (mut log, recovered, info) =
            SegmentedLog::open(tmp.path(), 4096, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(info.truncated_bytes, 0, "second recovery is clean");
        log.append(b"after").unwrap();
    }

    #[test]
    fn appends_after_recovery_continue_the_log() {
        let tmp = TempDir::new("resume").unwrap();
        {
            let (mut log, _, _) =
                SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::EveryN(4)).unwrap();
            for i in 0..5u32 {
                log.append(&i.to_le_bytes()).unwrap();
            }
        }
        {
            let (mut log, recovered, _) =
                SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::Never).unwrap();
            assert_eq!(recovered.len(), 5);
            for i in 5..8u32 {
                log.append(&i.to_le_bytes()).unwrap();
            }
        }
        let (_, recovered, _) =
            SegmentedLog::open(tmp.path(), 1 << 20, FsyncPolicy::Never).unwrap();
        let vals: Vec<u32> = recovered
            .iter()
            .map(|r| u32::from_le_bytes([r[0], r[1], r[2], r[3]]))
            .collect();
        assert_eq!(vals, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn message_codec_roundtrip() {
        for (off, key, s, payload) in [
            (0u64, None, 0.0, vec![]),
            (7, Some(42), 1.5, vec![1, 2, 3]),
            (u64::MAX - 1, Some(u64::MAX), -7.25, vec![0xFF; 300]),
        ] {
            let enc = encode_message(off, key, s, &payload);
            let (o2, k2, s2, p2) = decode_message(&enc).unwrap();
            assert_eq!(o2, off);
            assert_eq!(k2, key);
            assert_eq!(s2, s);
            assert_eq!(p2, payload);
        }
        let bad_flag = encode_message(0, None, 0.0, &[]);
        let mut bad = bad_flag.clone();
        bad[8] = 2;
        assert!(decode_message(&bad).is_err(), "bad key flag");
        assert!(decode_message(&bad_flag[..9]).is_err(), "short record");
    }

    #[test]
    fn meta_and_commit_codec_roundtrip() {
        let enc = encode_topic_meta("frames", 8, RetentionCode::Count(1000));
        assert_eq!(
            decode_topic_meta(&enc).unwrap(),
            ("frames".to_string(), 8, RetentionCode::Count(1000))
        );
        let enc = encode_topic_meta("kv", 2, RetentionCode::Compact(64));
        assert_eq!(
            decode_topic_meta(&enc).unwrap(),
            ("kv".to_string(), 2, RetentionCode::Compact(64))
        );
        let enc = encode_commit("g", "frames", 3, 99);
        assert_eq!(
            decode_commit(&enc).unwrap(),
            ("g".to_string(), "frames".to_string(), 3, 99)
        );
        assert!(decode_commit(&enc[..4]).is_err(), "short record");
    }

    #[test]
    fn tempdirs_are_unique_and_cleaned() {
        let a = TempDir::new("uniq").unwrap();
        let b = TempDir::new("uniq").unwrap();
        assert_ne!(a.path(), b.path());
        let pa = a.path().to_path_buf();
        drop(a);
        assert!(!pa.exists(), "dropped tempdir is removed");
        assert!(b.path().exists());
    }
}
