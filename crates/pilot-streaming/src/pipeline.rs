//! Streaming jobs as pilot compute units: producers feed a topic, processors
//! consume through a group, every message's end-to-end latency is measured.

use crate::broker::{Broker, Message};
use pilot_core::describe::UnitDescription;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_sim::{percentile_sorted, summarize, Summary};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one streaming job.
#[derive(Clone, Debug)]
pub struct StreamJobConfig {
    /// Topic to stream through (created by the job).
    pub topic: String,
    /// Topic partitions — the parallelism ceiling for processors.
    pub partitions: usize,
    /// Producer units.
    pub producers: usize,
    /// Processor units (consumer-group members).
    pub processors: usize,
    /// Messages each producer emits.
    pub messages_per_producer: u64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Optional pacing: messages/second per producer (None = full speed).
    pub rate_per_producer: Option<f64>,
    /// Max records per poll.
    pub batch: usize,
    /// Records per `produce_batch` call on the full-speed producer path
    /// (paced producers always emit one record at a time).
    pub producer_batch: usize,
}

impl StreamJobConfig {
    /// Sensible defaults for a small job.
    pub fn new(topic: &str, partitions: usize, producers: usize, processors: usize) -> Self {
        StreamJobConfig {
            topic: topic.to_string(),
            partitions,
            producers,
            processors,
            messages_per_producer: 1000,
            payload_bytes: 256,
            rate_per_producer: None,
            batch: 64,
            producer_batch: 64,
        }
    }

    /// Total messages the job will emit.
    pub fn total_messages(&self) -> u64 {
        self.producers as u64 * self.messages_per_producer
    }
}

/// Measurements of a finished streaming job.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Messages produced.
    pub produced: u64,
    /// Messages consumed (== produced when the job drains fully).
    pub consumed: u64,
    /// Wall time from first produce to last consume, seconds.
    pub elapsed_s: f64,
    /// Consumed-message throughput, messages/second.
    pub throughput: f64,
    /// End-to-end latency summary (seconds).
    pub latency: Summary,
    /// Latency percentiles (p50, p95, p99), seconds.
    pub latency_p50: f64,
    /// 95th percentile.
    pub latency_p95: f64,
    /// 99th percentile.
    pub latency_p99: f64,
}

/// Run a streaming job on an active pilot service. The pilots must offer at
/// least `producers + processors` free cores, or the job deadlocks by
/// construction (processors wait for producers that never get a slot).
///
/// `process` runs once per message on the consuming unit (the "operator");
/// its cost is part of the measured pipeline.
pub fn run_stream_job(
    svc: &ThreadPilotService,
    broker: &Arc<Broker>,
    config: &StreamJobConfig,
    process: Arc<dyn Fn(&Message) + Send + Sync>,
) -> StreamReport {
    broker
        .create_topic(&config.topic, config.partitions, usize::MAX / 2)
        // lint: allow(panic, reason = "run_stream_job owns the broker it is handed and derives a unique topic name per job")
        .expect("fresh topic per job");
    let group = format!("{}-group", config.topic);
    // Join all processors before any unit starts so assignment is stable.
    for c in 0..config.processors {
        broker
            .join_group(&group, &config.topic, &format!("proc-{c}"))
            // lint: allow(panic, reason = "the topic was created a few lines up on the same broker")
            .expect("topic exists");
    }
    let producers_done = Arc::new(AtomicBool::new(false));
    let consumed_total = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    // Processors first; they park on the broker's wakeup condvar until data
    // arrives (idle processors cost ~0 CPU instead of busy-polling).
    let processor_units: Vec<_> = (0..config.processors)
        .map(|c| {
            let broker = Arc::clone(broker);
            let group = group.clone();
            let done = Arc::clone(&producers_done);
            let consumed = Arc::clone(&consumed_total);
            let process = Arc::clone(&process);
            let batch = config.batch;
            svc.submit_unit(
                UnitDescription::new(1).tagged("processor"),
                kernel_fn(move |_| {
                    let me = format!("proc-{c}");
                    let mut sub = broker
                        .subscribe(&group, &me)
                        // lint: allow(panic, reason = "every processor joined the group before any unit was submitted")
                        .expect("member of group");
                    let mut buf: Vec<Message> = Vec::with_capacity(batch);
                    let mut latencies: Vec<f64> = Vec::new();
                    loop {
                        // Sample the done flag *before* polling: every append
                        // happens-before done is set, so done-then-empty-poll
                        // proves the assignment is drained. (The reverse order
                        // could miss records appended between the poll and the
                        // flag read.) Same discipline for the append sequence:
                        // sampling it before the poll means an append racing
                        // the empty poll makes wait_for_data return
                        // immediately (no lost wakeup).
                        let was_done = done.load(Ordering::Acquire);
                        let seq = broker.data_seq();
                        let n = broker
                            .poll_into(&mut sub, batch, &mut buf)
                            // lint: allow(panic, reason = "every processor joined the group before any unit was submitted")
                            .expect("member of group");
                        if n == 0 {
                            // A closed broker (node killed mid-stream) never
                            // gets more data: exit instead of riding the park
                            // timeout forever. Producers may have emitted less
                            // than planned, so "drained" is an empty poll, not
                            // a count match.
                            if was_done || broker.is_closed() {
                                break;
                            }
                            broker.wait_for_data(seq, Duration::from_millis(10));
                            continue;
                        }
                        let now = broker.now_s();
                        for m in &buf {
                            latencies.push(now - m.enqueued_s);
                            process(m);
                        }
                        consumed.fetch_add(n as u64, Ordering::AcqRel);
                    }
                    Ok(TaskOutput::of(latencies))
                }),
            )
        })
        .collect();

    // Producers.
    let producer_units: Vec<_> = (0..config.producers)
        .map(|i| {
            let broker = Arc::clone(broker);
            let topic = config.topic.clone();
            let n = config.messages_per_producer;
            let payload = Arc::new(vec![i as u8; config.payload_bytes]);
            let rate = config.rate_per_producer;
            let producer_batch = config.producer_batch.max(1) as u64;
            svc.submit_unit(
                UnitDescription::new(1).tagged("producer"),
                kernel_fn(move |_| {
                    // Either path stops producing the moment the broker
                    // rejects an append (node killed mid-stream) and reports
                    // how much actually landed — the job's produced count
                    // stays truthful under faults.
                    let mut sent = 0u64;
                    if let Some(r) = rate {
                        // Paced path: one record at a time, each due at k/r
                        // seconds (batching would quantize the pacing).
                        let start = Instant::now();
                        for k in 0..n {
                            let due = k as f64 / r;
                            while start.elapsed().as_secs_f64() < due {
                                std::hint::spin_loop();
                            }
                            if broker.produce(&topic, None, Arc::clone(&payload)).is_err() {
                                break;
                            }
                            sent += 1;
                        }
                    } else {
                        // Full-speed path: amortize lock + timestamp cost
                        // over producer_batch records per broker call.
                        while sent < n {
                            let chunk = producer_batch.min(n - sent);
                            let appended = broker.produce_batch(
                                &topic,
                                (0..chunk).map(|_| (None, Arc::clone(&payload))),
                            );
                            if appended.is_err() {
                                break;
                            }
                            sent += chunk;
                        }
                    }
                    Ok(TaskOutput::of(sent))
                }),
            )
        })
        .collect();

    let mut produced = 0u64;
    for u in producer_units {
        // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
        let out = svc.wait_unit(u).expect("unit issued by this service");
        if out.state == UnitState::Done {
            produced += out
                .output
                .and_then(|r| r.ok())
                .and_then(|o| o.downcast::<u64>().ok())
                .unwrap_or(0);
        }
    }
    producers_done.store(true, Ordering::Release);
    // Parked processors re-check their exit condition now rather than riding
    // out the park timeout.
    broker.wake_all();

    let mut latencies: Vec<f64> = Vec::new();
    for u in processor_units {
        // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
        let out = svc.wait_unit(u).expect("unit issued by this service");
        if let Some(Ok(o)) = out.output {
            // Probe without consuming: a processor that returned something
            // else keeps its output intact for the error path below.
            if let Some(ls) = o.downcast_ref::<Vec<f64>>() {
                latencies.extend_from_slice(ls);
            }
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let consumed = consumed_total.load(Ordering::Acquire);
    StreamReport {
        produced,
        consumed,
        elapsed_s,
        throughput: if elapsed_s > 0.0 {
            consumed as f64 / elapsed_s
        } else {
            0.0
        },
        latency: summarize(&latencies),
        latency_p50: percentile_sorted(&latencies, 50.0),
        latency_p95: percentile_sorted(&latencies, 95.0),
        latency_p99: percentile_sorted(&latencies, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::describe::PilotDescription;
    use pilot_core::scheduler::FirstFitScheduler;
    use pilot_sim::SimDuration;

    fn svc(cores: u32) -> ThreadPilotService {
        let s = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
        assert!(s.wait_pilot_active(p));
        s
    }

    #[test]
    fn job_drains_fully_and_measures_latency() {
        let s = svc(4);
        let broker = Arc::new(Broker::new());
        let mut cfg = StreamJobConfig::new("frames", 4, 1, 2);
        cfg.messages_per_producer = 2000;
        let report = run_stream_job(&s, &broker, &cfg, Arc::new(|_m| {}));
        assert_eq!(report.produced, 2000);
        assert_eq!(report.consumed, 2000);
        assert_eq!(report.latency.n, 2000);
        assert!(
            report.throughput > 100.0,
            "throughput {}",
            report.throughput
        );
        assert!(report.latency_p50 <= report.latency_p95);
        assert!(report.latency_p95 <= report.latency_p99);
        s.shutdown();
    }

    #[test]
    fn operator_cost_is_part_of_the_pipeline() {
        let s = svc(4);
        let broker = Arc::new(Broker::new());
        let mut cfg = StreamJobConfig::new("slowop", 2, 1, 1);
        cfg.messages_per_producer = 50;
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let report = run_stream_job(
            &s,
            &broker,
            &cfg,
            Arc::new(move |m| {
                assert_eq!(m.payload.len(), 256);
                c2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(report.consumed, 50);
        s.shutdown();
    }

    #[test]
    fn paced_producer_bounds_throughput() {
        let s = svc(3);
        let broker = Arc::new(Broker::new());
        let mut cfg = StreamJobConfig::new("paced", 2, 1, 1);
        cfg.messages_per_producer = 200;
        cfg.rate_per_producer = Some(1000.0); // 200 msgs at 1 kHz ⇒ ≥ 0.2 s
        let report = run_stream_job(&s, &broker, &cfg, Arc::new(|_| {}));
        assert!(report.elapsed_s >= 0.19, "elapsed {}", report.elapsed_s);
        assert!(
            report.throughput <= 1300.0,
            "pacing should cap throughput, got {}",
            report.throughput
        );
        s.shutdown();
    }

    #[test]
    fn units_exit_cleanly_when_broker_is_killed_mid_stream() {
        let s = svc(5);
        let broker = Arc::new(Broker::new());
        let mut cfg = StreamJobConfig::new("killed", 4, 2, 2);
        // Paced so slowly the job can only finish because of the kill:
        // 100k msgs at 2 kHz per producer is ~50 s unkilled.
        cfg.messages_per_producer = 100_000;
        cfg.rate_per_producer = Some(2000.0);
        let killer = {
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                broker.close();
            })
        };
        // The real assertion is that this returns at all: producers stop on
        // the first rejected append, parked processors are woken by close()
        // and exit on the empty poll instead of waiting for a count that
        // will never be reached.
        let report = run_stream_job(&s, &broker, &cfg, Arc::new(|_| {}));
        killer.join().expect("killer thread");
        assert!(
            report.produced < cfg.total_messages(),
            "kill interrupted producers, yet produced = {}",
            report.produced
        );
        assert!(report.consumed <= report.produced);
        assert_eq!(report.latency.n, report.consumed);
        s.shutdown();
    }

    #[test]
    fn multiple_producers_sum_up() {
        let s = svc(6);
        let broker = Arc::new(Broker::new());
        let mut cfg = StreamJobConfig::new("multi", 4, 3, 2);
        cfg.messages_per_producer = 500;
        let report = run_stream_job(&s, &broker, &cfg, Arc::new(|_| {}));
        assert_eq!(report.produced, 1500);
        assert_eq!(report.consumed, 1500);
        s.shutdown();
    }
}
