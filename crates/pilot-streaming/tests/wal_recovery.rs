//! Integration tests of the durable broker across full restart cycles:
//! produce / consume / reopen chains, exactly-once resume over generations,
//! compaction across restarts, and fsync policies.

use pilot_streaming::wal::TempDir;
use pilot_streaming::{Broker, FsyncPolicy, Retention, WalConfig};
use std::collections::HashSet;
use std::sync::Arc;

fn payload(gen: u64, i: u64) -> Arc<Vec<u8>> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&gen.to_le_bytes());
    b.extend_from_slice(&i.to_le_bytes());
    Arc::new(b)
}

fn decode(p: &[u8]) -> (u64, u64) {
    let mut g = [0u8; 8];
    let mut i = [0u8; 8];
    g.copy_from_slice(&p[..8]);
    i.copy_from_slice(&p[8..16]);
    (u64::from_le_bytes(g), u64::from_le_bytes(i))
}

/// Three broker generations over one WAL directory: each produces a batch,
/// consumes part of it, and "crashes" (drops). Every record is delivered
/// exactly once across the whole chain — committed offsets persist, replay
/// resumes precisely where the previous generation stopped.
#[test]
fn exactly_once_across_three_restart_generations() {
    let dir = TempDir::new("gen-chain").unwrap();
    let cfg = WalConfig::new(dir.path())
        .with_segment_bytes(4096)
        .with_fsync(FsyncPolicy::EveryN(8));
    let mut seen: Vec<(u64, u64)> = Vec::new();

    for gen in 0..3u64 {
        let broker = Broker::open(cfg.clone()).unwrap();
        if gen == 0 {
            broker
                .create_topic_with("t", 3, Retention::Count(1_000_000))
                .unwrap();
        }
        broker.join_group("g", "t", "c0").unwrap();
        broker
            .produce_batch("t", (0..200u64).map(|i| (Some(i % 17), payload(gen, i))))
            .unwrap();
        // Consume only part of what exists, then crash.
        let mut sub = broker.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        let mut got = 0;
        while got < 120 {
            let n = broker.poll_into(&mut sub, 30, &mut buf).unwrap();
            assert!(n > 0, "backlog must not run dry mid-generation");
            seen.extend(buf.iter().map(|m| decode(&m.payload)));
            got += n;
        }
        drop(sub);
        drop(broker);
    }

    // Final generation drains everything left behind by the partial reads.
    let broker = Broker::open(cfg).unwrap();
    broker.join_group("g", "t", "c0").unwrap();
    let mut sub = broker.subscribe("g", "c0").unwrap();
    let mut buf = Vec::new();
    loop {
        let n = broker.poll_into(&mut sub, usize::MAX, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        seen.extend(buf.iter().map(|m| decode(&m.payload)));
    }
    assert_eq!(seen.len(), 600, "no loss, no redelivery across the chain");
    let unique: HashSet<(u64, u64)> = seen.iter().copied().collect();
    assert_eq!(unique.len(), 600);
    for gen in 0..3u64 {
        for i in 0..200u64 {
            assert!(unique.contains(&(gen, i)), "missing ({gen}, {i})");
        }
    }
    assert_eq!(broker.group_stats("g").unwrap().committed, 600);
}

/// A compacted topic keeps only the latest record per key through a restart,
/// and keeps compacting correctly when appends continue on the recovered log.
#[test]
fn compacted_topic_survives_restart_and_keeps_compacting() {
    let dir = TempDir::new("compact-restart").unwrap();
    let cfg = WalConfig::new(dir.path()).with_fsync(FsyncPolicy::Never);
    {
        let broker = Broker::open(cfg.clone()).unwrap();
        broker
            .create_topic_with("kv", 1, Retention::Compact { trigger: 8 })
            .unwrap();
        // 10 keys, 30 writes each; only the last write per key must matter.
        for round in 0..30u64 {
            broker
                .produce_batch("kv", (0..10u64).map(|k| (Some(k), payload(round, k))))
                .unwrap();
        }
    }
    let broker = Broker::open(cfg).unwrap();
    let recovered = broker.fetch("kv", 0, 0, usize::MAX).unwrap();
    // Compaction is threshold-driven, so a few pre-compaction survivors are
    // legal; what must hold is that every key's *latest* write is present
    // and the log stayed near the compaction floor instead of holding all
    // 300 appends.
    let mut latest: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for m in &recovered {
        let (round, k) = decode(&m.payload);
        assert_eq!(Some(k), m.key);
        let e = latest.entry(k).or_insert(0);
        *e = (*e).max(round);
    }
    assert_eq!(latest.len(), 10, "all keys represented");
    for (k, round) in &latest {
        assert_eq!(*round, 29, "key {k} lost its latest write");
    }
    assert!(
        recovered.len() < 40,
        "recovered log holds ~latest-per-key, not history, len {}",
        recovered.len()
    );
    // The recovered log continues to compact: overwrite every key again.
    for round in 30..60u64 {
        broker
            .produce_batch("kv", (0..10u64).map(|k| (Some(k), payload(round, k))))
            .unwrap();
    }
    let after = broker.fetch("kv", 0, 0, usize::MAX).unwrap();
    let live: Vec<_> = after
        .iter()
        .filter(|m| decode(&m.payload).0 == 59)
        .collect();
    assert_eq!(live.len(), 10, "latest round fully retained");
    assert!(
        after.len() < 40,
        "compaction kept running post-restart, len {}",
        after.len()
    );
}

/// Restarting with fsync `Always` and with `Never` both recover cleanly (the
/// policies trade durability window for speed, not correctness on a clean
/// shutdown), and the recovery info reports an untorn log.
#[test]
fn fsync_policies_recover_clean_logs() {
    for (label, fsync) in [
        ("always", FsyncPolicy::Always),
        ("never", FsyncPolicy::Never),
        ("every", FsyncPolicy::EveryN(3)),
    ] {
        let dir = TempDir::new(&format!("fsync-{label}")).unwrap();
        let cfg = WalConfig::new(dir.path()).with_fsync(fsync);
        {
            let broker = Broker::open(cfg.clone()).unwrap();
            broker
                .create_topic_with("t", 2, Retention::Count(10_000))
                .unwrap();
            broker
                .produce_batch("t", (0..50u64).map(|i| (None, payload(0, i))))
                .unwrap();
        }
        let broker = Broker::open(cfg).unwrap();
        let info = broker.recovery_info();
        assert_eq!(info.truncated_bytes, 0, "{label}: clean log, nothing torn");
        assert_eq!(info.dropped_segments, 0, "{label}");
        let total: u64 = (0..2).map(|p| broker.high_watermark("t", p).unwrap()).sum();
        assert_eq!(total, 50, "{label}: all records recovered");
    }
}

/// Count-based retention state (trimmed prefix) survives restart: the
/// recovered partition starts where the live one did, and a group that was
/// parked before the trim still sees its loss counted after recovery.
#[test]
fn retention_trim_and_loss_accounting_survive_restart() {
    let dir = TempDir::new("trim-restart").unwrap();
    let cfg = WalConfig::new(dir.path()).with_fsync(FsyncPolicy::Never);
    {
        let broker = Broker::open(cfg.clone()).unwrap();
        broker
            .create_topic_with("t", 1, Retention::Count(5))
            .unwrap();
        broker.join_group("g", "t", "c0").unwrap();
        // 40 records through a 5-record window: start offset is 35 live...
        broker
            .produce_batch("t", (0..40u64).map(|i| (None, payload(0, i))))
            .unwrap();
        assert_eq!(broker.start_offset("t", 0).unwrap(), 35);
    }
    // ...and still 35 after replay re-applies the same retention decisions.
    let broker = Broker::open(cfg).unwrap();
    assert_eq!(broker.start_offset("t", 0).unwrap(), 35);
    assert_eq!(broker.high_watermark("t", 0).unwrap(), 40);
    broker.join_group("g", "t", "c0").unwrap();
    let mut sub = broker.subscribe("g", "c0").unwrap();
    let mut buf = Vec::new();
    let n = broker.poll_into(&mut sub, usize::MAX, &mut buf).unwrap();
    assert_eq!(n, 5, "only the retained window is deliverable");
    let stats = broker.group_stats("g").unwrap();
    assert_eq!(
        stats.records_lost, 35,
        "the trimmed gap is counted, not hidden"
    );
    assert_eq!(stats.committed, 40);
}
