//! Property test: concurrent batched producers and a polling consumer group
//! deliver every record exactly once — no loss, no redelivery — across
//! 1–8 threads, arbitrary partition counts, and arbitrary batch sizes.
//!
//! Membership is fixed before production starts (all consumers join first):
//! like Kafka, a mid-stream rebalance downgrades the group to at-least-once,
//! so exactly-once accounting is only claimed under stable membership (see
//! DESIGN.md "Data plane").

use pilot_streaming::wal::TempDir;
use pilot_streaming::{Broker, FsyncPolicy, Retention, WalConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Payload encoding (producer id, sequence number) so every record is
/// globally unique and set equality proves exactly-once.
fn encode(producer: u64, seq: u64) -> Arc<Vec<u8>> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&producer.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    Arc::new(b)
}

fn decode(payload: &[u8]) -> (u64, u64) {
    let mut p = [0u8; 8];
    let mut s = [0u8; 8];
    p.copy_from_slice(&payload[..8]);
    s.copy_from_slice(&payload[8..16]);
    (u64::from_le_bytes(p), u64::from_le_bytes(s))
}

proptest! {
    // Each case spawns real threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_batched_produce_and_group_poll_is_exactly_once(
        producers in 1usize..5,
        consumers in 1usize..4,
        partitions in 1usize..9,
        per_producer in 50u64..400,
        batch in 1usize..100,
        keyed in proptest::bool::ANY,
    ) {
        let broker = Arc::new(Broker::new());
        broker.create_topic("t", partitions, 1_000_000).unwrap();
        // All members join before the first record: stable membership is the
        // exactly-once precondition.
        for c in 0..consumers {
            broker.join_group("g", "t", &format!("c{c}")).unwrap();
        }
        let done = Arc::new(AtomicBool::new(false));
        let expected_total = producers as u64 * per_producer;

        let producer_handles: Vec<_> = (0..producers as u64)
            .map(|p| {
                let broker = Arc::clone(&broker);
                std::thread::spawn(move || {
                    let mut seq = 0u64;
                    while seq < per_producer {
                        let chunk = (batch as u64).min(per_producer - seq);
                        let records = (seq..seq + chunk).map(|s| {
                            // Keyed records exercise the hash route, unkeyed
                            // ones the shared round-robin cursor.
                            let key = keyed.then_some(p * 1_000_000 + s);
                            (key, encode(p, s))
                        });
                        broker.produce_batch("t", records).unwrap();
                        seq += chunk;
                    }
                })
            })
            .collect();

        let consumer_handles: Vec<_> = (0..consumers)
            .map(|c| {
                let broker = Arc::clone(&broker);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let me = format!("c{c}");
                    let mut sub = broker.subscribe("g", &me).unwrap();
                    let mut buf = Vec::new();
                    let mut got: Vec<(u64, u64)> = Vec::new();
                    loop {
                        let seq = broker.data_seq();
                        let n = broker.poll_into(&mut sub, 64, &mut buf).unwrap();
                        if n == 0 {
                            if done.load(Ordering::Acquire) {
                                // One final sweep after the done flag: a
                                // racing append may have landed post-poll.
                                let n = broker.poll_into(&mut sub, usize::MAX, &mut buf).unwrap();
                                if n == 0 {
                                    break;
                                }
                            } else {
                                broker.wait_for_data(seq, Duration::from_millis(5));
                                continue;
                            }
                        }
                        got.extend(buf.iter().map(|m| decode(&m.payload)));
                    }
                    got
                })
            })
            .collect();

        for h in producer_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        broker.wake_all();

        let mut seen: Vec<(u64, u64)> = Vec::new();
        for h in consumer_handles {
            seen.extend(h.join().unwrap());
        }
        // Exactly-once: every record delivered (no loss) and no duplicates
        // (a redelivery would collapse in the set but not in the Vec).
        prop_assert_eq!(seen.len() as u64, expected_total, "no loss, no redelivery");
        let unique: HashSet<(u64, u64)> = seen.iter().copied().collect();
        prop_assert_eq!(unique.len() as u64, expected_total, "all records distinct");
        for p in 0..producers as u64 {
            for s in 0..per_producer {
                prop_assert!(unique.contains(&(p, s)));
            }
        }
        // Group accounting agrees with what consumers saw.
        prop_assert_eq!(broker.group_consumed("g"), expected_total);
    }
}

// Ops for the crash workload are raw `(kind, n, max, keyed)` tuples (the
// vendored proptest shim has no enum strategies): `kind` selects the op —
// 0 = produce one record, 1 = produce a batch of `n`, 2 = poll up to `max`
// through the group (auto-commits), 3 = explicitly re-commit every
// partition at its current committed offset (exercises the commit path and
// its WAL record). `keyed` flips hash routing vs the round-robin cursor.

/// Every `.log` file under the broker's WAL root, in a stable order.
fn wal_files(root: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "log") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of produce / produce_batch / poll_into / commit,
    /// followed by a crash that tears an arbitrary WAL file at an arbitrary
    /// byte boundary, recovers to a *prefix* of the pre-crash state, clamps
    /// committed offsets into the recovered logs, and resumes delivery
    /// exactly once from the recovered committed offsets.
    #[test]
    fn crash_at_arbitrary_wal_byte_boundary_recovers_prefix_and_resumes_exactly_once(
        ops in proptest::collection::vec((0usize..4, 1u8..16, 1usize..32, proptest::bool::ANY), 5..60),
        partitions in 1usize..5,
        cut_frac in 0.0f64..1.0,
        file_pick in 0usize..1024,
    ) {
        let dir = TempDir::new("crash-prop").unwrap();
        let cfg = WalConfig::new(dir.path())
            // Small segments so multi-segment logs (and mid-chain cuts) occur.
            .with_segment_bytes(4096)
            .with_fsync(FsyncPolicy::Never);
        let broker = Broker::open(cfg.clone()).unwrap();
        broker.create_topic_with("t", partitions, Retention::Count(1_000_000)).unwrap();
        broker.join_group("g", "t", "c0").unwrap();
        let mut sub = broker.subscribe("g", "c0").unwrap();
        let mut buf = Vec::new();
        let mut seq = 0u64;
        for &(kind, n, max, keyed) in &ops {
            match kind {
                0 => {
                    let key = keyed.then_some(seq);
                    broker.produce("t", key, encode(0, seq)).unwrap();
                    seq += 1;
                }
                1 => {
                    let records: Vec<_> = (0..n as u64)
                        .map(|i| (keyed.then_some(seq + i), encode(0, seq + i)))
                        .collect();
                    broker.produce_batch("t", records).unwrap();
                    seq += n as u64;
                }
                2 => {
                    broker.poll_into(&mut sub, max, &mut buf).unwrap();
                }
                _ => {
                    let stats = broker.group_stats("g").unwrap();
                    for (p, &off) in stats.offsets.iter().enumerate() {
                        broker.commit("g", p, off).unwrap();
                    }
                }
            }
        }

        // Pre-crash reference, straight from the live broker.
        let pre_records: Vec<Vec<(u64, Vec<u8>)>> = (0..partitions)
            .map(|p| {
                broker.fetch("t", p, 0, usize::MAX).unwrap()
                    .iter()
                    .map(|m| (m.offset, m.payload.as_ref().clone()))
                    .collect()
            })
            .collect();
        let pre_offsets = broker.group_stats("g").unwrap().offsets;

        // Crash: drop the broker, then tear one WAL file at an arbitrary
        // byte boundary (any file — a partition segment, the topic metadata
        // log, or the committed-offsets log).
        drop(sub);
        drop(broker);
        let files = wal_files(dir.path());
        prop_assert!(!files.is_empty(), "a durable broker always has WAL files");
        let victim = &files[file_pick % files.len()];
        let len = std::fs::metadata(victim).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(victim).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        // Recovery must always succeed, whatever was torn. A torn
        // topic-metadata log may lose the topic entirely — that is an
        // empty-prefix recovery with nothing further to check.
        let broker = Broker::open(cfg).unwrap();
        if broker.partitions("t").is_ok() {

        // Prefix consistency: every recovered partition is a prefix of its
        // pre-crash content, record for record.
        let mut recovered: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
        for (p, pre) in pre_records.iter().enumerate() {
            let rec: Vec<(u64, Vec<u8>)> = broker.fetch("t", p, 0, usize::MAX).unwrap()
                .iter()
                .map(|m| (m.offset, m.payload.as_ref().clone()))
                .collect();
            prop_assert!(rec.len() <= pre.len(), "partition {} grew", p);
            prop_assert_eq!(&rec[..], &pre[..rec.len()], "partition {} is not a prefix", p);
            recovered.push(rec);
        }

        // Committed offsets: never beyond what was committed pre-crash, and
        // always clamped inside the recovered log.
        broker.join_group("g", "t", "c0").unwrap();
        let rec_offsets = broker.group_stats("g").unwrap().offsets;
        for p in 0..partitions {
            let hw = broker.high_watermark("t", p).unwrap();
            prop_assert!(rec_offsets[p] <= pre_offsets[p], "partition {} commit ran ahead", p);
            prop_assert!(rec_offsets[p] <= hw, "partition {} commit beyond recovered log", p);
        }

        // Exactly-once resume: draining the group after restart delivers
        // precisely the recovered records at or past each partition's
        // recovered committed offset — each exactly once.
        let expected: Vec<Vec<u8>> = (0..partitions)
            .flat_map(|p| {
                recovered[p]
                    .iter()
                    .filter(|(off, _)| *off >= rec_offsets[p])
                    .map(|(_, payload)| payload.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut sub = broker.subscribe("g", "c0").unwrap();
        let mut got: Vec<Vec<u8>> = Vec::new();
        loop {
            let n = broker.poll_into(&mut sub, usize::MAX, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend(buf.iter().map(|m| m.payload.as_ref().clone()));
        }
        prop_assert_eq!(got.len(), expected.len(), "resume delivered a different count");
        let got_set: HashSet<&Vec<u8>> = got.iter().collect();
        prop_assert_eq!(got_set.len(), got.len(), "resume redelivered a record");
        let expected_set: HashSet<&Vec<u8>> = expected.iter().collect();
        prop_assert_eq!(got_set, expected_set, "resume delivered the wrong records");

        } // if the topic survived recovery
    }
}
