//! Property test: concurrent batched producers and a polling consumer group
//! deliver every record exactly once — no loss, no redelivery — across
//! 1–8 threads, arbitrary partition counts, and arbitrary batch sizes.
//!
//! Membership is fixed before production starts (all consumers join first):
//! like Kafka, a mid-stream rebalance downgrades the group to at-least-once,
//! so exactly-once accounting is only claimed under stable membership (see
//! DESIGN.md "Data plane").

use pilot_streaming::Broker;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Payload encoding (producer id, sequence number) so every record is
/// globally unique and set equality proves exactly-once.
fn encode(producer: u64, seq: u64) -> Arc<Vec<u8>> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&producer.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    Arc::new(b)
}

fn decode(payload: &[u8]) -> (u64, u64) {
    let mut p = [0u8; 8];
    let mut s = [0u8; 8];
    p.copy_from_slice(&payload[..8]);
    s.copy_from_slice(&payload[8..16]);
    (u64::from_le_bytes(p), u64::from_le_bytes(s))
}

proptest! {
    // Each case spawns real threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_batched_produce_and_group_poll_is_exactly_once(
        producers in 1usize..5,
        consumers in 1usize..4,
        partitions in 1usize..9,
        per_producer in 50u64..400,
        batch in 1usize..100,
        keyed in proptest::bool::ANY,
    ) {
        let broker = Arc::new(Broker::new());
        broker.create_topic("t", partitions, 1_000_000).unwrap();
        // All members join before the first record: stable membership is the
        // exactly-once precondition.
        for c in 0..consumers {
            broker.join_group("g", "t", &format!("c{c}")).unwrap();
        }
        let done = Arc::new(AtomicBool::new(false));
        let expected_total = producers as u64 * per_producer;

        let producer_handles: Vec<_> = (0..producers as u64)
            .map(|p| {
                let broker = Arc::clone(&broker);
                std::thread::spawn(move || {
                    let mut seq = 0u64;
                    while seq < per_producer {
                        let chunk = (batch as u64).min(per_producer - seq);
                        let records = (seq..seq + chunk).map(|s| {
                            // Keyed records exercise the hash route, unkeyed
                            // ones the shared round-robin cursor.
                            let key = keyed.then_some(p * 1_000_000 + s);
                            (key, encode(p, s))
                        });
                        broker.produce_batch("t", records).unwrap();
                        seq += chunk;
                    }
                })
            })
            .collect();

        let consumer_handles: Vec<_> = (0..consumers)
            .map(|c| {
                let broker = Arc::clone(&broker);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let me = format!("c{c}");
                    let mut sub = broker.subscribe("g", &me).unwrap();
                    let mut buf = Vec::new();
                    let mut got: Vec<(u64, u64)> = Vec::new();
                    loop {
                        let seq = broker.data_seq();
                        let n = broker.poll_into(&mut sub, 64, &mut buf).unwrap();
                        if n == 0 {
                            if done.load(Ordering::Acquire) {
                                // One final sweep after the done flag: a
                                // racing append may have landed post-poll.
                                let n = broker.poll_into(&mut sub, usize::MAX, &mut buf).unwrap();
                                if n == 0 {
                                    break;
                                }
                            } else {
                                broker.wait_for_data(seq, Duration::from_millis(5));
                                continue;
                            }
                        }
                        got.extend(buf.iter().map(|m| decode(&m.payload)));
                    }
                    got
                })
            })
            .collect();

        for h in producer_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        broker.wake_all();

        let mut seen: Vec<(u64, u64)> = Vec::new();
        for h in consumer_handles {
            seen.extend(h.join().unwrap());
        }
        // Exactly-once: every record delivered (no loss) and no duplicates
        // (a redelivery would collapse in the set but not in the Vec).
        prop_assert_eq!(seen.len() as u64, expected_total, "no loss, no redelivery");
        let unique: HashSet<(u64, u64)> = seen.iter().copied().collect();
        prop_assert_eq!(unique.len() as u64, expected_total, "all records distinct");
        for p in 0..producers as u64 {
            for s in 0..per_producer {
                prop_assert!(unique.contains(&(p, s)));
            }
        }
        // Group accounting agrees with what consumers saw.
        prop_assert_eq!(broker.group_consumed("g"), expected_total);
    }
}
