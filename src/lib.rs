//! # pilot-abstraction
//!
//! A Rust implementation of the **pilot-abstraction** — the unified
//! resource-management abstraction for data-intensive scientific
//! applications described in Luckow & Jha, *"Methods and Experiences for
//! Developing Abstractions for Data-intensive, Scientific Applications"*
//! (2020, arXiv:2002.09009) and its system lineage (BigJob / P\* /
//! Pilot-Data / Pilot-Hadoop / Pilot-Memory / Pilot-Streaming).
//!
//! This facade re-exports the whole workspace:
//!
//! - [`core`] — the P\* model: pilots, compute units, late-binding
//!   schedulers, threaded (real) and simulated (virtual-time) backends.
//! - [`infra`] — simulated HPC / HTC / cloud / serverless / YARN
//!   infrastructures and the inter-site network model.
//! - [`saga`] — the uniform access layer (adaptor pattern).
//! - [`data`] — Pilot-Data: data pilots, data units, replication, locality.
//! - [`memory`] — Pilot-Memory: partition caching + iterative execution.
//! - [`streaming`] — Pilot-Streaming: broker + pilot-managed pipelines.
//! - [`mapreduce`] — Pilot-MapReduce.
//! - [`dataflow`] — DAG pipelines.
//! - [`apps`] — the Table I case-study applications.
//! - [`miniapp`] — the Mini-App experiment framework.
//! - [`perfmodel`] — analytical + statistical performance models.
//! - [`sim`] — the deterministic discrete-event engine underneath it all.
//!
//! ## Quickstart
//!
//! ```rust
//! use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
//! use pilot_abstraction::core::scheduler::FirstFitScheduler;
//! use pilot_abstraction::core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
//! use pilot_abstraction::sim::SimDuration;
//!
//! // 1. Start the Pilot-API service with a late-binding scheduler.
//! let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
//! // 2. Acquire resources once (the placeholder).
//! let pilot = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
//! assert!(svc.wait_pilot_active(pilot));
//! // 3. Run many tasks inside it.
//! let unit = svc.submit_unit(
//!     UnitDescription::new(1),
//!     kernel_fn(|_| Ok(TaskOutput::of(6 * 7))),
//! );
//! let out = svc.wait_unit(unit).expect("unit issued by this service");
//! assert_eq!(out.output.unwrap().unwrap().downcast::<i32>().ok(), Some(42));
//! svc.shutdown();
//! ```

pub use pilot_apps as apps;
pub use pilot_core as core;
pub use pilot_data as data;
pub use pilot_dataflow as dataflow;
pub use pilot_infra as infra;
pub use pilot_mapreduce as mapreduce;
pub use pilot_memory as memory;
pub use pilot_miniapp as miniapp;
pub use pilot_perfmodel as perfmodel;
pub use pilot_query as query;
pub use pilot_saga as saga;
pub use pilot_sim as sim;
pub use pilot_streaming as streaming;
