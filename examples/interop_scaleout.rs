//! Interoperability and runtime adaptivity on the simulated backend: the
//! same ensemble workload on HPC, HTC, cloud, and an adaptive hybrid that
//! bursts to the cloud when the backlog grows (requirements R2 and R3,
//! \[63\]/\[79\]).
//!
//! Everything here runs in *virtual time* on the deterministic DES engine —
//! hours of queue wait take milliseconds of wall time.
//!
//! Run: `cargo run --release --example interop_scaleout`

use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::sim::{ScaleOutPolicy, SimPilotSystem};
use pilot_abstraction::infra::cloud::{CloudConfig, CloudProvider};
use pilot_abstraction::infra::hpc::{BackgroundLoad, HpcCluster, HpcConfig};
use pilot_abstraction::infra::htc::{HtcConfig, HtcPool};
use pilot_abstraction::saga::ResourceAdaptor;
use pilot_abstraction::sim::{Dist, SimDuration, SimTime};

const TASKS: usize = 400;
const TASK_S: f64 = 90.0;

fn busy_hpc() -> ResourceAdaptor {
    let bg =
        BackgroundLoad::at_utilization(0.8, 128, Dist::constant(16.0), Dist::exponential(1800.0));
    ResourceAdaptor::hpc(HpcCluster::new(
        HpcConfig::quiet("hpc-prod", 128).with_background(bg),
    ))
}

fn scenario(name: &str, build: impl FnOnce(&mut SimPilotSystem)) -> (String, f64, f64) {
    let mut sys = SimPilotSystem::new(0xC0FFEE);
    build(&mut sys);
    for _ in 0..TASKS {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), TASK_S);
    }
    let report = sys.run(SimTime::from_hours(48));
    let done = report.count(pilot_abstraction::core::state::UnitState::Done);
    assert_eq!(done, TASKS, "{name}: only {done}/{TASKS} finished");
    (
        name.to_string(),
        report.makespan(),
        report.mean_pilot_startup(),
    )
}

fn main() {
    println!("{TASKS} x {TASK_S}s tasks, identical workload on four infrastructures\n");
    let mut rows = Vec::new();

    rows.push(scenario("HPC (busy queue, 64-core pilot)", |sys| {
        let site = sys.add_resource(busy_hpc());
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(64, SimDuration::from_hours(12)).labeled("hpc"),
        );
    }));

    rows.push(scenario("HTC (64 glide-in slots)", |sys| {
        let site = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable(
            "osg", 64,
        ))));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(64, SimDuration::from_hours(12)).labeled("htc"),
        );
    }));

    rows.push(scenario("Cloud (64 cores on demand)", |sys| {
        let site = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
            CloudConfig::generic("cloud", 256),
        )));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(64, SimDuration::from_hours(12)).labeled("cloud"),
        );
    }));

    rows.push(scenario(
        "Hybrid (16-core HPC + adaptive cloud burst)",
        |sys| {
            let hpc = sys.add_resource(busy_hpc());
            let cloud = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
                CloudConfig::generic("burst", 256),
            )));
            sys.submit_pilot(
                SimTime::ZERO,
                hpc,
                PilotDescription::new(16, SimDuration::from_hours(12)).labeled("hpc-base"),
            );
            sys.set_scale_out(ScaleOutPolicy {
                check_every: SimDuration::from_secs(120),
                queue_threshold: 50,
                burst_site: cloud,
                pilot: PilotDescription::new(64, SimDuration::from_hours(6)).labeled("burst"),
                max_extra: 2,
            });
        },
    ));

    println!(
        "{:<44} {:>12} {:>16}",
        "scenario", "makespan", "pilot startup"
    );
    for (name, makespan, startup) in rows {
        println!("{name:<44} {:>10.1}s {:>14.1}s", makespan, startup);
    }
    println!("\n(the pilot-abstraction hides which infrastructure ran the tasks;");
    println!(" only provisioning latency and capacity shape differ — R1/R2/R3)");
}
