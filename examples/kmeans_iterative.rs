//! Iterative K-Means with Pilot-Memory: in-memory caching vs. re-staging
//! every iteration (the Pilot-Memory case study, \[68\]).
//!
//! Run: `cargo run --release --example kmeans_iterative`

use pilot_abstraction::apps::kmeans::{
    assign_step, generate_blob_matrix, init_centroids, update_centroids, BlobConfig, Partial,
};
use pilot_abstraction::apps::linalg::Matrix;
use pilot_abstraction::core::describe::PilotDescription;
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::thread::ThreadPilotService;
use pilot_abstraction::core::Parallelism;
use pilot_abstraction::memory::{CacheManager, CacheMode, IterativeExecutor, VecSource};
use pilot_abstraction::sim::SimDuration;
use std::sync::Arc;

fn run(mode: CacheMode, label: &str) -> f64 {
    let cfg = BlobConfig::new(4, 3, 4000, 2024);
    let (points, _) = generate_blob_matrix(&cfg);
    let k = cfg.k;
    let init = init_centroids(&points, k);

    // 8 partitions; reloading costs 5 ms per partition (models storage).
    let bands: Vec<Vec<Matrix>> = points
        .partition_rows(8)
        .into_iter()
        .map(|band| vec![band])
        .collect();
    let source = Arc::new(VecSource::from_partitions(bands).with_load_cost(0.005));
    let cache = Arc::new(CacheManager::new(source as _, mode));

    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX).labeled("kmeans"));
    assert!(svc.wait_pilot_active(p));

    let exec = IterativeExecutor::new(
        cache,
        move |part: &[Matrix], centroids: &Matrix, par: &Parallelism| match part.first() {
            Some(band) => assign_step(band, centroids, par),
            None => Partial::zero(centroids.rows(), centroids.cols()),
        },
        move |partials: Vec<Partial>, centroids: Matrix| {
            let (next, _inertia) = update_centroids(&partials, &centroids);
            next
        },
    )
    .with_unit_cores(2);
    let out = exec.run(&svc, init, 10, |_, _| false);
    svc.shutdown();

    println!("\n[{label}]");
    for it in &out.iterations {
        println!(
            "  iter {:>2}: {:>7.4}s  (loads {:>2}, hits {:>2})",
            it.iteration, it.wall_s, it.loads, it.hits
        );
    }
    println!(
        "  steady-state mean: {:.4}s/iter, total {:.4}s",
        out.steady_state_mean_s(),
        out.total_wall_s()
    );
    out.steady_state_mean_s()
}

fn main() {
    println!("K-Means, 4000 points, 8 partitions, 10 iterations, 4-core pilot");
    let cached = run(CacheMode::Cached, "Pilot-Memory: cached partitions");
    let reload = run(CacheMode::Reload, "baseline: re-stage every iteration");
    println!(
        "\ncached speedup per steady-state iteration: {:.2}x",
        reload / cached.max(1e-9)
    );
}
