//! Pilot-MapReduce on a genomics workload (\[54\]): map synthetic sequencing
//! reads against a reference with Smith-Waterman, reduce per alignment
//! position, plus a classic wordcount as a warm-up.
//!
//! Run: `cargo run --release --example mapreduce_genomics`

use pilot_abstraction::apps::seqalign::{
    generate_reads, generate_reference, map_read, Read, Scoring,
};
use pilot_abstraction::apps::wordcount::{generate_text, TextConfig};
use pilot_abstraction::core::describe::PilotDescription;
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::thread::ThreadPilotService;
use pilot_abstraction::mapreduce::MapReduceJob;
use pilot_abstraction::sim::SimDuration;
use std::sync::Arc;

fn main() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX).labeled("mr"));
    assert!(svc.wait_pilot_active(p));

    // ---- wordcount -------------------------------------------------------
    let text = generate_text(&TextConfig::small());
    let wc = MapReduceJob::new(
        MapReduceJob::<String, String, u64, u64>::split_input(text, 4),
        |line: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        },
        |_k, vs| vs.iter().sum::<u64>(),
        4,
    )
    .with_combiner(|_k, vs| vs.iter().sum());
    let r = wc.run(&svc);
    println!(
        "wordcount: {} distinct words, phases map {:.4}s / shuffle {:.4}s / reduce {:.4}s",
        r.output.len(),
        r.times.map_s,
        r.times.shuffle_s,
        r.times.reduce_s
    );
    let mut top: Vec<_> = r.output.iter().collect();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("  top words: {:?}", &top[..5.min(top.len())]);

    // ---- read alignment ---------------------------------------------------
    let reference = Arc::new(generate_reference(4000, 11));
    let reads = generate_reads(&reference, 400, 48, 0.03, 13);
    println!(
        "\nalignment: {} reads of 48bp vs {}bp reference",
        reads.len(),
        reference.len()
    );
    let scoring = Scoring::default();
    let ref_for_map = Arc::clone(&reference);
    // Key = reference bucket of 500bp where the read maps; value = score.
    let job = MapReduceJob::new(
        MapReduceJob::<Read, u64, i32, (u64, f64)>::split_input(reads, 8),
        move |read: &Read, emit: &mut dyn FnMut(u64, i32)| {
            let (mapped, a) = map_read(read, &ref_for_map, scoring, 60);
            if mapped {
                emit(a.ref_end as u64 / 500, a.score);
            }
        },
        |_bucket, scores| {
            let n = scores.len() as u64;
            let mean = scores.iter().map(|&s| s as f64).sum::<f64>() / n as f64;
            (n, mean)
        },
        4,
    );
    let r = job.run(&svc);
    println!(
        "  phases: map {:.4}s / shuffle {:.4}s / reduce {:.4}s  ({} map tasks)",
        r.times.map_s, r.times.shuffle_s, r.times.reduce_s, r.map_tasks
    );
    println!("  reads mapped per 500bp reference bucket:");
    for (bucket, (n, mean_score)) in &r.output {
        println!(
            "    [{:>4}..{:>4}): {:>3} reads, mean score {:.1}",
            bucket * 500,
            (bucket + 1) * 500,
            n,
            mean_score
        );
    }
    let total: u64 = r.output.iter().map(|(_, (n, _))| n).sum();
    println!("  total mapped: {total}/400");

    svc.shutdown();
}
