//! Pilot-Streaming end-to-end: light-source detector frames flow through the
//! broker; processor units reconstruct peaks in near-realtime (\[32\]).
//!
//! The run's *status* numbers come from the read plane: the service exports
//! its state transitions to a projection topic through a `BrokerSink`, a
//! `Materializer` folds them into query tables, and the closing dashboard is
//! read from the projection — not by polling the service's registry lock.
//! Drain accounting likewise uses the broker's own ledger
//! (`group_stats().total_lag()`), not a hand-rolled counter.
//!
//! Run: `cargo run --release --example streaming_lightsource`

use pilot_abstraction::apps::lightsource::{generate_frame, reconstruct, FrameConfig};
use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::state::UnitState;
use pilot_abstraction::core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_abstraction::query::{BrokerSink, Materializer};
use pilot_abstraction::sim::SimDuration;
use pilot_abstraction::streaming::{Broker, WindowAggregate};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let broker = Arc::new(Broker::new());
    // Read plane: every pilot/unit transition lands on this topic.
    let sink = BrokerSink::create(Arc::clone(&broker), "beamline.events", 4).unwrap();
    let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX).labeled("beamline"));
    assert!(svc.wait_pilot_active(p));

    broker.create_topic("frames", 4, 100_000).unwrap();
    let n_frames = 200u64;
    let processors = 2;
    for c in 0..processors {
        broker
            .join_group("recon", "frames", &format!("proc-{c}"))
            .unwrap();
    }

    let produced_done = Arc::new(AtomicBool::new(false));
    let consumed = Arc::new(AtomicU64::new(0));
    let peaks_found = Arc::new(AtomicU64::new(0));

    // Processor units: poll, reconstruct, count peaks, measure latency.
    let procs: Vec<_> = (0..processors)
        .map(|c| {
            let broker = Arc::clone(&broker);
            let done = Arc::clone(&produced_done);
            let consumed = Arc::clone(&consumed);
            let peaks_found = Arc::clone(&peaks_found);
            svc.submit_unit(
                UnitDescription::new(1).tagged("reconstruct"),
                kernel_fn(move |_| {
                    let me = format!("proc-{c}");
                    // Subscription: cached assignment, reused poll buffer.
                    let mut sub = broker.subscribe("recon", &me).unwrap();
                    let mut buf = Vec::with_capacity(16);
                    let mut latencies = Vec::new();
                    // Stateful operator: peaks per 2-second event-time window.
                    let mut windows = WindowAggregate::new(2.0);
                    loop {
                        // Sample before polling so a racing append wakes us.
                        let seq = broker.data_seq();
                        let n = broker.poll_into(&mut sub, 16, &mut buf).unwrap();
                        if n == 0 {
                            // Exit when the beamline is done AND the group's
                            // own ledger says nothing is left: committed
                            // offsets have caught the high watermarks.
                            if done.load(Ordering::Acquire)
                                && broker.group_stats("recon").unwrap().total_lag() == 0
                            {
                                break;
                            }
                            // Park instead of busy-polling; producers notify
                            // on every append.
                            broker.wait_for_data(seq, std::time::Duration::from_millis(10));
                            continue;
                        }
                        let now = broker.now_s();
                        for m in &buf {
                            latencies.push(now - m.enqueued_s);
                            let peaks = reconstruct(&m.payload, 15.0).expect("valid frame");
                            peaks_found.fetch_add(peaks.len() as u64, Ordering::Relaxed);
                            windows.observe(0, m.enqueued_s, peaks.len() as f64);
                        }
                        consumed.fetch_add(n as u64, Ordering::AcqRel);
                    }
                    let closed = windows.close_until(f64::INFINITY);
                    Ok(TaskOutput::of((latencies, closed)))
                }),
            )
        })
        .collect();

    // Producer unit: the "beamline" emitting frames.
    let cfg = FrameConfig::small();
    let producer = {
        let broker = Arc::clone(&broker);
        svc.submit_unit(
            UnitDescription::new(1).tagged("detector"),
            kernel_fn(move |_| {
                // Frames leave the detector in bursts of 16: one broker call,
                // one timestamp, one wakeup per burst.
                for burst in 0..n_frames / 16 {
                    let frames = (burst * 16..(burst + 1) * 16).map(|i| {
                        let (frame, _) = generate_frame(&cfg, i);
                        (None, Arc::new(frame.to_bytes()))
                    });
                    broker.produce_batch("frames", frames).unwrap();
                }
                for i in (n_frames / 16) * 16..n_frames {
                    let (frame, _) = generate_frame(&cfg, i);
                    broker
                        .produce("frames", None, Arc::new(frame.to_bytes()))
                        .unwrap();
                }
                Ok(TaskOutput::none())
            }),
        )
    };

    svc.wait_unit(producer);
    produced_done.store(true, Ordering::Release);
    broker.wake_all(); // parked processors re-check the exit condition
    let mut latencies: Vec<f64> = Vec::new();
    let mut window_rates: std::collections::BTreeMap<u64, f64> = Default::default();
    for u in procs {
        if let Some(Ok(o)) = svc.wait_unit(u).and_then(|o| o.output) {
            if let Ok((ls, closed)) = o.downcast::<(
                Vec<f64>,
                Vec<pilot_abstraction::streaming::window::ClosedWindow>,
            )>() {
                latencies.extend(ls);
                for w in closed {
                    *window_rates.entry(w.window).or_insert(0.0) += w.cell.sum;
                }
            }
        }
    }
    svc.shutdown();

    // The run dashboard, served from the read plane: fold the projection
    // topic and query the materialized tables — the service (and its lock)
    // is already gone; the event stream is the record.
    let mut m = Materializer::bootstrap(Arc::clone(&broker), "beamline.events").unwrap();
    m.catch_up().unwrap();
    let qs = m.service();
    let dash = qs.dashboard();
    let frames_hw: u64 = broker.high_watermarks("frames").unwrap().iter().sum();
    let recon = broker.group_stats("recon").unwrap();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| pilot_abstraction::sim::percentile_sorted(&latencies, p);
    println!(
        "streamed {n_frames} frames (64x64 f32) through 4 partitions, {processors} processors"
    );
    println!("frames reconstructed: {}", consumed.load(Ordering::Acquire));
    println!(
        "peaks found: {} (planted: {})",
        peaks_found.load(Ordering::Acquire),
        n_frames * 4
    );
    println!(
        "end-to-end latency: p50 {:.4}s  p95 {:.4}s  p99 {:.4}s",
        pct(50.0),
        pct(95.0),
        pct(99.0)
    );
    println!("peaks per 2 s event-time window (stateful operator):");
    for (w, sum) in window_rates {
        println!("  window {w}: {sum:.0} peaks");
    }

    println!(
        "run dashboard (from the projection, {} events):",
        qs.snapshot().events_applied
    );
    println!(
        "  units done {} / failed {} / canceled {}  mean wait {:.4}s  mean exec {:.4}s",
        dash.units_in(UnitState::Done),
        dash.units_in(UnitState::Failed),
        dash.units_in(UnitState::Canceled),
        dash.mean_wait_s(),
        dash.mean_exec_s(),
    );
    println!(
        "  frames topic high watermark {frames_hw}; recon group committed {} / lag {} / lost {}",
        recon.committed,
        recon.total_lag(),
        recon.records_lost,
    );
}
