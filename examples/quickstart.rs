//! Quickstart: the Pilot-API in ~40 lines.
//!
//! Acquire a pilot once, late-bind a bag of heterogeneous tasks onto it, and
//! read back the middleware-overhead decomposition the paper reports for
//! pilot systems.
//!
//! Run: `cargo run --release --example quickstart`

use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::metrics::overhead_breakdown;
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::thread::{kernel_fn, SyntheticKernel, TaskOutput, ThreadPilotService};
use pilot_abstraction::sim::SimDuration;
use std::sync::Arc;

fn main() {
    // A pilot service with the baseline first-fit late-binding scheduler.
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));

    // One 4-core pilot; in production this would sit in a batch queue —
    // here the 100 ms startup delay stands in for provisioning.
    let pilot = svc.submit_pilot(
        PilotDescription::new(4, SimDuration::MAX)
            .labeled("quickstart")
            .with_startup_delay(0.1),
    );
    println!("pilot {pilot} submitted, waiting for capacity...");
    assert!(svc.wait_pilot_active(pilot));
    println!("pilot {pilot} active: 4 cores");

    // A bag of 32 compute units: real arithmetic, heterogeneous durations.
    let units: Vec<_> = (0..32)
        .map(|i| {
            if i % 4 == 0 {
                // A "simulation-like" longer task.
                svc.submit_unit(
                    UnitDescription::new(1).tagged("sim"),
                    Arc::new(SyntheticKernel::new(0.02)),
                )
            } else {
                // An "analysis-like" short task returning a value.
                svc.submit_unit(
                    UnitDescription::new(1).tagged("analysis"),
                    kernel_fn(move |_| {
                        Ok(TaskOutput::of((0..1000u64).map(|x| x ^ i).sum::<u64>()))
                    }),
                )
            }
        })
        .collect();

    for u in &units {
        let out = svc.wait_unit(*u).expect("unit issued by this service");
        assert!(out.state.is_terminal());
    }

    let report = svc.shutdown();
    let times = report.done_unit_times();
    let b = overhead_breakdown(times.iter());
    println!("\n{} units done", times.len());
    println!(
        "late-binding wait : {:>8.4}s mean ({:.4}s max)",
        b.wait.mean, b.wait.max
    );
    println!("dispatch/staging  : {:>8.4}s mean", b.staging.mean);
    println!("execution         : {:>8.4}s mean", b.execution.mean);
    println!(
        "middleware overhead: {:>7.4}s mean per task",
        b.overhead.mean
    );
    println!("p99 turnaround    : {:>8.4}s", b.turnaround_p99);
}
