//! Replica-exchange molecular dynamics on the pilot-abstraction — the
//! paper's original motivating workload (\[48\], \[72\]).
//!
//! Runs an 8-replica temperature-ladder ensemble where every replica-phase
//! is one compute unit, then compares the measured runtime against the
//! analytical replica-exchange model of `pilot-perfmodel`.
//!
//! Run: `cargo run --release --example replica_exchange`

use pilot_abstraction::apps::md::{run_replica_exchange, service_with_pilot, RexConfig};
use pilot_abstraction::perfmodel::ReplicaExchangeModel;

fn main() {
    let mut cfg = RexConfig::small(8);
    cfg.particles = 64;
    cfg.steps_per_phase = 60;
    cfg.phases = 6;

    let cores = 4u32;
    println!(
        "replica-exchange: {} replicas x {} phases x {} steps, T in [{}, {}], {} cores",
        cfg.replicas, cfg.phases, cfg.steps_per_phase, cfg.t_min, cfg.t_max, cores
    );

    let svc = service_with_pilot(cores);
    let report = run_replica_exchange(&svc, &cfg);
    svc.shutdown();

    println!("\nphase timings:");
    for (i, w) in report.phase_wall_s.iter().enumerate() {
        println!("  phase {i}: {w:.4}s");
    }
    println!(
        "\nexchanges: {}/{} accepted ({:.0}%)",
        report.exchanges_accepted,
        report.exchanges_attempted,
        report.acceptance() * 100.0
    );
    println!("final potential energies (ladder order):");
    for (i, e) in report.final_energies.iter().enumerate() {
        println!("  replica {i}: {e:>10.3}");
    }

    // Analytical overlay: calibrate t_phase from the measured mean phase and
    // predict how the ensemble would scale.
    let mean_phase = report.total_wall_s() / cfg.phases as f64;
    let waves = (cfg.replicas as u32).div_ceil(cores);
    let t_phase = mean_phase / waves as f64;
    println!("\nanalytical model (t_phase calibrated to {t_phase:.4}s):");
    println!("  cores  waves  predicted-runtime  predicted-speedup");
    for c in [1u32, 2, 4, 8, 16] {
        let m = ReplicaExchangeModel {
            replicas: cfg.replicas as u32,
            cores: c,
            cores_per_replica: 1,
            t_phase,
            t_exchange: 0.001,
            phases: cfg.phases as u32,
            t_overhead: 0.0,
        };
        println!(
            "  {c:>5}  {:>5}  {:>16.4}s  {:>16.2}x",
            m.waves(),
            m.runtime(),
            m.speedup_vs_serial()
        );
    }
    println!(
        "\nmeasured total: {:.4}s on {} cores (host has {} CPU(s); wall-clock\n\
         speedup needs real cores — the simulated backend sweeps the shape)",
        report.total_wall_s(),
        cores,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
