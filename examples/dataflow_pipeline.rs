//! A multi-stage analysis pipeline as a dataflow DAG: generate detector
//! frames → two parallel analysis branches (peak detection, frame
//! statistics) → join into a summary (Table I's dataflow scenario).
//!
//! Run: `cargo run --release --example dataflow_pipeline`

use pilot_abstraction::apps::lightsource::{detect_peaks, generate_frame, Frame, FrameConfig};
use pilot_abstraction::core::describe::PilotDescription;
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::thread::ThreadPilotService;
use pilot_abstraction::dataflow::{Dataflow, StageData};
use pilot_abstraction::sim::SimDuration;
use std::sync::Arc;

fn main() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX).labeled("pipeline"));
    assert!(svc.wait_pilot_active(p));

    let mut g = Dataflow::new();

    // Stage 0: generate 8 frames (one task each).
    let gen = g.add_stage("generate", 8, |task, _| {
        let (frame, _) = generate_frame(&FrameConfig::small(), task as u64);
        Ok(Arc::new(frame) as StageData)
    });

    // Stage 1a: peak detection over every generated frame.
    let peaks = g.add_stage("peaks", 2, move |task, inputs| {
        let frames = inputs.downcast_all::<Frame>(gen);
        // Each of the 2 tasks takes half the frames.
        let mine: Vec<_> = frames.iter().skip(task).step_by(2).collect();
        let count: usize = mine.iter().map(|f| detect_peaks(f, 15.0).len()).sum();
        Ok(Arc::new(count) as StageData)
    });

    // Stage 1b: global intensity statistics.
    let stats = g.add_stage("stats", 1, move |_, inputs| {
        let frames = inputs.downcast_all::<Frame>(gen);
        let (mut sum, mut n) = (0.0f64, 0u64);
        for f in &frames {
            sum += f.data.iter().map(|&v| v as f64).sum::<f64>();
            n += f.data.len() as u64;
        }
        Ok(Arc::new(sum / n as f64) as StageData)
    });

    // Stage 2: join.
    let summary = g.add_stage("summary", 1, move |_, inputs| {
        let total_peaks: usize = inputs
            .downcast_all::<usize>(peaks)
            .iter()
            .map(|c| **c)
            .sum();
        let mean_intensity = *inputs.downcast_all::<f64>(stats)[0];
        Ok(Arc::new(format!(
            "8 frames: {total_peaks} peaks, mean pixel intensity {mean_intensity:.3}"
        )) as StageData)
    });

    g.add_edge(gen, peaks).unwrap();
    g.add_edge(gen, stats).unwrap();
    g.add_edge(peaks, summary).unwrap();
    g.add_edge(stats, summary).unwrap();

    let report = g.run(&svc).unwrap();
    svc.shutdown();

    assert!(report.all_done());
    println!("pipeline finished in {:.4}s", report.total_wall_s);
    for (i, (status, wall)) in report.status.iter().zip(&report.stage_wall_s).enumerate() {
        println!("  stage {i}: {status:?} in {wall:.4}s");
    }
    let out = report.stage_outputs::<String>(summary);
    println!("\n{}", out[0]);
}
